"""Ablation D — LAS design points (§2.1) and RGP propagation (§2.2.1).

Quantifies the LAS cold-start rule (Drebes threshold vs the poster's
literal "most of the data unallocated" wording) and the alternative
partition-propagation policies the poster mentions but does not evaluate.
"""

import pytest

from repro.core.rgp import RGPScheduler
from repro.experiments.runner import build_program, run_policy
from repro.schedulers import LASScheduler


@pytest.fixture(scope="module")
def cfg():
    from repro.experiments import ExperimentConfig

    return ExperimentConfig.quick(seeds=(0, 1))


@pytest.mark.parametrize("threshold", (0.0, 0.5))
def test_las_cold_start_threshold(cfg, threshold, benchmark):
    program = build_program(cfg, "histogram")

    def run():
        return run_policy(
            cfg, program, f"las(thr={threshold})",
            lambda: LASScheduler(random_threshold=threshold),
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.makespan_mean > 0


def test_drebes_threshold_beats_poster_on_histogram(cfg, benchmark):
    """Outputs dominate the integral histogram's accesses, so the literal
    0.5 rule randomises nearly every scan task — the Drebes rule (random
    only when nothing is allocated) must win."""
    program = build_program(cfg, "histogram")

    def run():
        drebes = run_policy(cfg, program, "las/drebes",
                            lambda: LASScheduler(random_threshold=0.0))
        poster = run_policy(cfg, program, "las/poster",
                            lambda: LASScheduler(random_threshold=0.5))
        return drebes.makespan_mean, poster.makespan_mean

    drebes_mk, poster_mk = benchmark.pedantic(run, rounds=1, iterations=1)
    assert drebes_mk <= poster_mk * 1.02


@pytest.mark.parametrize("prop", ("las", "repartition", "cyclic", "random"))
def test_rgp_propagation_policies(cfg, prop, benchmark):
    program = build_program(cfg, "nstream")

    def run():
        return run_policy(
            cfg, program, f"rgp/{prop}",
            lambda: RGPScheduler(window_size=64, propagation=prop),
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.makespan_mean > 0


def test_las_propagation_beats_random_propagation(cfg, benchmark):
    program = build_program(cfg, "nstream")

    def run():
        las_prop = run_policy(cfg, program, "rgp/las",
                              lambda: RGPScheduler(window_size=64,
                                                   propagation="las"))
        rnd_prop = run_policy(cfg, program, "rgp/random",
                              lambda: RGPScheduler(window_size=64,
                                                   propagation="random"))
        return las_prop.makespan_mean, rnd_prop.makespan_mean

    las_mk, rnd_mk = benchmark.pedantic(run, rounds=1, iterations=1)
    assert las_mk < rnd_mk
