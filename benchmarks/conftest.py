"""Shared benchmark infrastructure.

Figure 1 benches run at the calibrated paper scale (see
``repro.experiments.config.PAPER_APP_PARAMS``); ablation benches run at the
quick scale.  Each Figure 1 bench records its speedup row into a
session-wide table that is printed after the run — the regenerated figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.figure1 import PAPER_FIGURE1
from repro.experiments.runner import build_program, run_policy
from repro.metrics.report import SpeedupCell, SpeedupTable

#: Seeds used for the speedup measurements in the benches.
BENCH_SEEDS = (0, 1)


@pytest.fixture(scope="session")
def paper_config() -> ExperimentConfig:
    return ExperimentConfig.paper(seeds=BENCH_SEEDS)


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig.quick(seeds=(0,))


@pytest.fixture(scope="session")
def figure1_table():
    """Collects per-app speedups; printed at end of session."""
    return SpeedupTable(baseline="las", policies=["dfifo", "rgp+las", "ep"])


@pytest.fixture(scope="session", autouse=True)
def _print_figure1(request, figure1_table):
    yield
    if figure1_table.apps:
        lines = [
            "",
            figure1_table.render(
                "Figure 1 reproduction — speedup vs LAS (bullion S16 model)"
            ),
            "",
            "paper reference points: "
            + ", ".join(f"{k}={v}" for k, v in PAPER_FIGURE1.items()),
        ]
        capman = request.config.pluginmanager.get_plugin("capturemanager")
        out = "\n".join(lines)
        if capman:
            with capman.global_and_fixture_disabled():
                print(out)
        else:  # pragma: no cover
            print(out)


def measure_app(config: ExperimentConfig, table: SpeedupTable, app_name: str,
                benchmark) -> dict[str, float]:
    """Benchmark one LAS simulation and record the app's speedup row."""
    program = build_program(config, app_name)

    def las_run():
        return run_policy(
            config, program, "las",
        )

    # The benchmarked quantity: one full LAS simulation sweep of the app.
    baseline = benchmark.pedantic(las_run, rounds=1, iterations=1)
    speedups = {}
    for policy in table.policies:
        stats = run_policy(config, program, policy)
        speedup = baseline.makespan_mean / stats.makespan_mean
        speedups[policy] = speedup
        table.add(
            app_name, policy,
            SpeedupCell(
                speedup=speedup,
                speedup_std=0.0,
                makespan_mean=stats.makespan_mean,
                remote_fraction=stats.remote_fraction_mean,
            ),
        )
    return speedups
