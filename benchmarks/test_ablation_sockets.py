"""Ablation C — NUMA scale: 2/4/8 sockets at a fixed 32 cores.

The paper's motivation (§1): NUMA effects grow with socket count.  The
RGP+LAS advantage over LAS must therefore grow (or at least not shrink)
with more sockets.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import build_program, run_policy
from repro.machine.presets import custom

SOCKETS = (2, 4, 8)


def config_for(n_sockets: int) -> ExperimentConfig:
    base = ExperimentConfig.quick(seeds=(0, 1))
    return ExperimentConfig(
        topology=custom(n_sockets, 32 // n_sockets, remote=21.0,
                        name=f"{n_sockets}s"),
        app_params=base.app_params,
        seeds=base.seeds,
        window_size=base.window_size,
        steal=base.steal,
    )


@pytest.mark.parametrize("n_sockets", SOCKETS)
def test_socket_scaling_nstream(n_sockets, benchmark):
    cfg = config_for(n_sockets)
    program = build_program(cfg, "nstream")

    def run():
        las = run_policy(cfg, program, "las")
        rgp = run_policy(cfg, program, "rgp+las")
        return las.makespan_mean / rgp.makespan_mean

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert speedup > 0.8


def test_numa_advantage_grows_with_sockets(benchmark):
    """RGP+LAS/LAS speedup on NStream: 8 sockets >= 2 sockets."""

    def run():
        speedups = {}
        for n in (2, 8):
            cfg = config_for(n)
            program = build_program(cfg, "nstream")
            las = run_policy(cfg, program, "las")
            rgp = run_policy(cfg, program, "rgp+las")
            speedups[n] = las.makespan_mean / rgp.makespan_mean
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    assert speedups[8] >= speedups[2] - 0.1
