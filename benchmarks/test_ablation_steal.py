"""Ablation G — work-stealing policy (off / near / global).

Not in the poster, but load-bearing for its NStream result: global
stealing launders LAS's cold-start imbalance through remote execution and
compresses the EP/LAS gap; module-local ("near") stealing preserves it.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import build_program, run_policy

STEAL_MODES = ("off", "near", "global")


def cfg_with(steal: str) -> ExperimentConfig:
    return ExperimentConfig.quick(seeds=(0, 1), steal=steal)


@pytest.mark.parametrize("steal", STEAL_MODES)
def test_steal_mode_nstream(steal, benchmark):
    cfg = cfg_with(steal)
    program = build_program(cfg, "nstream")

    def run():
        las = run_policy(cfg, program, "las")
        ep = run_policy(cfg, program, "ep")
        return las.makespan_mean / ep.makespan_mean

    ep_speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ep_speedup > 0.8


def test_global_steal_compresses_nstream_gap(benchmark):
    """EP/LAS gap: near-stealing must preserve at least as much of the
    cold-start imbalance as global stealing."""

    def run():
        gaps = {}
        for steal in ("near", "global"):
            cfg = cfg_with(steal)
            program = build_program(cfg, "nstream")
            las = run_policy(cfg, program, "las")
            ep = run_policy(cfg, program, "ep")
            gaps[steal] = las.makespan_mean / ep.makespan_mean
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gaps["near"] >= gaps["global"] - 0.1


def test_migration_baseline_never_beats_rgp(benchmark):
    """Ablation F companion: reactive migration vs proactive RGP+LAS."""
    from repro.schedulers import MigratingLASWrapper

    cfg = cfg_with("near")
    program = build_program(cfg, "nstream")

    def run():
        rgp = run_policy(cfg, program, "rgp+las")
        mig = run_policy(cfg, program, "las+migrate",
                         lambda: MigratingLASWrapper(period=5.0))
        return rgp.makespan_mean, mig.makespan_mean

    rgp_mk, mig_mk = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rgp_mk <= mig_mk * 1.05
