"""Ablation A — RGP window-size sensitivity (DESIGN.md per-experiment index).

The paper introduces the window-size limit but does not sweep it; this
bench quantifies it: tiny windows degenerate RGP+LAS towards plain LAS
(nothing is partitioned), large windows recover the full static placement.
"""

import numpy as np
import pytest

from repro.core.rgp import RGPScheduler
from repro.experiments.runner import build_program, run_policy

WINDOWS = (16, 128, 1024)


@pytest.fixture(scope="module")
def nstream_program(quick_config_module):
    return build_program(quick_config_module, "nstream")


@pytest.fixture(scope="module")
def quick_config_module():
    from repro.experiments import ExperimentConfig

    return ExperimentConfig.quick(seeds=(0, 1))


@pytest.mark.parametrize("window", WINDOWS)
def test_window_sweep_nstream(quick_config_module, nstream_program, window,
                              benchmark):
    cfg = quick_config_module

    def run():
        return run_policy(
            cfg, nstream_program, f"rgp+las(w={window})",
            lambda: RGPScheduler(window_size=window, propagation="las"),
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.makespan_mean > 0


def test_window_monotone_benefit(quick_config_module, nstream_program,
                                 benchmark):
    """On NStream a full window must beat a degenerate one."""
    cfg = quick_config_module

    def run():
        makespans = {}
        for w in (1, 1024):
            stats = run_policy(
                cfg, nstream_program, f"rgp+las(w={w})",
                lambda w=w: RGPScheduler(window_size=w, propagation="las"),
            )
            makespans[w] = stats.makespan_mean
        return makespans

    makespans = benchmark.pedantic(run, rounds=1, iterations=1)
    assert makespans[1024] <= makespans[1] * 1.05
