"""Ablation B — partitioner choice inside RGP, plus raw partitioner speed.

Two aspects: (a) end-to-end speedup of RGP+LAS with each partitioner on a
TDG window; (b) the partitioners' own runtime and cut quality on the same
window graph (SCOTCH-replacement quality check).
"""

import numpy as np
import pytest

from repro.core.rgp import RGPScheduler
from repro.experiments.runner import build_program, run_policy
from repro.graph import CSRGraph
from repro.machine import bullion_s16
from repro.partition import (
    PARTITIONERS,
    TargetArchitecture,
    by_name,
    edge_cut,
    imbalance,
)

PARTITIONER_NAMES = ("drb", "multilevel", "spectral", "random")


@pytest.fixture(scope="module")
def quick_config_module():
    from repro.experiments import ExperimentConfig

    return ExperimentConfig.quick(seeds=(0,))


@pytest.fixture(scope="module")
def window_graph(quick_config_module):
    """The jacobi TDG prefix the RGP window actually partitions."""
    prog = build_program(quick_config_module, "jacobi")
    cutoff = prog.first_partition_point(quick_config_module.window_size)
    return CSRGraph.from_tdg(prog.tdg.prefix(cutoff))


@pytest.mark.parametrize("pname", PARTITIONER_NAMES)
def test_rgp_with_partitioner(quick_config_module, pname, benchmark):
    cfg = quick_config_module
    program = build_program(cfg, "jacobi")

    def run():
        return run_policy(
            cfg, program, f"rgp+las/{pname}",
            lambda: RGPScheduler(
                partitioner=by_name(pname), window_size=cfg.window_size,
                propagation="las",
            ),
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.makespan_mean > 0


@pytest.mark.parametrize("pname", PARTITIONER_NAMES)
def test_partitioner_speed_and_quality(window_graph, pname, benchmark):
    """Time one k=8 partition of the real window graph; record its cut."""
    target = TargetArchitecture.from_topology(bullion_s16())
    partitioner = by_name(pname)

    result = benchmark(
        lambda: partitioner.partition(window_graph, 8, target=target, seed=0)
    )
    cut = edge_cut(window_graph, result.parts)
    assert imbalance(window_graph, result.parts, 8) < 0.5
    if pname != "random":
        rand = by_name("random").partition(window_graph, 8, seed=0)
        assert cut <= edge_cut(window_graph, rand.parts)


def test_exact_oracle_on_small_window(quick_config_module, benchmark):
    """Ablation J's oracle: prove a small real window optimal, and time
    the proof.  DRB must land at or above the proven optimum."""
    prog = build_program(quick_config_module, "jacobi")
    small = CSRGraph.from_tdg(prog.tdg.prefix(14))
    oracle = by_name("exact", budget=200_000)

    result = benchmark(lambda: oracle.partition(small, 4, seed=0))
    assert result.meta["exact"], "oracle budget must cover a 14-task window"
    drb = by_name("drb").partition(small, 4, seed=0)
    assert result.meta["objective"] <= edge_cut(small, drb.parts) + 1e-9


@pytest.mark.parametrize("policy", ("calist", "bsp"))
def test_literature_scheduler_end_to_end(quick_config_module, policy, benchmark):
    """The literature baselines (comm-aware list, BSP) run the quick
    jacobi config end to end; they bracket RGP in the policy table."""
    from repro.schedulers import make_scheduler

    cfg = quick_config_module
    program = build_program(cfg, "jacobi")

    def run():
        return run_policy(
            cfg, program, policy, lambda: make_scheduler(policy)
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.makespan_mean > 0


def test_drb_beats_floors_end_to_end(quick_config_module, benchmark):
    """DRB-driven RGP must beat random-partition RGP on NStream."""
    cfg = quick_config_module
    program = build_program(cfg, "nstream")

    def run():
        makespans = {}
        for pname in ("drb", "random"):
            stats = run_policy(
                cfg, program, f"rgp/{pname}",
                lambda p=pname: RGPScheduler(
                    partitioner=by_name(p), window_size=cfg.window_size,
                    propagation="las",
                ),
            )
            makespans[pname] = stats.makespan_mean
        return makespans

    makespans = benchmark.pedantic(run, rounds=1, iterations=1)
    assert makespans["drb"] < makespans["random"]
