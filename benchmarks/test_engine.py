"""Microbenchmarks of the substrates themselves (engine throughput).

Not a paper exhibit — these track the reproduction's own performance:
simulator event throughput, partitioner speed, dependence derivation and
memory-manager query rates.
"""

import numpy as np
import pytest

from repro.apps import make_app
from repro.graph import CSRGraph, grid_graph
from repro.machine import Interconnect, MemoryManager, StreamKey, bullion_s16
from repro.partition import DualRecursiveBipartitioner, TargetArchitecture
from repro.runtime import TaskProgram, simulate
from repro.schedulers import make_scheduler

TOPO = bullion_s16()


def test_simulator_throughput(benchmark):
    """Tasks simulated per benchmark round (~1.8k-task program)."""
    prog = make_app("gauss-seidel", nt=12, tile=32, sweeps=4).build(8)

    def run():
        return simulate(prog, TOPO, make_scheduler("las"), seed=0).n_tasks

    n = benchmark(run)
    assert n == prog.n_tasks


def test_instrumented_simulator_throughput(benchmark):
    """Same workload with full tracing on — the cost of observation.

    Comparing against :func:`test_simulator_throughput` bounds the
    instrumentation overhead.  Set ``REPRO_TRACE_OUT=<path>`` to also
    export the last round's Chrome trace (the CI benchmark-smoke job
    uploads it as a Perfetto artifact).
    """
    import os

    from repro.observability import Instrumentation, write_chrome_trace

    prog = make_app("gauss-seidel", nt=12, tile=32, sweeps=4).build(8)

    def run():
        obs = Instrumentation()
        return simulate(
            prog, TOPO, make_scheduler("rgp+las"), seed=0, instrument=obs
        )

    result = benchmark(run)
    assert result.n_tasks == prog.n_tasks
    assert result.metrics is not None and result.events
    out = os.environ.get("REPRO_TRACE_OUT")
    if out:
        write_chrome_trace(result, out)


def test_program_build_throughput(benchmark):
    """TDG construction + dependence derivation speed."""

    def build():
        return make_app("jacobi", nt=12, tile=16, sweeps=6).build(8).n_tasks

    assert benchmark(build) > 0


def test_partitioner_window_speed(benchmark):
    """DRB on a 1024-vertex window-like grid graph, k=8."""
    g = CSRGraph.from_tdg(grid_graph(32, 32))
    target = TargetArchitecture.from_topology(TOPO)
    p = DualRecursiveBipartitioner()

    res = benchmark(lambda: p.partition(g, 8, target=target, seed=0))
    assert len(res.parts) == 1024


def test_memory_manager_query_rate(benchmark):
    mm = MemoryManager(8)
    for key in range(64):
        mm.register(key, 262144)
        mm.touch(key, key % 8)

    def queries():
        total = 0
        for key in range(64):
            total += mm.node_bytes_of_range(key, 4096, 131072).total_bound
        return total

    assert benchmark(queries) > 0


def test_interconnect_rate_computation(benchmark):
    ic = Interconnect(TOPO)
    rng = np.random.default_rng(0)
    streams = [
        StreamKey(int(rng.integers(8)), int(rng.integers(8)), g)
        for g in range(32)
    ]
    rates = benchmark(lambda: ic.stream_rates(streams))
    assert len(rates) == 32


def test_dependency_tracking_rate(benchmark):
    def build():
        p = TaskProgram()
        objs = [p.data(f"o{i}", 4096) for i in range(32)]
        for t in range(2000):
            p.task(ins=[objs[t % 32]], outs=[objs[(t + 1) % 32]])
        return p.n_tasks

    assert benchmark(build) == 2000
