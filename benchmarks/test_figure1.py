"""Figure 1 regeneration — one benchmark per application bar group.

Each test benchmarks the LAS baseline simulation of one application at
paper scale, measures the DFIFO / RGP+LAS / EP speedups against it, records
the row into the session table (printed at the end — the reproduced
figure), and asserts the published *shape*:

* DFIFO loses clearly on the memory-bound apps (paper annotations 0.40,
  0.42, 0.49, 0.68);
* EP and RGP+LAS sit in or above the LAS band, with the NStream blow-out
  (paper: 1.75 / 1.74);
* QR is the flat negative control.

Margins are deliberately generous: the claim is shape, not absolute values.
"""

import pytest


def test_figure1_cg(paper_config, figure1_table, benchmark):
    from conftest import measure_app

    s = measure_app(paper_config, figure1_table, "cg", benchmark)
    assert s["dfifo"] < 0.8
    assert s["rgp+las"] > 0.95


def test_figure1_gauss_seidel(paper_config, figure1_table, benchmark):
    from conftest import measure_app

    s = measure_app(paper_config, figure1_table, "gauss-seidel", benchmark)
    assert s["dfifo"] < 0.9
    assert 0.7 < s["rgp+las"] < 1.4
    assert 0.7 < s["ep"] < 1.5


def test_figure1_histogram(paper_config, figure1_table, benchmark):
    from conftest import measure_app

    s = measure_app(paper_config, figure1_table, "histogram", benchmark)
    # Paper: DFIFO = 0.40 — the second-worst DFIFO case.
    assert s["dfifo"] < 0.6
    assert s["ep"] > 0.8


def test_figure1_jacobi(paper_config, figure1_table, benchmark):
    from conftest import measure_app

    s = measure_app(paper_config, figure1_table, "jacobi", benchmark)
    # Paper: DFIFO = 0.42.
    assert s["dfifo"] < 0.6
    assert s["rgp+las"] > 1.0
    assert s["ep"] > 1.0


def test_figure1_nstream(paper_config, figure1_table, benchmark):
    from conftest import measure_app

    s = measure_app(paper_config, figure1_table, "nstream", benchmark)
    # Paper: DFIFO = 0.49, EP = 1.75, RGP+LAS = 1.74 — the blow-out case.
    assert s["dfifo"] < 0.7
    assert s["ep"] > 1.4
    assert s["rgp+las"] > 1.4
    assert abs(s["ep"] - s["rgp+las"]) < 0.35  # RGP+LAS tracks EP


def test_figure1_qr(paper_config, figure1_table, benchmark):
    from conftest import measure_app

    s = measure_app(paper_config, figure1_table, "qr", benchmark)
    # Compute-bound negative control: every policy within ~35 % of LAS.
    assert 0.6 < s["dfifo"]
    assert 0.7 < s["rgp+las"] < 1.35
    assert 0.7 < s["ep"] < 1.45


def test_figure1_redblack(paper_config, figure1_table, benchmark):
    from conftest import measure_app

    s = measure_app(paper_config, figure1_table, "redblack", benchmark)
    assert s["dfifo"] < 0.7
    assert 0.8 < s["rgp+las"] < 1.4


def test_figure1_symminv(paper_config, figure1_table, benchmark):
    from conftest import measure_app

    s = measure_app(paper_config, figure1_table, "symminv", benchmark)
    # Paper: DFIFO = 0.68 — the mildest DFIFO collapse.
    assert 0.55 < s["dfifo"] < 1.0
    assert 0.8 < s["rgp+las"] < 1.4


def test_figure1_geomean(figure1_table, benchmark):
    """Runs after the per-app benches: the paper's headline number.

    Paper: RGP+LAS geometric mean 1.12x over LAS; DFIFO well below 1.
    """
    if len(figure1_table.apps) < 8:
        pytest.skip("per-app benches did not all run")
    gm_rgp = benchmark(lambda: figure1_table.geomean("rgp+las"))
    gm_dfifo = figure1_table.geomean("dfifo")
    gm_ep = figure1_table.geomean("ep")
    assert 1.0 <= gm_rgp <= 1.25, f"RGP+LAS geomean {gm_rgp:.3f} (paper 1.12)"
    assert gm_dfifo < 0.7, f"DFIFO geomean {gm_dfifo:.3f}"
    assert gm_ep >= gm_rgp - 0.05, "EP should not trail RGP+LAS materially"
