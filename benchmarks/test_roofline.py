"""Roofline study: where does placement stop mattering?

Sweeps the synthetic workload's compute intensity from pure streaming to
compute-bound and measures the RGP+LAS advantage over random placement.
The crossover (advantage -> 1) locates the machine model's roofline ridge
— the quantitative backdrop for Figure 1's QR-vs-NStream contrast.
"""

import numpy as np
import pytest

from repro.apps import SyntheticApp
from repro.machine import Interconnect, bullion_s16
from repro.runtime import Simulator
from repro.schedulers import make_scheduler

TOPO = bullion_s16()
# 131072-byte blocks stream in ~0.9 time units per task at the 0.30 core
# cap, so intensity 128 (work ~4.1) is firmly compute-bound.
INTENSITIES = (0.0, 32.0, 128.0)


def run_policy(program, policy, seeds=(0, 1)):
    out = []
    for seed in seeds:
        sim = Simulator(
            program, TOPO, make_scheduler(policy),
            interconnect=Interconnect(TOPO, link_fraction=0.45,
                                      core_fraction=0.30),
            steal="near", seed=seed,
        )
        out.append(sim.run().makespan)
    return float(np.mean(out))


@pytest.mark.parametrize("intensity", INTENSITIES)
def test_roofline_point(intensity, benchmark):
    app = SyntheticApp(kind="chains", scale=40, bytes_per_unit=131072,
                       compute_intensity=intensity)
    program = app.build(8)

    def run():
        random_mk = run_policy(program, "random")
        rgp_mk = run_policy(program, "rgp+las")
        return random_mk / rgp_mk

    advantage = benchmark.pedantic(run, rounds=1, iterations=1)
    assert advantage > 0.8


def test_placement_advantage_shrinks_with_intensity(benchmark):
    """The RGP-vs-random gap must be largest for streaming workloads."""

    def run():
        gaps = {}
        for intensity in (0.0, 128.0):
            app = SyntheticApp(kind="chains", scale=40,
                               bytes_per_unit=131072,
                               compute_intensity=intensity)
            program = app.build(8)
            gaps[intensity] = run_policy(program, "random") / run_policy(
                program, "rgp+las"
            )
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gaps[0.0] > gaps[128.0]
