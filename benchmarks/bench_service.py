#!/usr/bin/env python
"""Service load benchmark: jobs/s, p50/p99 latency, cache hits, recovery.

Boots a real ``repro serve`` process, drives it through the four-phase
chaos scenario of :func:`repro.service.loadgen.run_service_bench` (cold
batch, warm cache batch, worker-kill + poison-job chaos, SIGTERM +
restart zero-loss check) and writes the schema-validated
``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service.py --quick
    PYTHONPATH=src python benchmarks/bench_service.py --validate BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_service.json",
                        metavar="OUT.json")
    parser.add_argument("--quick", action="store_true",
                        help="smaller batch (CI smoke)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="unique jobs in the cold/warm batches "
                             "(default 40, quick 12)")
    parser.add_argument("--workers", type=int, default=None,
                        help="server worker processes (default 3, quick 2)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="concurrent in-flight submissions (default 16)")
    parser.add_argument("--chaos-jobs", type=int, default=None,
                        help="slow jobs in the chaos phase "
                             "(default 8, quick 4)")
    parser.add_argument("--data-dir", default=None, metavar="DIR",
                        help="server persistence dir (default: a tempdir)")
    parser.add_argument("--validate", default=None, metavar="FILE.json",
                        help="only validate an existing bench file's schema")
    args = parser.parse_args(argv)

    from repro.errors import BenchmarkError
    from repro.service.loadgen import (
        run_service_bench,
        validate_service_entries,
        write_service_entries,
    )

    if args.validate:
        try:
            entries = json.loads(open(args.validate).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.validate}: {exc}",
                  file=sys.stderr)
            return 6
        try:
            validate_service_entries(entries)
        except BenchmarkError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 6
        print(f"{args.validate}: schema OK ({len(entries)} entries)")
        return 0

    jobs = args.jobs if args.jobs is not None else (12 if args.quick else 40)
    workers = args.workers if args.workers is not None else (2 if args.quick else 3)
    chaos_jobs = (
        args.chaos_jobs if args.chaos_jobs is not None
        else (4 if args.quick else 8)
    )

    def run(data_dir: str) -> list[dict]:
        return run_service_bench(
            data_dir,
            jobs=jobs,
            workers=workers,
            concurrency=args.concurrency,
            chaos_jobs=chaos_jobs,
            progress=lambda m: print(f"  {m}", file=sys.stderr),
        )

    try:
        if args.data_dir:
            entries = run(args.data_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
                entries = run(tmp)
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 6
    write_service_entries(entries, args.out)
    print(f"bench results written to {args.out} ({len(entries)} entries)")
    for entry in entries:
        print(f"  {entry['name']:<24s} {entry['jobs']:>4d} jobs  "
              f"{entry['jobs_per_s']:8.1f} jobs/s  "
              f"p50 {entry['p50_ms']:7.1f}ms  p99 {entry['p99_ms']:7.1f}ms  "
              f"hit rate {entry['cache_hit_rate']:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
