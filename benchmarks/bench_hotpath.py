#!/usr/bin/env python
"""Standalone entry point for the scheduling hot-path benchmark.

Thin wrapper over :mod:`repro.bench.hotpath` so the harness can run
without installing the package::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick
    PYTHONPATH=src python benchmarks/bench_hotpath.py --validate BENCH_hotpath.json

Measures scheduler decisions/sec (LAS placement query, cache on/off) and
end-to-end simulation wall-clock across graph sizes, writes the schema
-checked ``BENCH_hotpath.json``, and verifies cached and uncached runs
produce byte-identical schedules.  ``repro bench`` is the same harness
behind the installed CLI.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.cli import main as cli_main

    return cli_main(["bench"] + list(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":
    raise SystemExit(main())
