"""The paper's primary contribution: runtime graph partitioning (RGP).

See :mod:`repro.core.rgp` for the schedulers and
:mod:`repro.core.window` for the window/trigger machinery.
"""

from .rgp import PROPAGATION_POLICIES, RGPLASScheduler, RGPScheduler
from .window import (
    DEFAULT_WINDOW_SIZE,
    WindowPlan,
    initial_window,
    partition_window,
)

__all__ = [
    "DEFAULT_WINDOW_SIZE",
    "PROPAGATION_POLICIES",
    "RGPLASScheduler",
    "RGPScheduler",
    "WindowPlan",
    "initial_window",
    "partition_window",
]
