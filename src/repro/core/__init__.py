"""The paper's primary contribution: runtime graph partitioning (RGP).

See :mod:`repro.core.rgp` for the schedulers and
:mod:`repro.core.window` for the window/trigger machinery.
"""

from .rgp import PROPAGATION_POLICIES, RGPLASScheduler, RGPScheduler
from .window import (
    AUTO_MAX_WINDOW,
    AUTO_MIN_WINDOW,
    AUTO_WINDOW,
    DEFAULT_WINDOW_SIZE,
    WindowPlan,
    WindowTracker,
    initial_window,
    next_auto_window_size,
    partition_window,
    resolve_window_size,
)

__all__ = [
    "AUTO_MAX_WINDOW",
    "AUTO_MIN_WINDOW",
    "AUTO_WINDOW",
    "DEFAULT_WINDOW_SIZE",
    "PROPAGATION_POLICIES",
    "RGPLASScheduler",
    "RGPScheduler",
    "WindowPlan",
    "WindowTracker",
    "initial_window",
    "next_auto_window_size",
    "partition_window",
    "resolve_window_size",
]
