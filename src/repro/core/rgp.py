"""Runtime graph partitioning (RGP) schedulers — the paper's contribution.

RGP buffers the TDG until the initial window closes (first barrier or the
window-size limit), partitions the window's subgraph with a SCOTCH-style
architecture-aware partitioner (edge weights = dependence bytes, parts =
sockets), and schedules every window task on its part's socket.  Because of
deferred allocation this *places the data*, not just the compute.

Tasks beyond the window are handled by a **propagation policy**:

* ``"las"`` — the paper's RGP+LAS: locality-aware scheduling inherits the
  window's placement through the physical location of each task's
  dependencies (the only evaluated variant);
* ``"repartition"`` — partition every subsequent window too, anchoring to
  already-placed predecessors (a natural extension, used in ablations);
* ``"random"`` / ``"cyclic"`` — degenerate propagations for ablations.

If ``partition_delay > 0`` the partition result only becomes available at
that simulated time; window tasks that become ready earlier wait in the
runtime's *temporary queue* (paper: "If tasks can be executed ... but the
partition is still pending, they are stored in a temporary queue").

Graceful degradation (DESIGN.md §7): if a ``partition_timeout`` fires
before the partition result arrives, RGP declares the partition lost,
re-offers every parked task and falls back to its propagation policy for
the whole window (``on_timeout="raise"`` raises
:class:`~repro.errors.PartitionTimeoutError` instead, for harnesses that
prefer fail-fast).  If an injected core failure kills a socket's last
core, window assignments targeting that socket are remapped to the
nearest surviving socket.
"""

from __future__ import annotations

import time

from ..errors import PartitionTimeoutError, SchedulerError
from ..graph.csr import CSRGraph
from ..partition.anchored import partition_with_anchors
from ..partition.interface import Partitioner, TargetArchitecture
from ..partition.recursive import DualRecursiveBipartitioner
from ..runtime.placement import Placement
from ..runtime.task import Task
from ..schedulers.base import Scheduler
from ..schedulers.las import las_pick_socket
from .window import DEFAULT_WINDOW_SIZE, initial_window, partition_window

PROPAGATION_POLICIES = ("las", "repartition", "random", "cyclic")


class RGPScheduler(Scheduler):
    """Window-partitioning scheduler with pluggable propagation."""

    name = "rgp"

    def __init__(
        self,
        partitioner: Partitioner | None = None,
        window_size: int = DEFAULT_WINDOW_SIZE,
        propagation: str = "las",
        partition_delay: float = 0.0,
        partition_seed: int | None = None,
        partition_timeout: float | None = None,
        on_timeout: str = "fallback",
    ) -> None:
        super().__init__()
        if propagation not in PROPAGATION_POLICIES:
            raise SchedulerError(
                f"unknown propagation {propagation!r}; "
                f"known: {PROPAGATION_POLICIES}"
            )
        if window_size < 1:
            raise SchedulerError(f"window size must be >= 1, got {window_size}")
        if partition_delay < 0:
            raise SchedulerError("partition delay must be >= 0")
        if partition_timeout is not None and partition_timeout < 0:
            raise SchedulerError("partition timeout must be >= 0")
        if on_timeout not in ("fallback", "raise"):
            raise SchedulerError(
                f"on_timeout must be 'fallback' or 'raise', got {on_timeout!r}"
            )
        self.partitioner = partitioner or DualRecursiveBipartitioner()
        self.window_size = int(window_size)
        self.propagation = propagation
        self.partition_delay = float(partition_delay)
        self.partition_seed = partition_seed
        self.partition_timeout = partition_timeout
        #: The constructor-configured deadline, kept so a fault plan's
        #: injected deadline (configure_faults) can be undone on the next
        #: attach — a reused scheduler must not carry a previous run's
        #: injected timeout into a fault-free run.
        self._configured_timeout = partition_timeout
        self.on_timeout = on_timeout
        # Run state (reset per attach/run).
        self._assignment: dict[int, int] = {}
        self._cutoff = 0
        self._partition_ready = False
        self._partition_lost = False
        self._next_cyclic = 0
        self._windows_partitioned = 0
        self._pending_window_stats: dict | None = None
        #: Decision audit: window-placed vs propagated counts (plus the
        #: LAS branch breakdown when propagation is "las").
        self.audit: dict[str, int] = {}

    # ------------------------------------------------------------------
    def attach(self, sim, rng) -> None:
        """Bind to a simulator; restore the configured partition deadline.

        The simulator attaches *before* it applies any fault plan
        (configure_faults), so a faulted run still sees its injected
        deadline, while a later fault-free run of the same scheduler
        object starts from the constructor value again.
        """
        super().attach(sim, rng)
        self.partition_timeout = self._configured_timeout

    def configure_faults(self, plan) -> None:
        """Adopt an injected partition deadline from the run's fault plan.

        The override lasts for this run only: the next :meth:`attach`
        restores the constructor-configured deadline.
        """
        if plan.partition_timeout is not None:
            self.partition_timeout = float(plan.partition_timeout)

    def on_program_start(self) -> None:
        program = self.sim.program
        obs = self.obs
        self._assignment = {}
        self._next_cyclic = 0
        self._windows_partitioned = 0
        self._partition_lost = False
        self._pending_window_stats = None
        # Observer wiring is per-run: instrumented runs stream the
        # partitioner's coarsen/initial/refine phases as events; untraced
        # runs must clear any observer left by a previous instrumented
        # run of the same scheduler object.
        if obs is not None and obs.events_enabled:
            self.partitioner.observer = self._partition_phase_observer
        else:
            self.partitioner.observer = None
        self._cutoff = initial_window(program, self.window_size)
        if obs is not None:
            obs.emit(
                self.sim.now, "rgp.window",
                cutoff=self._cutoff, window_size=self.window_size,
            )
            obs.emit(
                self.sim.now, "rgp.partition.begin",
                window=0, n_tasks=self._cutoff,
            )
        seed = (
            self.partition_seed
            if self.partition_seed is not None
            else int(self.rng.integers(2**31))
        )
        t0 = time.perf_counter() if obs is not None else 0.0
        plan = partition_window(
            program.tdg, self._cutoff, self.topology, self.partitioner,
            seed=seed, with_stats=obs is not None,
        )
        self._windows_partitioned = 1
        for tid in range(plan.cutoff):
            self._assignment[tid] = int(plan.assignment[tid])
        if obs is not None:
            self._pending_window_stats = {
                "window": 0,
                "n_tasks": self._cutoff,
                "edge_cut": plan.edge_cut,
                "mapping_cost": plan.mapping_cost,
                "host_us": (time.perf_counter() - t0) * 1e6,
            }
        if self.partition_delay > 0:
            self._partition_ready = False
            self.sim.schedule_timer(self.partition_delay, self._on_partition_done)
            if (
                self.partition_timeout is not None
                and self.partition_timeout < self.partition_delay
            ):
                self.sim.schedule_timer(
                    self.partition_timeout, self._on_partition_timeout
                )
        else:
            self._partition_ready = True
            self._emit_partition_end(delay=0.0)

    def _partition_phase_observer(self, kind: str, **args) -> None:
        """Forward partitioner phases as ``partition.*`` events (sim-time
        stamped: the phases happen at the instant the partition runs)."""
        self.obs.emit(self.sim.now, f"partition.{kind}", **args)

    def _emit_partition_end(self, delay: float) -> None:
        """Publish the pending window's quality figures (event + gauge)."""
        stats, self._pending_window_stats = self._pending_window_stats, None
        if stats is None or self.obs is None:
            return
        self.obs.emit(
            self.sim.now, "rgp.partition.end", delay=delay, **stats
        )
        reg = self.obs.registry
        if stats["edge_cut"] is not None:
            reg.gauge("rgp.edge_cut").set(self.sim.now, stats["edge_cut"])
        reg.counter("rgp.windows_partitioned").inc()

    def _on_partition_done(self) -> None:
        if self._partition_lost:
            return  # timed out earlier; the fallback already took over
        self._partition_ready = True
        self._emit_partition_end(delay=self.partition_delay)
        self.sim.reoffer(list(self.sim.parked))

    def _on_partition_timeout(self) -> None:
        """Partition result declared lost: degrade to the propagation
        policy for the whole window instead of waiting forever."""
        if self._partition_ready or self._partition_lost:
            return
        if self.on_timeout == "raise":
            raise PartitionTimeoutError(
                f"window partition result missed its deadline "
                f"({self.partition_timeout:g} < delay "
                f"{self.partition_delay:g})"
            )
        self._partition_lost = True
        self.audit["partition_timeout"] = 1
        if self.obs is not None:
            self.obs.emit(
                self.sim.now, "rgp.partition.timeout",
                deadline=self.partition_timeout, delay=self.partition_delay,
            )
            self.obs.registry.counter("rgp.partition_timeouts").inc()
        self.sim.reoffer(list(self.sim.parked))

    # ------------------------------------------------------------------
    def choose(self, task: Task) -> Placement:
        obs = self.obs
        if task.tid < self._cutoff:
            if self._partition_lost:
                self.audit["fallback"] = self.audit.get("fallback", 0) + 1
                return self._propagate(task, branch="fallback")
            if not self._partition_ready:
                if obs is not None:
                    obs.emit(
                        self.sim.now, "sched.choice",
                        tid=task.tid, policy=self.name, branch="park",
                    )
                return Placement(park=True)
            self.audit["window"] = self.audit.get("window", 0) + 1
            socket = self._assignment[task.tid]
            if obs is not None:
                obs.emit(
                    self.sim.now, "sched.choice",
                    tid=task.tid, policy=self.name, branch="window",
                    socket=socket,
                )
            return Placement(socket=socket)
        self.audit["propagated"] = self.audit.get("propagated", 0) + 1
        return self._propagate(task, branch="propagated")

    # ------------------------------------------------------------------
    def on_core_failed(self, core: int) -> None:
        """Remap stale window assignments when a socket loses its last core.

        The simulator already redirects *placements* to surviving sockets;
        remapping the assignment table as well keeps later lookups (and
        the "repartition" propagation's anchors) pointing at sockets that
        can actually run — and hold the data of — the work.
        """
        socket = self.sim.topology.socket_of_core(core)
        if self.sim.socket_alive(socket):
            return
        target = self.sim.nearest_alive_socket(socket)
        remapped = 0
        for tid, assigned in self._assignment.items():
            if assigned == socket and not self.sim.done[tid]:
                self._assignment[tid] = target
                remapped += 1
        if remapped:
            self.audit["remapped"] = self.audit.get("remapped", 0) + remapped

    def _propagate(self, task: Task, branch: str = "propagated") -> Placement:
        obs = self.obs
        detail: dict | None = (
            {} if obs is not None and obs.events_enabled else None
        )
        if self.propagation == "las":
            socket = las_pick_socket(
                task, self.memory, self.rng, self.topology.n_sockets,
                audit=self.audit, detail=detail,
            )
        elif self.propagation == "repartition":
            socket = self._repartition_lookup(task)
        elif self.propagation == "cyclic":
            socket = self._next_cyclic
            self._next_cyclic = (self._next_cyclic + 1) % self.topology.n_sockets
        else:
            socket = int(self.rng.integers(self.topology.n_sockets))
        if obs is not None:
            if detail:  # LAS evidence: keep its branch under its own key
                detail["las_branch"] = detail.pop("branch")
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, branch=branch,
                propagation=self.propagation, socket=socket,
                **(detail or {}),
            )
        return Placement(socket=socket)

    # ------------------------------------------------------------------
    # "repartition" propagation: partition later windows on demand.
    # ------------------------------------------------------------------
    def _repartition_lookup(self, task: Task) -> int:
        if task.tid not in self._assignment:
            self._partition_window_of(task.tid)
        return self._assignment[task.tid]

    def _partition_window_of(self, tid: int) -> None:
        """Partition the whole window containing ``tid``.

        The window subgraph is augmented with **anchor** vertices: already
        -assigned tasks that have dependence edges into the window appear
        as fixed vertices on their sockets, so the partitioner pulls the
        window towards the data it consumes (proper fixed-vertex
        repartitioning, see :mod:`repro.partition.anchored`).
        """
        program = self.sim.program
        obs = self.obs
        lo = self._cutoff + ((tid - self._cutoff) // self.window_size) * self.window_size
        hi = min(lo + self.window_size, program.n_tasks)
        window_idx = 1 + (lo - self._cutoff) // self.window_size
        if obs is not None:
            obs.emit(
                self.sim.now, "rgp.partition.begin",
                window=window_idx, n_tasks=hi - lo,
            )
        t0 = time.perf_counter() if obs is not None else 0.0
        window = list(range(lo, hi))
        # Assigned tasks adjacent to the window become anchors.
        anchor_olds = sorted({
            pred
            for t in window
            for pred in program.tdg.predecessors(t)
            if pred in self._assignment
        })
        sub, old_ids = program.tdg.subgraph(anchor_olds + window)
        new_of_old = {old: new for new, old in enumerate(old_ids)}
        anchors = {
            new_of_old[old]: self._assignment[old] for old in anchor_olds
        }
        csr = CSRGraph.from_tdg(sub)
        target = TargetArchitecture.from_topology(self.topology)
        seed = int(self.rng.integers(2**31))
        result = partition_with_anchors(
            csr, self.topology.n_sockets, anchors, self.partitioner,
            target=target, seed=seed,
        )
        for new_id, old_id in enumerate(old_ids):
            if old_id >= lo:  # window tasks only; anchors keep their socket
                self._assignment[old_id] = int(result.parts[new_id])
        self._windows_partitioned += 1
        if obs is not None:
            from ..partition.metrics import edge_cut

            # Cut over the anchored subgraph (anchor vertices included).
            cut = edge_cut(csr, result.parts)
            obs.emit(
                self.sim.now, "rgp.partition.end",
                window=window_idx, n_tasks=hi - lo, delay=0.0,
                edge_cut=cut, mapping_cost=None,
                host_us=(time.perf_counter() - t0) * 1e6,
            )
            reg = obs.registry
            reg.gauge("rgp.edge_cut").set(self.sim.now, cut)
            reg.counter("rgp.windows_partitioned").inc()

    @property
    def windows_partitioned(self) -> int:
        """How many windows have been partitioned so far (diagnostics)."""
        return self._windows_partitioned


class RGPLASScheduler(RGPScheduler):
    """RGP+LAS — the paper's headline policy (fixed LAS propagation)."""

    name = "rgp+las"

    def __init__(
        self,
        partitioner: Partitioner | None = None,
        window_size: int = DEFAULT_WINDOW_SIZE,
        partition_delay: float = 0.0,
        partition_seed: int | None = None,
        partition_timeout: float | None = None,
        on_timeout: str = "fallback",
    ) -> None:
        super().__init__(
            partitioner=partitioner,
            window_size=window_size,
            propagation="las",
            partition_delay=partition_delay,
            partition_seed=partition_seed,
            partition_timeout=partition_timeout,
            on_timeout=on_timeout,
        )
