"""Runtime graph partitioning (RGP) schedulers — the paper's contribution.

RGP buffers the TDG until the initial window closes (first barrier or the
window-size limit), partitions the window's subgraph with a SCOTCH-style
architecture-aware partitioner (edge weights = dependence bytes, parts =
sockets), and schedules every window task on its part's socket.  Because of
deferred allocation this *places the data*, not just the compute.

Tasks beyond the window are handled by a **propagation policy**:

* ``"las"`` — the paper's RGP+LAS: locality-aware scheduling inherits the
  window's placement through the physical location of each task's
  dependencies (the only evaluated variant);
* ``"repartition"`` — partition every subsequent window too, anchoring to
  already-placed predecessors (a natural extension, used in ablations);
* ``"random"`` / ``"cyclic"`` — degenerate propagations for ablations.

If ``partition_delay > 0`` the partition result only becomes available at
that simulated time; window tasks that become ready earlier wait in the
runtime's *temporary queue* (paper: "If tasks can be executed ... but the
partition is still pending, they are stored in a temporary queue").

Pipelined asynchronous repartitioning (DESIGN.md §10): with
``propagation="repartition"``, ``partition_delay > 0`` and a
``prefetch_threshold`` in ``(0, 1]``, later windows stop being free.
Window *k+1*'s partition is *launched* — a sim-time activity delivered
``partition_delay`` later through the same timer machinery as the initial
window — as soon as ``prefetch_threshold`` of window *k*'s tasks have
finished (or on demand, when a window *k+1* task becomes ready first).
Tasks arriving before the delivery park in the temporary queue keyed by
their window; the per-window ``partition_timeout`` degradation mirrors the
initial window's.  ``prefetch_threshold=1.0`` is the *blocking* reference
point (no overlap ahead of need); ``prefetch_threshold=None`` (default)
disables the machinery entirely and later windows are partitioned
synchronously at zero simulated cost, byte-identical to the original
scheduler (the inertness guarantee, pinned by a golden-schedule test).

Adaptive window sizing: ``window_size="auto"`` sizes each later window so
the measured partition latency stays hidden behind the current window's
remaining execution time, using the simulator's observed task throughput
(control law in :func:`repro.core.window.next_auto_window_size`); resizes
emit ``rgp.window.resize`` events and any exposed latency accumulates in
the ``rgp.pipeline.stall_us`` gauge.

Graceful degradation (DESIGN.md §7): if a ``partition_timeout`` fires
before the partition result arrives, RGP declares the partition lost,
re-offers every parked task and falls back to its propagation policy for
the whole window (``on_timeout="raise"`` raises
:class:`~repro.errors.PartitionTimeoutError` instead, for harnesses that
prefer fail-fast).  The deadline is *strict* and applies only while a
delivery is pending: a result arriving exactly at the deadline is late,
and ``partition_delay=0`` delivers at launch so no deadline ever applies.
If an injected core failure kills a socket's last core, window assignments
targeting that socket are remapped to the nearest surviving socket.
"""

from __future__ import annotations

import math
import time

from ..errors import PartitionTimeoutError, SchedulerError
from ..graph.csr import CSRGraph
from ..partition.anchored import partition_with_anchors
from ..partition.interface import Partitioner, TargetArchitecture
from ..partition.recursive import DualRecursiveBipartitioner
from ..runtime.placement import Placement
from ..runtime.task import Task
from ..schedulers.base import Scheduler
from ..schedulers.las import las_pick_socket
from .window import (
    AUTO_WINDOW,
    DEFAULT_WINDOW_SIZE,
    WindowTracker,
    initial_window,
    next_auto_window_size,
    partition_window,
    resolve_window_size,
)

PROPAGATION_POLICIES = ("las", "repartition", "random", "cyclic")

#: Pipelined window delivery states (later windows only; window 0 keeps
#: its original ``_partition_ready`` / ``_partition_lost`` flags).
_PENDING, _READY, _LOST = "pending", "ready", "lost"

#: Public aliases for end-of-run validation (runtime.validation drains the
#: pipeline state; repro.verify inspects it in divergence diagnostics).
WINDOW_PENDING, WINDOW_READY, WINDOW_LOST = _PENDING, _READY, _LOST


class RGPScheduler(Scheduler):
    """Window-partitioning scheduler with pluggable propagation."""

    name = "rgp"

    def __init__(
        self,
        partitioner: Partitioner | None = None,
        window_size: int | str = DEFAULT_WINDOW_SIZE,
        propagation: str = "las",
        partition_delay: float = 0.0,
        partition_seed: int | None = None,
        partition_timeout: float | None = None,
        on_timeout: str = "fallback",
        prefetch_threshold: float | None = None,
        hierarchical: bool | str = "auto",
    ) -> None:
        super().__init__()
        if propagation not in PROPAGATION_POLICIES:
            raise SchedulerError(
                f"unknown propagation {propagation!r}; "
                f"known: {PROPAGATION_POLICIES}"
            )
        #: Base size for the initial window (and fixed later windows);
        #: validates the spec, so a bad ``window_size`` fails here.
        self._base_window_size = resolve_window_size(window_size)
        if partition_delay < 0:
            raise SchedulerError("partition delay must be >= 0")
        if partition_timeout is not None and partition_timeout < 0:
            raise SchedulerError("partition timeout must be >= 0")
        if on_timeout not in ("fallback", "raise"):
            raise SchedulerError(
                f"on_timeout must be 'fallback' or 'raise', got {on_timeout!r}"
            )
        if prefetch_threshold is not None:
            if not 0.0 < prefetch_threshold <= 1.0:
                raise SchedulerError(
                    f"prefetch_threshold must be in (0, 1] or None, "
                    f"got {prefetch_threshold}"
                )
            if propagation != "repartition":
                raise SchedulerError(
                    "prefetch_threshold requires propagation='repartition' "
                    f"(pipelined repartitioning), got {propagation!r}"
                )
        if hierarchical not in (True, False, "auto"):
            raise SchedulerError(
                f"hierarchical must be True, False or 'auto', got "
                f"{hierarchical!r}"
            )
        self.partitioner = partitioner or DualRecursiveBipartitioner()
        #: Cluster mode: partition across boxes first, then within each
        #: box (DESIGN.md §15).  ``"auto"`` turns it on exactly when the
        #: attached machine is a cluster; resolved per run in
        #: :meth:`on_program_start` because the topology is known only at
        #: attach time.
        self.hierarchical = hierarchical
        self._active_partitioner: Partitioner = self.partitioner
        self.window_size = (
            AUTO_WINDOW if window_size == AUTO_WINDOW else int(window_size)
        )
        self._auto_window = window_size == AUTO_WINDOW
        self.propagation = propagation
        self.partition_delay = float(partition_delay)
        self.partition_seed = partition_seed
        self.partition_timeout = partition_timeout
        #: The constructor-configured deadline, kept so a fault plan's
        #: injected deadline (configure_faults) can be undone on the next
        #: attach — a reused scheduler must not carry a previous run's
        #: injected timeout into a fault-free run.
        self._configured_timeout = partition_timeout
        self.on_timeout = on_timeout
        self.prefetch_threshold = (
            float(prefetch_threshold) if prefetch_threshold is not None
            else None
        )
        # Run state (reset per run in on_program_start).
        self._assignment: dict[int, int] = {}
        self._cutoff = 0
        self._partition_ready = False
        self._partition_lost = False
        self._next_cyclic = 0
        self._windows_partitioned = 0
        self._pending_window_stats: dict | None = None
        self._windows: WindowTracker | None = None
        self._pipeline = False
        self._window_state: dict[int, str] = {}
        self._pending_assignments: dict[int, dict[int, int]] = {}
        self._pending_stats: dict[int, dict | None] = {}
        self._finished_in_window: dict[int, int] = {}
        self._first_park_ts: dict[int, float] = {}
        #: Cumulative exposed pipeline latency (sim time a window's first
        #: parked task waited past its arrival); mirrored into the
        #: ``rgp.pipeline.stall_us`` gauge on instrumented runs.
        self.pipeline_stall_time = 0.0
        #: Decision audit: window-placed vs propagated counts (plus the
        #: LAS branch breakdown when propagation is "las").
        self.audit: dict[str, int] = {}

    # ------------------------------------------------------------------
    def attach(self, sim, rng) -> None:
        """Bind to a simulator; restore the configured partition deadline.

        The simulator attaches *before* it applies any fault plan
        (configure_faults), so a faulted run still sees its injected
        deadline, while a later fault-free run of the same scheduler
        object starts from the constructor value again.
        """
        super().attach(sim, rng)
        self.partition_timeout = self._configured_timeout

    def configure_faults(self, plan) -> None:
        """Adopt an injected partition deadline from the run's fault plan.

        The override lasts for this run only: the next :meth:`attach`
        restores the constructor-configured deadline.
        """
        if plan.partition_timeout is not None:
            self.partition_timeout = float(plan.partition_timeout)

    def on_program_start(self) -> None:
        program = self.sim.program
        obs = self.obs
        # Per-run state: a scheduler object reused across runs must start
        # every run from scratch (the audit-accumulation regression).
        self.audit = {}
        self._assignment = {}
        self._next_cyclic = 0
        self._windows_partitioned = 0
        self._partition_lost = False
        self._pending_window_stats = None
        self._window_state = {}
        self._pending_assignments = {}
        self._pending_stats = {}
        self._finished_in_window = {}
        self._first_park_ts = {}
        self.pipeline_stall_time = 0.0
        self._pipeline = (
            self.prefetch_threshold is not None
            and self.propagation == "repartition"
            and self.partition_delay > 0
        )
        # Resolve the per-run partitioner: on a cluster machine (or when
        # forced on) wrap the configured partitioner in the two-level
        # hierarchical scheme — boxes first, sockets within each box.
        use_hier = (
            self.hierarchical is True
            or (
                self.hierarchical == "auto"
                and getattr(self.topology, "n_boxes", 1) > 1
            )
        )
        if use_hier:
            from ..partition.hierarchical import HierarchicalPartitioner

            self._active_partitioner = HierarchicalPartitioner.for_topology(
                self.topology, inner=self.partitioner
            )
        else:
            self._active_partitioner = self.partitioner
        # Observer wiring is per-run: instrumented runs stream the
        # partitioner's coarsen/initial/refine phases as events; untraced
        # runs must clear any observer left by a previous instrumented
        # run of the same scheduler object.
        if obs is not None and obs.events_enabled:
            self._active_partitioner.observer = self._partition_phase_observer
        else:
            self._active_partitioner.observer = None
        self._cutoff = initial_window(program, self._base_window_size)
        self._windows = WindowTracker(
            self._cutoff, program.n_tasks, self._base_window_size
        )
        if obs is not None:
            obs.emit(
                self.sim.now, "rgp.window",
                cutoff=self._cutoff, window_size=self.window_size,
            )
            obs.emit(
                self.sim.now, "rgp.partition.begin",
                window=0, n_tasks=self._cutoff,
            )
        seed = (
            self.partition_seed
            if self.partition_seed is not None
            else int(self.rng.integers(2**31))
        )
        t0 = time.perf_counter() if obs is not None else 0.0
        plan = partition_window(
            program.tdg, self._cutoff, self.topology, self._active_partitioner,
            seed=seed, with_stats=obs is not None,
        )
        self._windows_partitioned = 1
        for tid in range(plan.cutoff):
            self._assignment[tid] = int(plan.assignment[tid])
        if obs is not None:
            self._pending_window_stats = {
                "window": 0,
                "n_tasks": self._cutoff,
                "edge_cut": plan.edge_cut,
                "mapping_cost": plan.mapping_cost,
                "host_us": (time.perf_counter() - t0) * 1e6,
            }
        if self.partition_delay > 0:
            self._partition_ready = False
            self._window_state[0] = _PENDING
            # Strict deadline: at ``timeout == delay`` the deadline timer
            # is scheduled first, so it pops first and the delivery loses.
            if self.partition_timeout is not None:
                self.sim.schedule_timer(
                    self.partition_timeout, self._on_partition_timeout
                )
            self.sim.schedule_timer(self.partition_delay, self._on_partition_done)
        else:
            self._partition_ready = True
            self._window_state[0] = _READY
            self._emit_partition_end(delay=0.0)

    def _partition_phase_observer(self, kind: str, **args) -> None:
        """Forward partitioner phases as ``partition.*`` events (sim-time
        stamped: the phases happen at the instant the partition runs)."""
        self.obs.emit(self.sim.now, f"partition.{kind}", **args)

    def _emit_partition_end(self, delay: float) -> None:
        """Publish the pending window's quality figures (event + gauge)."""
        stats, self._pending_window_stats = self._pending_window_stats, None
        if stats is None or self.obs is None:
            return
        self._publish_window_stats(stats, delay=delay)

    def _publish_window_stats(self, stats: dict, delay: float) -> None:
        """``rgp.partition.end`` event plus the edge-cut gauge/counter."""
        obs = self.obs
        obs.emit(self.sim.now, "rgp.partition.end", delay=delay, **stats)
        reg = obs.registry
        if stats["edge_cut"] is not None:
            reg.gauge("rgp.edge_cut").set(self.sim.now, stats["edge_cut"])
        reg.counter("rgp.windows_partitioned").inc()

    def _on_partition_done(self) -> None:
        if self._partition_lost:
            return  # timed out earlier; the fallback already took over
        self._partition_ready = True
        self._window_state[0] = _READY
        self._emit_partition_end(delay=self.partition_delay)
        if self._pipeline:
            self._record_stall(0)
            self.sim.reoffer_key(0)
        else:
            self.sim.reoffer(list(self.sim.parked))

    def _on_partition_timeout(self) -> None:
        """Partition result declared lost: degrade to the propagation
        policy for the whole window instead of waiting forever."""
        if self._partition_ready or self._partition_lost:
            return
        if self.on_timeout == "raise":
            raise PartitionTimeoutError(
                f"window partition result missed its deadline "
                f"({self.partition_timeout:g} <= delay "
                f"{self.partition_delay:g})"
            )
        self._partition_lost = True
        self._window_state[0] = _LOST
        self.audit["partition_timeout"] = 1
        if self.obs is not None:
            self.obs.emit(
                self.sim.now, "rgp.partition.timeout",
                deadline=self.partition_timeout, delay=self.partition_delay,
            )
            self.obs.registry.counter("rgp.partition_timeouts").inc()
        if self._pipeline:
            self._record_stall(0)
            self.sim.reoffer_key(0)
        else:
            self.sim.reoffer(list(self.sim.parked))

    # ------------------------------------------------------------------
    def choose(self, task: Task) -> Placement:
        obs = self.obs
        if task.tid < self._cutoff:
            if self._partition_lost:
                self.audit["fallback"] = self.audit.get("fallback", 0) + 1
                return self._propagate(task, branch="fallback")
            if not self._partition_ready:
                if obs is not None:
                    obs.emit(
                        self.sim.now, "sched.choice",
                        tid=task.tid, policy=self.name, branch="park",
                    )
                if self._pipeline:
                    self._first_park_ts.setdefault(0, self.sim.now)
                    return Placement(park=True, park_key=0)
                return Placement(park=True)
            self.audit["window"] = self.audit.get("window", 0) + 1
            socket = self._assignment[task.tid]
            if obs is not None:
                obs.emit(
                    self.sim.now, "sched.choice",
                    tid=task.tid, policy=self.name, branch="window",
                    socket=socket,
                )
            return Placement(socket=socket)
        if self._pipeline:
            window = self._windows.index_of(task.tid)
            state = self._window_state.get(window)
            if state is None:
                # The window's partition was never launched (its tasks
                # became ready before the previous window hit the
                # prefetch threshold): launch it now and park.
                self._launch_window_partition(window, trigger="demand")
                state = self._window_state.get(window, _READY)
            if state == _PENDING:
                self._first_park_ts.setdefault(window, self.sim.now)
                if obs is not None:
                    obs.emit(
                        self.sim.now, "sched.choice",
                        tid=task.tid, policy=self.name, branch="park",
                        window=window,
                    )
                return Placement(park=True, park_key=window)
            if state == _LOST:
                self.audit["fallback"] = self.audit.get("fallback", 0) + 1
                return self._propagate(task, branch="fallback")
        self.audit["propagated"] = self.audit.get("propagated", 0) + 1
        return self._propagate(task, branch="propagated")

    # ------------------------------------------------------------------
    def on_task_finished(self, task: Task) -> None:
        """Prefetch trigger: launch window *k+1* once ``prefetch_threshold``
        of window *k*'s tasks have finished (pipelining only)."""
        if not self._pipeline:
            return
        window = self._windows.index_of(task.tid)
        done = self._finished_in_window.get(window, 0) + 1
        self._finished_in_window[window] = done
        nxt = window + 1
        if nxt in self._window_state:
            return  # already launched (or delivered / lost)
        lo = self._windows.bounds[window]
        hi = self._windows.bounds[window + 1]
        trigger_at = max(1, math.ceil(self.prefetch_threshold * (hi - lo)))
        if done >= trigger_at and hi < self.sim.program.n_tasks:
            self._launch_window_partition(nxt, trigger="prefetch")

    # ------------------------------------------------------------------
    def on_core_failed(self, core: int) -> None:
        """Remap stale window assignments when a socket loses its last core.

        The simulator already redirects *placements* to surviving sockets;
        remapping the assignment table as well keeps later lookups (and
        the "repartition" propagation's anchors) pointing at sockets that
        can actually run — and hold the data of — the work.
        """
        socket = self.sim.topology.socket_of_core(core)
        if self.sim.socket_alive(socket):
            return
        target = self.sim.nearest_alive_socket(socket)
        remapped = 0
        for tid, assigned in self._assignment.items():
            if assigned == socket and not self.sim.done[tid]:
                self._assignment[tid] = target
                remapped += 1
        # In-flight pipelined partitions are placement promises too: a
        # delivery after the socket died must not target it.
        for pending in self._pending_assignments.values():
            for tid, assigned in pending.items():
                if assigned == socket:
                    pending[tid] = target
                    remapped += 1
        if remapped:
            self.audit["remapped"] = self.audit.get("remapped", 0) + remapped

    def _propagate(self, task: Task, branch: str = "propagated") -> Placement:
        obs = self.obs
        detail: dict | None = (
            {} if obs is not None and obs.events_enabled else None
        )
        if self.propagation == "las":
            socket = las_pick_socket(
                task, self.memory, self.rng, self.topology.n_sockets,
                audit=self.audit, detail=detail,
            )
        elif self.propagation == "repartition":
            socket = self._repartition_lookup(task)
        elif self.propagation == "cyclic":
            socket = self._next_cyclic
            self._next_cyclic = (self._next_cyclic + 1) % self.topology.n_sockets
        else:
            socket = int(self.rng.integers(self.topology.n_sockets))
        if obs is not None:
            if detail:  # LAS evidence: keep its branch under its own key
                detail["las_branch"] = detail.pop("branch")
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, branch=branch,
                propagation=self.propagation, socket=socket,
                **(detail or {}),
            )
        return Placement(socket=socket)

    # ------------------------------------------------------------------
    # "repartition" propagation: partition later windows on demand.
    # ------------------------------------------------------------------
    def _repartition_lookup(self, task: Task) -> int:
        if task.tid not in self._assignment:
            self._partition_window_of(task.tid)
        return self._assignment[task.tid]

    def _partition_window_of(self, tid: int) -> None:
        """Synchronously partition the whole window containing ``tid``
        (the zero-latency legacy path used when pipelining is off)."""
        window = self._windows.index_of(tid)
        assignment, stats = self._compute_window_partition(window)
        self._assignment.update(assignment)
        self._windows_partitioned += 1
        if stats is not None:
            self._publish_window_stats(stats, delay=0.0)

    def _compute_window_partition(
        self, window: int
    ) -> tuple[dict[int, int], dict | None]:
        """Partition one later window, anchored to placed predecessors.

        The window subgraph is augmented with **anchor** vertices: already
        -assigned tasks that have dependence edges into the window appear
        as fixed vertices on their sockets, so the partitioner pulls the
        window towards the data it consumes (proper fixed-vertex
        repartitioning, see :mod:`repro.partition.anchored`).  Returns the
        window's ``tid -> socket`` assignment plus the quality stats for
        the ``rgp.partition.end`` event (``None`` when uninstrumented).
        """
        program = self.sim.program
        obs = self.obs
        lo, hi = self._windows.span(window)
        if obs is not None:
            obs.emit(
                self.sim.now, "rgp.partition.begin",
                window=window, n_tasks=hi - lo,
            )
        t0 = time.perf_counter() if obs is not None else 0.0
        tids = list(range(lo, hi))
        # Assigned tasks adjacent to the window become anchors.
        anchor_olds = sorted({
            pred
            for t in tids
            for pred in program.tdg.predecessors(t)
            if pred in self._assignment
        })
        sub, old_ids = program.tdg.subgraph(anchor_olds + tids)
        new_of_old = {old: new for new, old in enumerate(old_ids)}
        anchors = {
            new_of_old[old]: self._assignment[old] for old in anchor_olds
        }
        csr = CSRGraph.from_tdg(sub)
        target = TargetArchitecture.from_topology(self.topology)
        seed = int(self.rng.integers(2**31))
        result = partition_with_anchors(
            csr, self.topology.n_sockets, anchors, self._active_partitioner,
            target=target, seed=seed,
        )
        assignment = {
            old_id: int(result.parts[new_id])
            for new_id, old_id in enumerate(old_ids)
            if old_id >= lo  # window tasks only; anchors keep their socket
        }
        stats = None
        if obs is not None:
            from ..partition.metrics import edge_cut

            # Cut over the anchored subgraph (anchor vertices included).
            stats = {
                "window": window,
                "n_tasks": hi - lo,
                "edge_cut": edge_cut(csr, result.parts),
                "mapping_cost": None,
                "host_us": (time.perf_counter() - t0) * 1e6,
            }
        return assignment, stats

    # ------------------------------------------------------------------
    # Pipelined asynchronous repartitioning (DESIGN.md §10).
    # ------------------------------------------------------------------
    def _launch_window_partition(self, window: int, trigger: str) -> None:
        """Start window ``window``'s partition as a sim-time activity.

        The partition itself is computed host-side now (with the anchors
        known *at launch time* — pipelining trades anchor freshness for
        overlap), but its result is only delivered ``partition_delay``
        later; a configured ``partition_timeout`` arms a strict per-window
        deadline relative to the launch instant.
        """
        if window == 0 or window in self._window_state:
            return
        if self._auto_window:
            self._adapt_window_size(window)
        self._windows.ensure(window)
        if window >= self._windows.n_windows:
            return  # beyond the program end; nothing to partition
        if self.obs is not None:
            lo, hi = self._windows.span(window)
            self.obs.emit(
                self.sim.now, "rgp.partition.launch",
                window=window, n_tasks=hi - lo, trigger=trigger,
            )
        self._window_state[window] = _PENDING
        assignment, stats = self._compute_window_partition(window)
        self._pending_assignments[window] = assignment
        self._pending_stats[window] = stats
        self._windows_partitioned += 1
        if self.partition_timeout is not None:
            # Deadline timer first: at ``timeout == delay`` it pops first
            # (strict deadline, same ordering as window 0).
            self.sim.schedule_timer(
                self.partition_timeout,
                lambda: self._on_window_partition_timeout(window),
            )
        self.sim.schedule_timer(
            self.partition_delay,
            lambda: self._on_window_partition_done(window),
        )

    def _adapt_window_size(self, window: int) -> None:
        """Steer the size of not-yet-materialised windows (DESIGN.md §10)."""
        sim = self.sim
        if sim.now <= 0.0 or sim.n_done == 0:
            return
        throughput = sim.n_done / sim.now
        old = self._windows.next_size
        new = next_auto_window_size(
            old, throughput, self.partition_delay, self.prefetch_threshold
        )
        if new != old:
            self._windows.next_size = new
            if self.obs is not None:
                self.obs.emit(
                    sim.now, "rgp.window.resize",
                    window=window, old=old, new=new, throughput=throughput,
                )

    def _on_window_partition_done(self, window: int) -> None:
        if self._window_state.get(window) != _PENDING:
            return  # timed out earlier; the fallback already took over
        self._window_state[window] = _READY
        self._assignment.update(self._pending_assignments.pop(window, {}))
        stats = self._pending_stats.pop(window, None)
        if stats is not None and self.obs is not None:
            self._publish_window_stats(stats, delay=self.partition_delay)
        self._record_stall(window)
        self.sim.reoffer_key(window)

    def _on_window_partition_timeout(self, window: int) -> None:
        """Per-window deadline: declare the window's partition lost.

        Degradation for the "repartition" propagation mirrors window 0's:
        the host-computed assignment is adopted at zero further charge
        (the model stops waiting for the delivery), parked tasks are
        re-offered immediately and audit as ``fallback``.
        """
        if self._window_state.get(window) != _PENDING:
            return
        if self.on_timeout == "raise":
            raise PartitionTimeoutError(
                f"window {window} partition result missed its deadline "
                f"({self.partition_timeout:g} <= delay "
                f"{self.partition_delay:g} after launch)"
            )
        self._window_state[window] = _LOST
        self.audit["partition_timeout"] = (
            self.audit.get("partition_timeout", 0) + 1
        )
        if self.obs is not None:
            self.obs.emit(
                self.sim.now, "rgp.partition.timeout",
                window=window, deadline=self.partition_timeout,
                delay=self.partition_delay,
            )
            self.obs.registry.counter("rgp.partition_timeouts").inc()
        self._assignment.update(self._pending_assignments.pop(window, {}))
        self._pending_stats.pop(window, None)
        self._record_stall(window)
        self.sim.reoffer_key(window)

    def _record_stall(self, window: int) -> None:
        """Accumulate exposed pipeline latency for ``window`` (time its
        first parked task spent waiting past arrival)."""
        first = self._first_park_ts.pop(window, None)
        if first is None:
            return
        self.pipeline_stall_time += self.sim.now - first
        if self.obs is not None:
            self.obs.registry.gauge("rgp.pipeline.stall_us").set(
                self.sim.now, self.pipeline_stall_time
            )

    @property
    def windows_partitioned(self) -> int:
        """How many windows have been partitioned so far (diagnostics)."""
        return self._windows_partitioned

    @property
    def pipelining_active(self) -> bool:
        """True while pipelined repartitioning is in effect for this run."""
        return self._pipeline


class RGPLASScheduler(RGPScheduler):
    """RGP+LAS — the paper's headline policy (fixed LAS propagation)."""

    name = "rgp+las"

    def __init__(
        self,
        partitioner: Partitioner | None = None,
        window_size: int | str = DEFAULT_WINDOW_SIZE,
        partition_delay: float = 0.0,
        partition_seed: int | None = None,
        partition_timeout: float | None = None,
        on_timeout: str = "fallback",
        hierarchical: bool | str = "auto",
    ) -> None:
        super().__init__(
            partitioner=partitioner,
            window_size=window_size,
            propagation="las",
            partition_delay=partition_delay,
            partition_seed=partition_seed,
            partition_timeout=partition_timeout,
            on_timeout=on_timeout,
            hierarchical=hierarchical,
        )
