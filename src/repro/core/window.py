"""The RGP window: which prefix of the TDG gets partitioned, and how.

The paper (§2.2): "The graph is updated every time new tasks are
instantiated, and partitioned once the execution goes through a barrier
point or a limit in terms of the total number of tasks contained in the
graph — the window size limit — is reached."

:func:`initial_window` computes that trigger point; :func:`partition_window`
runs the partitioner on the prefix subgraph with edge weights = dependence
bytes and the machine's sockets (with their memory latencies) as the
mapping target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchedulerError
from ..graph.csr import CSRGraph
from ..graph.tdg import TaskGraph
from ..machine.topology import NumaTopology
from ..partition.interface import Partitioner, TargetArchitecture
from ..runtime.program import TaskProgram

#: Default window-size limit (tasks).
DEFAULT_WINDOW_SIZE = 1024


@dataclass(frozen=True)
class WindowPlan:
    """Result of partitioning the initial window.

    ``edge_cut`` / ``mapping_cost`` are partition-quality figures filled
    only when the caller asked for them (``with_stats=True``); ``None``
    otherwise so the untraced fast path computes nothing extra.
    """

    cutoff: int  # tasks [0, cutoff) are covered
    assignment: np.ndarray  # shape (cutoff,), socket per task
    edge_cut: float | None = None
    mapping_cost: float | None = None


def initial_window(program: TaskProgram, window_size: int) -> int:
    """Number of leading tasks in the initial subgraph (trigger point)."""
    if window_size < 1:
        raise SchedulerError(f"window size must be >= 1, got {window_size}")
    return program.first_partition_point(window_size)


def partition_window(
    tdg: TaskGraph,
    cutoff: int,
    topology: NumaTopology,
    partitioner: Partitioner,
    seed: int = 0,
    with_stats: bool = False,
) -> WindowPlan:
    """Partition the first ``cutoff`` tasks onto the machine's sockets.

    Vertex weights are task work (balance = compute balance); edge weights
    are dependence bytes; the target architecture carries the socket
    distance matrix so an architecture-aware partitioner (DRB) keeps heavy
    edges on nearby sockets.

    ``with_stats=True`` additionally computes the plan's edge cut and
    SCOTCH mapping cost (for ``rgp.partition.end`` trace events and the
    ``rgp.edge_cut`` gauge); the default skips both.
    """
    if cutoff < 0:
        raise SchedulerError("cutoff must be >= 0")
    prefix = tdg.prefix(cutoff)
    csr = CSRGraph.from_tdg(prefix)
    target = TargetArchitecture.from_topology(topology)
    result = partitioner.partition(csr, topology.n_sockets, target=target, seed=seed)
    cut = cost = None
    if with_stats:
        from ..partition.metrics import edge_cut, mapping_cost

        cut = edge_cut(csr, result.parts)
        cost = mapping_cost(csr, result.parts, target.distance)
    return WindowPlan(
        cutoff=cutoff, assignment=result.parts,
        edge_cut=cut, mapping_cost=cost,
    )
