"""The RGP window: which prefix of the TDG gets partitioned, and how.

The paper (§2.2): "The graph is updated every time new tasks are
instantiated, and partitioned once the execution goes through a barrier
point or a limit in terms of the total number of tasks contained in the
graph — the window size limit — is reached."

:func:`initial_window` computes that trigger point; :func:`partition_window`
runs the partitioner on the prefix subgraph with edge weights = dependence
bytes and the machine's sockets (with their memory latencies) as the
mapping target.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..errors import SchedulerError
from ..graph.csr import CSRGraph
from ..graph.tdg import TaskGraph
from ..machine.topology import NumaTopology
from ..partition.interface import Partitioner, TargetArchitecture, partition_onto
from ..runtime.program import TaskProgram

#: Default window-size limit (tasks).
DEFAULT_WINDOW_SIZE = 1024

#: ``window_size`` spec selecting the adaptive controller (DESIGN.md §10).
AUTO_WINDOW = "auto"

#: Clamp range of the adaptive window controller.  The floor keeps the
#: partitioner fed with subgraphs worth partitioning; the ceiling bounds
#: the host-side partitioning cost of any single window.
AUTO_MIN_WINDOW = 32
AUTO_MAX_WINDOW = 16384


def resolve_window_size(spec: int | str) -> int:
    """Base window size for a ``window_size`` spec (int or ``"auto"``).

    ``"auto"`` starts from :data:`AUTO_MIN_WINDOW` (small first window,
    fast first partition) and lets the adaptive controller
    (:func:`next_auto_window_size`) grow later windows towards the
    latency-hiding target; a fixed integer is validated and returned
    unchanged.
    """
    if spec == AUTO_WINDOW:
        return AUTO_MIN_WINDOW
    size = int(spec)
    if size < 1:
        raise SchedulerError(f"window size must be >= 1, got {spec!r}")
    return size


def next_auto_window_size(
    current: int,
    throughput: float,
    partition_delay: float,
    prefetch_threshold: float,
    lo: int = AUTO_MIN_WINDOW,
    hi: int = AUTO_MAX_WINDOW,
) -> int:
    """Adaptive window control law (DESIGN.md §10).

    Window *k+1*'s partition is launched once ``prefetch_threshold`` of
    window *k* has finished, so the latency ``partition_delay`` must hide
    behind the remaining ``(1 - prefetch_threshold)`` fraction of the
    window.  With an observed task throughput ``lam`` (tasks per simulated
    time unit) that fraction of a window of size ``W`` takes
    ``(1 - f) * W / lam``, giving the steady-state target::

        W* = lam * partition_delay / (1 - f)

    The next size moves halfway from ``current`` towards the clamped
    target (geometric damping: one noisy throughput sample must not slam
    the window from the floor to the ceiling).
    """
    if throughput <= 0.0 or partition_delay <= 0.0:
        return current
    hide_fraction = max(1.0 - prefetch_threshold, 0.05)
    target = math.ceil(throughput * partition_delay / hide_fraction)
    target = max(lo, min(hi, target))
    return max(lo, min(hi, int(round((current + target) / 2))))


class WindowTracker:
    """Window boundaries of the task-id space, extended lazily.

    Window 0 is the initial window ``[0, cutoff)``; window *i* covers
    ``[bounds[i], bounds[i+1])``.  Later boundaries are materialised on
    first demand using :attr:`next_size` at that moment, which is how the
    adaptive controller (``window_size="auto"``) takes effect: resizing
    only ever changes windows whose boundaries are not yet fixed.

    With a constant :attr:`next_size` the boundaries reduce to
    ``cutoff + i * size`` — exactly the arithmetic the pre-pipelining
    repartition path used, which the inertness guarantee relies on.
    """

    def __init__(self, cutoff: int, n_tasks: int, next_size: int) -> None:
        if not 0 <= cutoff <= n_tasks:
            raise SchedulerError(
                f"cutoff {cutoff} outside [0, {n_tasks}]"
            )
        if next_size < 1:
            raise SchedulerError(f"window size must be >= 1, got {next_size}")
        self.n_tasks = int(n_tasks)
        self.next_size = int(next_size)
        self.bounds: list[int] = [0, int(cutoff)]

    @property
    def n_windows(self) -> int:
        """Windows with materialised boundaries so far."""
        return len(self.bounds) - 1

    def ensure(self, window: int) -> None:
        """Materialise boundaries up to and including ``window``."""
        while self.n_windows <= window and self.bounds[-1] < self.n_tasks:
            self.bounds.append(
                min(self.bounds[-1] + self.next_size, self.n_tasks)
            )

    def index_of(self, tid: int) -> int:
        """Window index containing ``tid`` (extends boundaries on demand)."""
        if not 0 <= tid < self.n_tasks:
            raise SchedulerError(f"tid {tid} outside [0, {self.n_tasks})")
        while tid >= self.bounds[-1]:
            self.bounds.append(
                min(self.bounds[-1] + self.next_size, self.n_tasks)
            )
        return bisect_right(self.bounds, tid) - 1

    def span(self, window: int) -> tuple[int, int]:
        """``[lo, hi)`` task-id range of ``window``."""
        self.ensure(window)
        if not 0 <= window < self.n_windows:
            raise SchedulerError(f"window {window} beyond the program end")
        return self.bounds[window], self.bounds[window + 1]


@dataclass(frozen=True)
class WindowPlan:
    """Result of partitioning the initial window.

    ``edge_cut`` / ``mapping_cost`` are partition-quality figures filled
    only when the caller asked for them (``with_stats=True``); ``None``
    otherwise so the untraced fast path computes nothing extra.
    """

    cutoff: int  # tasks [0, cutoff) are covered
    assignment: np.ndarray  # shape (cutoff,), socket per task
    edge_cut: float | None = None
    mapping_cost: float | None = None


def initial_window(program: TaskProgram, window_size: int) -> int:
    """Number of leading tasks in the initial subgraph (trigger point)."""
    if window_size < 1:
        raise SchedulerError(f"window size must be >= 1, got {window_size}")
    return program.first_partition_point(window_size)


def partition_window(
    tdg: TaskGraph,
    cutoff: int,
    topology: NumaTopology,
    partitioner: Partitioner,
    seed: int = 0,
    with_stats: bool = False,
) -> WindowPlan:
    """Partition the first ``cutoff`` tasks onto the machine's sockets.

    Vertex weights are task work (balance = compute balance); edge weights
    are dependence bytes; the target architecture carries the socket
    distance matrix so an architecture-aware partitioner (DRB) keeps heavy
    edges on nearby sockets.

    ``with_stats=True`` additionally computes the plan's edge cut and
    SCOTCH mapping cost (for ``rgp.partition.end`` trace events and the
    ``rgp.edge_cut`` gauge); the default skips both.
    """
    if cutoff < 0:
        raise SchedulerError("cutoff must be >= 0")
    prefix = tdg.prefix(cutoff)
    csr = CSRGraph.from_tdg(prefix)
    target = TargetArchitecture.from_topology(topology)
    result = partition_onto(
        partitioner, csr, topology.n_sockets, target=target, seed=seed
    )
    cut = cost = None
    if with_stats:
        from ..partition.metrics import edge_cut, mapping_cost

        cut = edge_cut(csr, result.parts)
        cost = mapping_cost(csr, result.parts, target.distance)
    return WindowPlan(
        cutoff=cutoff, assignment=result.parts,
        edge_cut=cut, mapping_cost=cost,
    )
