"""Figure 1: speedup over LAS of DFIFO, RGP+LAS and EP on eight apps.

This regenerates the paper's only exhibit: for each application, simulate
the LAS baseline and each comparison policy over several seeds on the
bullion S16 model, report ``speedup = mean_makespan(LAS) /
mean_makespan(policy)``, and aggregate with the geometric mean (the paper's
headline: RGP+LAS 1.12x).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import SpeedupCell, SpeedupTable
from .config import ExperimentConfig
from .runner import PolicyStats, build_program, run_policy

#: Values readable off the published Figure 1, used by EXPERIMENTS.md and
#: the shape-checking tests.  ``None`` means the bar is inside the plotted
#: 0.7-1.3 band but its exact value is not annotated in the text.
PAPER_FIGURE1 = {
    ("histogram", "dfifo"): 0.40,
    ("jacobi", "dfifo"): 0.42,
    ("nstream", "dfifo"): 0.49,
    ("symminv", "dfifo"): 0.68,
    ("nstream", "ep"): 1.75,
    ("nstream", "rgp+las"): 1.74,
    ("geomean", "rgp+las"): 1.12,
}


@dataclass
class Figure1Result:
    """The reproduced figure plus raw per-policy statistics."""

    table: SpeedupTable
    raw: dict[tuple[str, str], PolicyStats]
    config: ExperimentConfig

    def render(self) -> str:
        return self.table.render(
            title=(
                f"Figure 1 reproduction — speedup vs LAS on "
                f"{self.config.topology.describe()}"
            )
        )

    def render_bars(self) -> str:
        """Paper-style clipped bar chart (ASCII)."""
        from ..metrics.figure import render_figure

        return render_figure(self.table)


def run_figure1(
    config: ExperimentConfig | None = None,
    progress=None,
    extra_policies: dict | None = None,
) -> Figure1Result:
    """Run the full Figure 1 sweep.

    ``extra_policies`` maps extra column labels to scheduler factories
    (``label -> () -> Scheduler``), rendered after the configured policy
    columns — e.g. a pipelined-RGP variant next to the standard bars.
    """
    config = config or ExperimentConfig.paper()
    extra_policies = extra_policies or {}
    columns = list(config.policies) + list(extra_policies)
    table = SpeedupTable(baseline=config.baseline, policies=columns)
    raw: dict[tuple[str, str], PolicyStats] = {}
    for app_name in config.apps:
        program = build_program(config, app_name)
        baseline = run_policy(config, program, config.baseline)
        raw[(app_name, config.baseline)] = baseline
        if progress:
            progress(f"{app_name}: {config.baseline} {baseline.makespan_mean:.4g}")
        for policy in columns:
            stats = run_policy(
                config, program, policy, extra_policies.get(policy)
            )
            raw[(app_name, policy)] = stats
            speedup = baseline.makespan_mean / stats.makespan_mean
            # Error propagation of the ratio of means (first order).
            rel = (
                (stats.makespan_std / stats.makespan_mean) ** 2
                + (baseline.makespan_std / baseline.makespan_mean) ** 2
            ) ** 0.5
            table.add(
                app_name,
                policy,
                SpeedupCell(
                    speedup=speedup,
                    speedup_std=speedup * rel,
                    makespan_mean=stats.makespan_mean,
                    remote_fraction=stats.remote_fraction_mean,
                ),
            )
            if progress:
                progress(f"{app_name}: {policy} speedup {speedup:.2f}")
    return Figure1Result(table=table, raw=raw, config=config)


def run_figure1_app(
    app_name: str, config: ExperimentConfig | None = None
) -> dict[str, float]:
    """Figure 1 restricted to one application; returns policy -> speedup."""
    config = config or ExperimentConfig.paper()
    program = build_program(config, app_name)
    baseline = run_policy(config, program, config.baseline)
    out = {}
    for policy in config.policies:
        stats = run_policy(config, program, policy)
        out[policy] = baseline.makespan_mean / stats.makespan_mean
    return out
