"""Experiment harness: Figure 1 reproduction and ablation sweeps."""

from .ablations import (
    AblationResult,
    run_las_ablation,
    run_partitioner_ablation,
    run_propagation_ablation,
    run_socket_ablation,
    run_window_ablation,
)
from .config import (
    BASELINE_POLICY,
    FIGURE1_APPS,
    FIGURE1_POLICIES,
    PAPER_APP_PARAMS,
    QUICK_APP_PARAMS,
    ExperimentConfig,
)
from .figure1 import PAPER_FIGURE1, Figure1Result, run_figure1, run_figure1_app
from .runner import PolicyStats, build_program, run_policy
from .sweep import ParameterGrid, SweepRow, run_sweep, write_sweep_csv

__all__ = [
    "BASELINE_POLICY",
    "FIGURE1_APPS",
    "FIGURE1_POLICIES",
    "PAPER_APP_PARAMS",
    "PAPER_FIGURE1",
    "QUICK_APP_PARAMS",
    "AblationResult",
    "ExperimentConfig",
    "Figure1Result",
    "ParameterGrid",
    "PolicyStats",
    "SweepRow",
    "build_program",
    "run_figure1",
    "run_figure1_app",
    "run_las_ablation",
    "run_partitioner_ablation",
    "run_policy",
    "run_propagation_ablation",
    "run_socket_ablation",
    "run_sweep",
    "run_window_ablation",
    "write_sweep_csv",
]
