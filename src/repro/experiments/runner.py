"""Generic experiment runner: (app, policy, seeds) -> aggregated numbers.

Programs are built once per app and reused across policies and seeds (the
simulator never mutates a program), matching the paper's protocol of
comparing policies on identical TDGs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps import make_app
from ..errors import ExperimentError
from ..runtime.program import TaskProgram
from ..runtime.simulator import Simulator
from ..schedulers import make_scheduler
from .config import ExperimentConfig


@dataclass(frozen=True)
class PolicyStats:
    """Aggregate over seeds of one (program, policy) pair."""

    policy: str
    makespans: tuple[float, ...]
    remote_fractions: tuple[float, ...]

    @property
    def makespan_mean(self) -> float:
        return float(np.mean(self.makespans))

    @property
    def makespan_std(self) -> float:
        return float(np.std(self.makespans))

    @property
    def remote_fraction_mean(self) -> float:
        return float(np.mean(self.remote_fractions))


def build_program(config: ExperimentConfig, app_name: str) -> TaskProgram:
    """Instantiate and build one benchmark at the configured size."""
    try:
        params = config.app_params[app_name]
    except KeyError:
        raise ExperimentError(f"no parameters configured for app {app_name!r}") from None
    app = make_app(app_name, **params)
    return app.build(config.topology.n_sockets)


def scheduler_kwargs(config: ExperimentConfig, policy: str) -> dict:
    """Policy construction arguments implied by the config."""
    if policy in ("rgp", "rgp+las"):
        return {"window_size": config.window_size}
    return {}


def run_policy(
    config: ExperimentConfig,
    program: TaskProgram,
    policy: str,
    scheduler_factory=None,
) -> PolicyStats:
    """Simulate ``program`` under ``policy`` for every configured seed."""
    makespans = []
    remotes = []
    for seed in config.seeds:
        if scheduler_factory is not None:
            sched = scheduler_factory()
        else:
            sched = make_scheduler(policy, **scheduler_kwargs(config, policy))
        sim = Simulator(
            program,
            config.topology,
            sched,
            interconnect=config.interconnect(),
            steal=config.steal,
            seed=seed,
        )
        result = sim.run()
        makespans.append(result.makespan)
        remotes.append(result.remote_fraction)
    return PolicyStats(
        policy=policy,
        makespans=tuple(makespans),
        remote_fractions=tuple(remotes),
    )
