"""Generic experiment runner: (app, policy, seeds) -> aggregated numbers.

Programs are built once per app and reused across policies and seeds (the
simulator never mutates a program), matching the paper's protocol of
comparing policies on identical TDGs.

Robustness (DESIGN.md §7): ``run_policy`` optionally validates every
simulation result against the schedule invariants (``validate=True``),
bounds each run's wall-clock time (``timeout``), retries failed runs
(``retries``), and injects a :class:`~repro.faults.plan.FaultPlan` for
resilience experiments (``faults``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps import make_app
from ..errors import ExperimentError, ReproError
from ..runtime.program import TaskProgram
from ..runtime.simulator import Simulator
from ..runtime.validation import validate_schedule
from ..schedulers import make_scheduler
from .config import ExperimentConfig


@dataclass(frozen=True)
class PolicyStats:
    """Aggregate over seeds of one (program, policy) pair."""

    policy: str
    makespans: tuple[float, ...]
    remote_fractions: tuple[float, ...]
    reexecutions: tuple[int, ...] = ()
    wasted_work: tuple[float, ...] = ()
    #: Per-seed SimulationResults, kept only when the caller asked for them
    #: (``keep_results=True`` or an ``instrument_factory`` — instrumented
    #: results carry the event stream and metrics snapshot, so dropping
    #: them would waste the instrumentation).
    results: tuple = ()

    @property
    def makespan_mean(self) -> float:
        return float(np.mean(self.makespans))

    @property
    def makespan_std(self) -> float:
        return float(np.std(self.makespans))

    @property
    def remote_fraction_mean(self) -> float:
        return float(np.mean(self.remote_fractions))

    @property
    def reexecutions_total(self) -> int:
        return int(sum(self.reexecutions))


def build_program(config: ExperimentConfig, app_name: str) -> TaskProgram:
    """Instantiate and build one benchmark at the configured size."""
    try:
        params = config.app_params[app_name]
    except KeyError:
        raise ExperimentError(f"no parameters configured for app {app_name!r}") from None
    app = make_app(app_name, **params)
    return app.build(config.topology.n_sockets)


def scheduler_kwargs(config: ExperimentConfig, policy: str) -> dict:
    """Policy construction arguments implied by the config."""
    if policy in ("rgp", "rgp+las"):
        return {"window_size": config.window_size}
    return {}


def run_policy(
    config: ExperimentConfig,
    program: TaskProgram,
    policy: str,
    scheduler_factory=None,
    *,
    validate: bool = False,
    faults=None,
    timeout: float | None = None,
    retries: int = 0,
    sim_kwargs: dict | None = None,
    instrument_factory=None,
    keep_results: bool = False,
) -> PolicyStats:
    """Simulate ``program`` under ``policy`` for every configured seed.

    Parameters
    ----------
    validate:
        Run :func:`~repro.runtime.validation.validate_schedule` on every
        simulation result, so invariant violations surface in experiments
        and not only in the integration tests.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into every
        run (resilience experiments).
    timeout:
        Per-run wall-clock limit in seconds (cooperative: checked at every
        simulator event).
    retries:
        How many times to retry a seed's run after a
        :class:`~repro.errors.ReproError` before giving up.  Each retry
        builds a fresh scheduler and simulator; deterministic failures
        (e.g. a genuine deadlock) will simply fail ``retries + 1`` times.
    sim_kwargs:
        Extra keyword arguments forwarded to the
        :class:`~repro.runtime.simulator.Simulator` (e.g. ``max_retries``,
        ``retry_backoff`` for fault recovery tuning).
    instrument_factory:
        ``instrument_factory(seed)`` building one fresh
        :class:`~repro.observability.Instrumentation` per seed (sinks and
        registries are single-run objects and must not be shared across
        seeds).  Implies ``keep_results`` so the instrumented results —
        which carry the event stream and metrics snapshot — survive.
    keep_results:
        Retain the per-seed :class:`SimulationResult` objects in
        :attr:`PolicyStats.results` (off by default: a paper-scale sweep
        holds thousands of results).
    """
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    makespans = []
    remotes = []
    reexecs = []
    wasted = []
    results = []
    keep_results = keep_results or instrument_factory is not None
    extra = dict(sim_kwargs or {})
    if faults is not None:
        extra["faults"] = faults
    if timeout is not None:
        extra["wall_clock_limit"] = timeout
    for seed in config.seeds:
        last_error: ReproError | None = None
        result = None
        for _attempt in range(retries + 1):
            if scheduler_factory is not None:
                sched = scheduler_factory()
            else:
                sched = make_scheduler(policy, **scheduler_kwargs(config, policy))
            sim = Simulator(
                program,
                config.topology,
                sched,
                interconnect=config.interconnect(),
                steal=config.steal,
                seed=seed,
                instrument=(
                    instrument_factory(seed)
                    if instrument_factory is not None
                    else None
                ),
                **extra,
            )
            try:
                result = sim.run()
                break
            except ReproError as exc:
                last_error = exc
        if result is None:
            raise ExperimentError(
                f"policy {policy!r} seed {seed} failed after "
                f"{retries + 1} attempt(s): {last_error}"
            ) from last_error
        if validate:
            validate_schedule(program, result, config.topology)
        makespans.append(result.makespan)
        remotes.append(result.remote_fraction)
        reexecs.append(result.reexecutions)
        wasted.append(result.wasted_work)
        if keep_results:
            results.append(result)
    return PolicyStats(
        policy=policy,
        makespans=tuple(makespans),
        remote_fractions=tuple(remotes),
        reexecutions=tuple(reexecs),
        wasted_work=tuple(wasted),
        results=tuple(results),
    )
