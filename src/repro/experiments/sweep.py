"""Generic parameter sweeps: cartesian grids of (app, policy, knob) runs.

A light harness for exploratory studies beyond the fixed ablations:

    grid = ParameterGrid(app=["nstream"], policy=["las", "rgp+las"],
                         window_size=[64, 1024])
    rows = run_sweep(config, grid)

Each row carries the full parameter assignment plus the measured
statistics, ready for a DataFrame or CSV.

Long sweeps can pass ``checkpoint=<path>``: every finished grid point is
appended to the file (JSON lines) the moment it completes, and a rerun of
the same sweep skips the points already on disk — a crashed or killed
sweep resumes where it left off instead of starting over.

``workers=N`` (N > 1) fans the grid points out over a process pool:
points are independent (each worker rebuilds its program from the config,
because task closures do not pickle) and seeded identically, so parallel
and sequential sweeps produce the same rows.  Checkpointing stays safe —
rows are appended from the parent as each point completes, and a resumed
sweep only submits the missing points.
"""

from __future__ import annotations

import csv
import itertools
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import ExperimentError
from ..schedulers import make_scheduler
from .config import ExperimentConfig
from .runner import build_program, run_policy

#: Grid keys consumed by the harness itself (everything else goes to the
#: scheduler constructor).
_RESERVED = ("app", "policy")


@dataclass(frozen=True)
class ParameterGrid:
    """Cartesian product over named parameter lists."""

    axes: dict[str, list[Any]] = field(default_factory=dict)

    def __init__(self, **axes: list[Any]) -> None:
        for key, values in axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ExperimentError(
                    f"grid axis {key!r} must be a non-empty list"
                )
        if "app" not in axes or "policy" not in axes:
            raise ExperimentError("grid needs 'app' and 'policy' axes")
        object.__setattr__(self, "axes", {k: list(v) for k, v in axes.items()})

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def points(self) -> Iterator[dict[str, Any]]:
        keys = list(self.axes)
        for combo in itertools.product(*(self.axes[k] for k in keys)):
            yield dict(zip(keys, combo))


@dataclass(frozen=True)
class SweepRow:
    """One grid point plus its measurements."""

    params: dict[str, Any]
    makespan_mean: float
    makespan_std: float
    remote_fraction: float

    def as_flat_dict(self) -> dict[str, Any]:
        out = dict(self.params)
        out.update(
            makespan_mean=self.makespan_mean,
            makespan_std=self.makespan_std,
            remote_fraction=self.remote_fraction,
        )
        return out


def _point_key(point: dict[str, Any]) -> str:
    """Canonical JSON key for one grid point (order-insensitive)."""
    return json.dumps(point, sort_keys=True, default=str)


def _parse_checkpoint_line(line: str) -> SweepRow:
    data = json.loads(line)
    return SweepRow(
        params=data["params"],
        makespan_mean=float(data["makespan_mean"]),
        makespan_std=float(data["makespan_std"]),
        remote_fraction=float(data["remote_fraction"]),
    )


def load_checkpoint(path: str | Path) -> dict[str, SweepRow]:
    """Read previously completed rows from a JSONL checkpoint file.

    A run killed mid-append can leave exactly one torn record at the end
    of the file (``_append_checkpoint`` fsyncs after every full record, so
    at most the *final* line can be partial).  That torn tail is tolerated
    — and **truncated** from the file so the next append starts on a clean
    line instead of gluing two records together; the sweep simply
    recomputes the lost point.  A malformed line anywhere *before* the
    tail is genuine corruption and raises :class:`ExperimentError` rather
    than silently dropping completed work.
    """
    done: dict[str, SweepRow] = {}
    path = Path(path)
    if not path.exists():
        return done
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    keep_bytes = 0
    for i, raw in enumerate(lines):
        line = raw.strip()
        is_last = i == len(lines) - 1
        if not line:
            keep_bytes += len(raw.encode())
            continue
        try:
            row = _parse_checkpoint_line(line)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if is_last:
                # Torn final append: drop it from memory *and* from disk.
                with open(path, "r+") as fh:
                    fh.truncate(keep_bytes)
                break
            raise ExperimentError(
                f"checkpoint {path} is corrupt at line {i + 1} "
                f"(only the final line may be torn): {exc}"
            ) from exc
        done[_point_key(row.params)] = row
        keep_bytes += len(raw.encode())
    return done


def _append_checkpoint(path: Path, row: SweepRow) -> None:
    record = {
        "params": row.params,
        "makespan_mean": row.makespan_mean,
        "makespan_std": row.makespan_std,
        "remote_fraction": row.remote_fraction,
    }
    # flush + fsync after the full line: a crash can tear at most the
    # record currently being appended, never an earlier one — the
    # invariant load_checkpoint's tolerate-and-truncate relies on.
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


#: Per-worker-process program memo: (app, params-json, n_sockets) -> program.
#: Programs cannot cross the process boundary (task closures don't pickle),
#: so each worker builds them once and reuses them across its points.
_WORKER_PROGRAMS: dict[tuple, Any] = {}


def _program_for(config: ExperimentConfig, app_name: str):
    key = (
        app_name,
        json.dumps(config.app_params.get(app_name, {}), sort_keys=True,
                   default=str),
        config.topology.n_sockets,
    )
    program = _WORKER_PROGRAMS.get(key)
    if program is None:
        program = build_program(config, app_name)
        _WORKER_PROGRAMS[key] = program
    return program


def _run_point(
    config: ExperimentConfig, point: dict[str, Any], run_kwargs: dict
) -> SweepRow:
    """Measure one grid point (top-level so a process pool can pickle it)."""
    policy = point["policy"]
    sched_kwargs = {k: v for k, v in point.items() if k not in _RESERVED}
    program = _program_for(config, point["app"])

    def factory(policy=policy, kwargs=sched_kwargs):
        return make_scheduler(policy, **kwargs)

    try:
        stats = run_policy(config, program, policy, factory, **run_kwargs)
    except TypeError as exc:
        raise ExperimentError(
            f"policy {policy!r} rejected kwargs {sched_kwargs}: {exc}"
        ) from None
    return SweepRow(
        params=point,
        makespan_mean=stats.makespan_mean,
        makespan_std=stats.makespan_std,
        remote_fraction=stats.remote_fraction_mean,
    )


def run_sweep(
    config: ExperimentConfig,
    grid: ParameterGrid,
    progress=None,
    checkpoint: str | Path | None = None,
    workers: int | None = None,
    **run_kwargs,
) -> list[SweepRow]:
    """Run every grid point; scheduler kwargs come from the extra axes.

    ``checkpoint`` names a JSONL file: completed points are appended as
    they finish and skipped on resume.  ``workers`` > 1 runs the pending
    points on a process pool (rows still come back in grid order, and the
    config plus any ``run_kwargs`` must be picklable).  Extra keyword
    arguments (e.g. ``validate=True``, ``timeout=...``, ``retries=...``)
    are forwarded to :func:`~repro.experiments.runner.run_policy` for
    every point.
    """
    done: dict[str, SweepRow] = {}
    if checkpoint is not None:
        checkpoint = Path(checkpoint)
        done = load_checkpoint(checkpoint)
    points = list(grid.points())
    computed: dict[str, SweepRow] = {}
    pending = [p for p in points if _point_key(p) not in done]
    if workers is not None and workers > 1 and len(pending) > 1:
        # A failing grid point must not discard the others: drain every
        # future, checkpointing each finished row as it lands, and only
        # re-raise the first failure once nothing else is in flight.  A
        # resumed sweep then recomputes just the failed point(s).
        first_error: BaseException | None = None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_point, config, point, run_kwargs): point
                for point in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for fut in finished:
                    point = futures[fut]
                    try:
                        row = fut.result()
                    except BaseException as exc:
                        if first_error is None:
                            first_error = exc
                        if progress:
                            progress(f"{point} -> FAILED: {exc}")
                        continue
                    computed[_point_key(point)] = row
                    if checkpoint is not None:
                        _append_checkpoint(checkpoint, row)
                    if progress:
                        progress(f"{point} -> {row.makespan_mean:.4g}")
        if first_error is not None:
            raise first_error
    else:
        for point in pending:
            row = _run_point(config, point, run_kwargs)
            computed[_point_key(point)] = row
            if checkpoint is not None:
                _append_checkpoint(checkpoint, row)
            if progress:
                progress(f"{point} -> {row.makespan_mean:.4g}")

    rows: list[SweepRow] = []
    for point in points:
        key = _point_key(point)
        if key in done:
            rows.append(done[key])
            if progress:
                progress(f"{point} -> (checkpointed)")
        else:
            rows.append(computed[key])
    return rows


def write_sweep_csv(rows: list[SweepRow], path: str | Path) -> None:
    """Dump sweep rows as CSV (one column per parameter + metrics)."""
    if not rows:
        raise ExperimentError("no sweep rows to write")
    flat = [r.as_flat_dict() for r in rows]
    fields = sorted({k for row in flat for k in row})
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(flat)
