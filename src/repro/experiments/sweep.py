"""Generic parameter sweeps: cartesian grids of (app, policy, knob) runs.

A light harness for exploratory studies beyond the fixed ablations:

    grid = ParameterGrid(app=["nstream"], policy=["las", "rgp+las"],
                         window_size=[64, 1024])
    rows = run_sweep(config, grid)

Each row carries the full parameter assignment plus the measured
statistics, ready for a DataFrame or CSV.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import ExperimentError
from ..schedulers import make_scheduler
from .config import ExperimentConfig
from .runner import build_program, run_policy

#: Grid keys consumed by the harness itself (everything else goes to the
#: scheduler constructor).
_RESERVED = ("app", "policy")


@dataclass(frozen=True)
class ParameterGrid:
    """Cartesian product over named parameter lists."""

    axes: dict[str, list[Any]] = field(default_factory=dict)

    def __init__(self, **axes: list[Any]) -> None:
        for key, values in axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ExperimentError(
                    f"grid axis {key!r} must be a non-empty list"
                )
        if "app" not in axes or "policy" not in axes:
            raise ExperimentError("grid needs 'app' and 'policy' axes")
        object.__setattr__(self, "axes", {k: list(v) for k, v in axes.items()})

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def points(self) -> Iterator[dict[str, Any]]:
        keys = list(self.axes)
        for combo in itertools.product(*(self.axes[k] for k in keys)):
            yield dict(zip(keys, combo))


@dataclass(frozen=True)
class SweepRow:
    """One grid point plus its measurements."""

    params: dict[str, Any]
    makespan_mean: float
    makespan_std: float
    remote_fraction: float

    def as_flat_dict(self) -> dict[str, Any]:
        out = dict(self.params)
        out.update(
            makespan_mean=self.makespan_mean,
            makespan_std=self.makespan_std,
            remote_fraction=self.remote_fraction,
        )
        return out


def run_sweep(
    config: ExperimentConfig,
    grid: ParameterGrid,
    progress=None,
) -> list[SweepRow]:
    """Run every grid point; scheduler kwargs come from the extra axes."""
    rows: list[SweepRow] = []
    programs: dict[str, Any] = {}
    for point in grid.points():
        app_name = point["app"]
        policy = point["policy"]
        sched_kwargs = {k: v for k, v in point.items() if k not in _RESERVED}
        if app_name not in programs:
            programs[app_name] = build_program(config, app_name)
        program = programs[app_name]

        def factory(policy=policy, kwargs=sched_kwargs):
            return make_scheduler(policy, **kwargs)

        try:
            stats = run_policy(config, program, policy, factory)
        except TypeError as exc:
            raise ExperimentError(
                f"policy {policy!r} rejected kwargs {sched_kwargs}: {exc}"
            ) from None
        row = SweepRow(
            params=point,
            makespan_mean=stats.makespan_mean,
            makespan_std=stats.makespan_std,
            remote_fraction=stats.remote_fraction_mean,
        )
        rows.append(row)
        if progress:
            progress(f"{point} -> {stats.makespan_mean:.4g}")
    return rows


def write_sweep_csv(rows: list[SweepRow], path: str | Path) -> None:
    """Dump sweep rows as CSV (one column per parameter + metrics)."""
    if not rows:
        raise ExperimentError("no sweep rows to write")
    flat = [r.as_flat_dict() for r in rows]
    fields = sorted({k for row in flat for k in row})
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(flat)
