"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond Figure 1 and quantify the knobs the poster describes but
does not sweep:

* **Window size** (§2.2: "the window size limit") — how large must the
  initial subgraph be before partitioning it beats LAS's cold start?
* **Partitioner choice** (§2.2 uses SCOTCH) — architecture-aware DRB vs
  plain multilevel k-way vs spectral vs random/cyclic floors.
* **Socket count** (§1 motivation: NUMA effects grow with sockets).
* **LAS variants** (§2.1) — cold-start randomisation threshold and
  tie-breaking.
* **RGP propagation** (§2.2.1: "there are different ways to propagate the
  partition") — LAS vs repartition vs cyclic vs random.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.rgp import RGPLASScheduler, RGPScheduler
from ..machine.presets import cluster, custom
from ..metrics.report import geometric_mean
from ..partition import by_name as partitioner_by_name
from ..schedulers import LASScheduler
from .config import ExperimentConfig
from .runner import build_program, run_policy

#: Apps used by the ablations (a representative memory/compute mix).
ABLATION_APPS = ("jacobi", "nstream", "histogram", "qr")


@dataclass
class AblationResult:
    """Rows of (setting -> app -> speedup vs the config baseline)."""

    title: str
    settings: list[str] = field(default_factory=list)
    apps: list[str] = field(default_factory=list)
    speedups: dict[tuple[str, str], float] = field(default_factory=dict)

    def add(self, setting: str, app: str, speedup: float) -> None:
        if setting not in self.settings:
            self.settings.append(setting)
        if app not in self.apps:
            self.apps.append(app)
        self.speedups[(setting, app)] = speedup

    def geomean(self, setting: str) -> float:
        return geometric_mean(
            self.speedups[(setting, app)] for app in self.apps
        )

    def render(self) -> str:
        header = ["setting"] + self.apps + ["geomean"]
        rows = [header]
        for s in self.settings:
            row = [s]
            for app in self.apps:
                row.append(f"{self.speedups[(s, app)]:.2f}")
            row.append(f"{self.geomean(s):.2f}")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [self.title]
        for i, row in enumerate(rows):
            lines.append("  ".join(c.ljust(widths[j]) for j, c in enumerate(row)))
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)


def run_window_ablation(
    config: ExperimentConfig | None = None,
    window_sizes: tuple[int, ...] = (64, 256, 1024, 4096),
    apps: tuple[str, ...] = ABLATION_APPS,
) -> AblationResult:
    """RGP+LAS speedup vs LAS as a function of the window-size limit."""
    config = config or ExperimentConfig.quick()
    result = AblationResult(title="Ablation A: RGP+LAS window size (speedup vs LAS)")
    for app_name in apps:
        program = build_program(config, app_name)
        base = run_policy(config, program, config.baseline)
        for w in window_sizes:
            stats = run_policy(
                config, program, f"rgp+las(w={w})",
                lambda w=w: RGPScheduler(window_size=w, propagation="las"),
            )
            result.add(f"window={w}", app_name,
                       base.makespan_mean / stats.makespan_mean)
    return result


def run_partitioner_ablation(
    config: ExperimentConfig | None = None,
    partitioners: tuple[str, ...] = ("drb", "multilevel", "spectral",
                                     "random", "cyclic"),
    apps: tuple[str, ...] = ABLATION_APPS,
) -> AblationResult:
    """RGP+LAS speedup vs LAS with different window partitioners."""
    config = config or ExperimentConfig.quick()
    result = AblationResult(
        title="Ablation B: window partitioner (RGP+LAS speedup vs LAS)"
    )
    for app_name in apps:
        program = build_program(config, app_name)
        base = run_policy(config, program, config.baseline)
        for pname in partitioners:
            stats = run_policy(
                config, program, f"rgp+las/{pname}",
                lambda p=pname: RGPScheduler(
                    partitioner=partitioner_by_name(p),
                    window_size=config.window_size,
                    propagation="las",
                ),
            )
            result.add(pname, app_name,
                       base.makespan_mean / stats.makespan_mean)
    return result


def run_socket_ablation(
    config: ExperimentConfig | None = None,
    socket_counts: tuple[int, ...] = (2, 4, 8),
    apps: tuple[str, ...] = ("jacobi", "nstream"),
) -> AblationResult:
    """RGP+LAS speedup vs LAS as NUMA scale grows (cores fixed at 32)."""
    config = config or ExperimentConfig.quick()
    result = AblationResult(
        title="Ablation C: socket count at 32 cores (RGP+LAS speedup vs LAS)"
    )
    for n_sockets in socket_counts:
        topo = custom(n_sockets, 32 // n_sockets, remote=21.0,
                      name=f"{n_sockets}-socket")
        cfg = ExperimentConfig(
            topology=topo,
            remote_penalty_exp=config.remote_penalty_exp,
            link_fraction=config.link_fraction,
            core_fraction=config.core_fraction,
            window_size=config.window_size,
            seeds=config.seeds,
            app_params={k: dict(v) for k, v in config.app_params.items()},
            steal=config.steal,
        )
        for app_name in apps:
            program = build_program(cfg, app_name)
            base = run_policy(cfg, program, cfg.baseline)
            stats = run_policy(cfg, program, "rgp+las")
            result.add(f"{n_sockets} sockets", app_name,
                       base.makespan_mean / stats.makespan_mean)
    return result


def run_las_ablation(
    config: ExperimentConfig | None = None,
    apps: tuple[str, ...] = ABLATION_APPS,
) -> AblationResult:
    """LAS variants vs default LAS: poster-literal cold start, first-fit
    tie-break.  Values are speedups of the variant over default LAS."""
    config = config or ExperimentConfig.quick()
    variants = {
        "drebes (thr=0)": dict(random_threshold=0.0),
        "poster (thr=0.5)": dict(random_threshold=0.5),
        "tie=first": dict(tie_break="first"),
    }
    result = AblationResult(title="Ablation D: LAS variants (speedup vs default LAS)")
    for app_name in apps:
        program = build_program(config, app_name)
        base = run_policy(config, program, config.baseline)
        for vname, kwargs in variants.items():
            stats = run_policy(
                config, program, f"las/{vname}",
                lambda kw=kwargs: LASScheduler(**kw),
            )
            result.add(vname, app_name,
                       base.makespan_mean / stats.makespan_mean)
    return result


#: Apps for the pipelining ablation: dependence structures deep enough
#: that later windows' tasks are not all ready at t=0 (otherwise every
#: window is demand-launched immediately and prefetching cannot help —
#: jacobi/nstream are exactly that degenerate case).
PIPELINE_APPS = ("cg", "qr", "redblack", "symminv")


def run_pipeline_ablation(
    config: ExperimentConfig | None = None,
    apps: tuple[str, ...] = PIPELINE_APPS,
    window_fraction: float = 0.15,
    delay_fraction: float = 0.10,
) -> AblationResult:
    """Pipelined vs blocking repartitioning (speedup vs blocking).

    All settings run RGP with ``propagation="repartition"`` and a charged
    partition latency (``delay_fraction`` of the app's zero-latency RGP
    makespan, so the latency is material but not dominant).  The baseline
    row is the *blocking* scheduler (``prefetch_threshold=1.0``: a window's
    partition only launches when demanded, exposing the full latency);
    the pipelined rows launch window *k+1* when half / a quarter of window
    *k* has finished, and the last row additionally lets the adaptive
    controller size the windows (``window_size="auto"``).
    """
    config = config or ExperimentConfig.quick()
    result = AblationResult(
        title="Ablation H: pipelined vs blocking repartitioning "
              f"(speedup vs blocking, window = {window_fraction:.0%} of "
              f"program, delay = {delay_fraction:.0%} of RGP makespan)"
    )
    for app_name in apps:
        program = build_program(config, app_name)
        window = max(8, int(program.n_tasks * window_fraction))
        free = run_policy(
            config, program, f"rgp/repart(w={window},free)",
            lambda w=window: RGPScheduler(window_size=w,
                                          propagation="repartition"),
        )
        delay = delay_fraction * free.makespan_mean
        settings: list[tuple[str, dict]] = [
            ("blocking (f=1.0)", dict(window_size=window,
                                      prefetch_threshold=1.0)),
            ("pipelined (f=0.5)", dict(window_size=window,
                                       prefetch_threshold=0.5)),
            ("pipelined (f=0.25)", dict(window_size=window,
                                        prefetch_threshold=0.25)),
            ("pipelined+auto (f=0.5)", dict(window_size="auto",
                                            prefetch_threshold=0.5)),
        ]
        base = None
        for sname, kwargs in settings:
            stats = run_policy(
                config, program, f"rgp/pipe[{sname}](w={window})",
                lambda kw=kwargs, d=delay: RGPScheduler(
                    propagation="repartition", partition_delay=d, **kw
                ),
            )
            if base is None:
                base = stats
            result.add(sname, app_name,
                       base.makespan_mean / stats.makespan_mean)
    return result


def run_propagation_ablation(
    config: ExperimentConfig | None = None,
    apps: tuple[str, ...] = ABLATION_APPS,
    window_fraction: float = 0.15,
) -> AblationResult:
    """RGP propagation policies (speedup vs LAS).

    The window is deliberately small (``window_fraction`` of each
    program) so that most tasks actually go through the propagation path —
    with the default full-program window every policy would be identical.
    """
    config = config or ExperimentConfig.quick()
    result = AblationResult(
        title="Ablation E: RGP propagation policy (speedup vs LAS, "
              f"window = {window_fraction:.0%} of program)"
    )
    for app_name in apps:
        program = build_program(config, app_name)
        window = max(8, int(program.n_tasks * window_fraction))
        base = run_policy(config, program, config.baseline)
        for prop in ("las", "repartition", "cyclic", "random"):
            stats = run_policy(
                config, program, f"rgp/{prop}(w={window})",
                lambda p=prop, w=window: RGPScheduler(
                    window_size=w, propagation=p
                ),
            )
            result.add(prop, app_name,
                       base.makespan_mean / stats.makespan_mean)
    return result


#: Problem sizes for the cluster sweep.  A 16-box cluster runs 128 cores —
#: the single-box quick sizes leave most of them idle — and placement only
#: matters once the tile grid is several times larger than the socket
#: count.  Iteration counts are raised on the stencils so the steady
#: state (where the initial placement pays off or doesn't) dominates the
#: cold start.
CLUSTER_APP_PARAMS = {
    "cg": dict(nt=12, tile=128, iterations=3),
    "histogram": dict(nt=12, tile=64, n_bins=16, repeats=3),
    "jacobi": dict(nt=12, tile=128, sweeps=6),
    "redblack": dict(nt=12, tile=128, sweeps=6),
}

#: Window for the cluster sweep: about one sweep of the 12x12 grids plus
#: its init tasks.  Larger windows help jacobi but hurt cg/histogram
#: (whole-graph partitions pin the reduction chains); 256 is the knee of
#: ablation A on these sizes.
CLUSTER_WINDOW = 256


def run_cluster_ablation(
    config: ExperimentConfig | None = None,
    box_counts: tuple[int, ...] = (16,),
    apps: tuple[str, ...] = tuple(CLUSTER_APP_PARAMS),
) -> AblationResult:
    """Hierarchical RGP+LAS vs flat RGP+LAS vs EP across cluster sizes.

    The baseline is **EP** (expert static placement), not LAS: on a
    cluster the question is whether partitioning the TDG against the
    machine hierarchy beats the hand annotations that are oblivious to
    box boundaries.  ``hier`` is ``RGPLASScheduler`` with its default
    ``hierarchical="auto"`` (boxes first, then sockets within each box);
    ``flat`` forces one k-way cut over all sockets.
    """
    config = config or ExperimentConfig.quick()
    result = AblationResult(
        title="Ablation I: cluster placement (speedup vs EP)"
    )
    for n_boxes in box_counts:
        cfg = ExperimentConfig(
            topology=cluster(n_boxes),
            remote_penalty_exp=config.remote_penalty_exp,
            link_fraction=config.link_fraction,
            core_fraction=config.core_fraction,
            window_size=CLUSTER_WINDOW,
            seeds=config.seeds,
            app_params={k: dict(v) for k, v in CLUSTER_APP_PARAMS.items()},
            steal=config.steal,
        )
        for app_name in apps:
            program = build_program(cfg, app_name)
            base = run_policy(cfg, program, "ep")
            for setting, factory in (
                ("hier", lambda: RGPLASScheduler(window_size=CLUSTER_WINDOW)),
                ("flat", lambda: RGPLASScheduler(
                    window_size=CLUSTER_WINDOW, hierarchical=False)),
            ):
                stats = run_policy(
                    cfg, program, f"rgp+las/{setting}", factory
                )
                result.add(f"{n_boxes} boxes / {setting}", app_name,
                           base.makespan_mean / stats.makespan_mean)
    return result


# ----------------------------------------------------------------------
# Ablation J: partitioner optimality gap (how good are the partitions?)

#: Heuristic backends swept against the exact optimum.  ``hier`` is the
#: two-level cluster partitioner and needs the machine's socket groups,
#: so it is built per-run rather than through the flat registry.
GAP_BACKENDS = ("drb", "multilevel", "multilevel-kl", "spectral", "hier")


@dataclass
class GapReport:
    """Per-backend edge-cut optimality gaps over app windows.

    ``gaps[(backend, window)]`` is ``(cut - reference) / reference`` where
    the reference is the best cut known for that window — the exact
    optimum whenever the oracle proved one, otherwise the best answer any
    backend produced (so a budget fallback can never manufacture a
    negative gap).  Windows where every cut is zero report gap 0.
    """

    title: str
    k: int
    backends: list[str] = field(default_factory=list)
    windows: list[str] = field(default_factory=list)
    cuts: dict = field(default_factory=dict)
    gaps: dict = field(default_factory=dict)
    oracle_cut: dict = field(default_factory=dict)
    proven: dict = field(default_factory=dict)
    oracle_nodes: dict = field(default_factory=dict)

    def mean_gap(self, backend: str) -> float:
        return sum(self.gaps[(backend, w)] for w in self.windows) / max(
            len(self.windows), 1
        )

    def max_gap(self, backend: str) -> float:
        return max(
            (self.gaps[(backend, w)] for w in self.windows), default=0.0
        )

    def proven_fraction(self) -> float:
        return sum(bool(self.proven[w]) for w in self.windows) / max(
            len(self.windows), 1
        )

    def render(self) -> str:
        header = ["backend", "mean gap", "max gap", "optimal windows"]
        rows = [header]
        for b in self.backends:
            n_opt = sum(
                1 for w in self.windows
                if self.proven[w] and self.gaps[(b, w)] <= 1e-9
            )
            rows.append([
                b,
                f"{100 * self.mean_gap(b):.1f}%",
                f"{100 * self.max_gap(b):.1f}%",
                f"{n_opt}/{len(self.windows)}",
            ])
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [
            self.title,
            f"windows: {len(self.windows)}  k={self.k}  "
            f"oracle proven optimal: {100 * self.proven_fraction():.0f}%",
        ]
        for i, row in enumerate(rows):
            lines.append("  ".join(c.ljust(widths[j]) for j, c in enumerate(row)))
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)


def run_gap_ablation(
    config: ExperimentConfig | None = None,
    backends: tuple[str, ...] = GAP_BACKENDS,
    apps: tuple[str, ...] = ABLATION_APPS,
    quick: bool = False,
    max_window: int | None = None,
    windows_per_app: int | None = None,
    budget: int | None = None,
    progress=None,
) -> GapReport:
    """Measure each heuristic backend's edge-cut gap to the exact optimum.

    App TDGs are sliced into RGP-style windows (the first barrier or
    ``max_window`` tasks, then fixed ``max_window`` strides) and each
    window is partitioned onto a 2-box/4-socket cluster — small enough
    for the branch-and-bound oracle to prove optima on most windows,
    hierarchical enough that ``hier`` exercises its two-level path.  The
    objective is the weighted edge cut under uniform 4-way balance; see
    :class:`GapReport` for the gap definition.
    """
    import numpy as np

    from ..core.window import initial_window
    from ..graph.csr import CSRGraph
    from ..partition import ExactPartitioner, HierarchicalPartitioner
    from ..partition.metrics import edge_cut, imbalance

    config = config or ExperimentConfig.quick()
    if max_window is None:
        max_window = 64 if quick else 96
    if windows_per_app is None:
        windows_per_app = 2 if quick else 3
    if budget is None:
        budget = 150_000 if quick else 400_000

    topology = cluster(2, cores_per_socket=4, name="gap-cluster2")
    k = topology.n_sockets
    tol = 0.05

    def make_backend(name: str):
        if name == "hier":
            return HierarchicalPartitioner.for_topology(topology, tolerance=tol)
        return partitioner_by_name(name, tolerance=tol)

    report = GapReport(
        title="Ablation J: partitioner optimality gap (edge cut vs exact)",
        k=k, backends=list(backends),
    )
    oracle = ExactPartitioner(tolerance=tol, budget=budget)
    for app_name in apps:
        program = build_program(config, app_name)
        csr_full = CSRGraph.from_tdg(program.tdg)
        bounds = [0, initial_window(program, max_window)]
        while bounds[-1] < program.n_tasks:
            bounds.append(min(bounds[-1] + max_window, program.n_tasks))
        taken = 0
        for lo, hi in zip(bounds, bounds[1:]):
            if taken >= windows_per_app:
                break
            if hi - lo < k:
                continue  # degenerate spread window: nothing to measure
            g, _ = csr_full.induced_subgraph(np.arange(lo, hi))
            label = f"{app_name}/[{lo},{hi})"
            taken += 1
            res = oracle.partition(g, k, seed=0)
            ocut = float(edge_cut(g, res.parts))
            report.windows.append(label)
            report.oracle_cut[label] = ocut
            report.proven[label] = bool(res.meta.get("exact"))
            report.oracle_nodes[label] = int(res.meta.get("nodes", 0))
            cuts = {}
            feasible_cuts = []
            for b in backends:
                parts = make_backend(b).partition(g, k, seed=0).parts
                cuts[b] = float(edge_cut(g, parts))
                if imbalance(g, parts, k) <= tol + 1e-9:
                    feasible_cuts.append(cuts[b])
            # The reference is the proven optimum when the oracle finished;
            # otherwise the best *feasible* answer seen (a backend cut that
            # violates the balance constraint is not a valid optimum and
            # must not deflate everyone else's gap).
            if report.proven[label]:
                reference = ocut
            else:
                reference = min([ocut] + feasible_cuts)
            # Zero-cut windows stay finite: normalise against 1% of the
            # window's total edge weight when the reference cut vanishes.
            denom = max(reference, 0.005 * float(g.adjwgt.sum()), 1e-12)
            for b in backends:
                report.cuts[(b, label)] = cuts[b]
                report.gaps[(b, label)] = max(cuts[b] - reference, 0.0) / denom
            if progress is not None:
                progress(
                    f"{label}: n={hi - lo} oracle={ocut:.1f} "
                    f"proven={report.proven[label]} "
                    + " ".join(f"{b}={cuts[b]:.1f}" for b in backends)
                )
    return report
