"""Experiment configuration: machine, cost model, workloads, protocol.

The single place where the reproduction's calibration lives.  The paper's
platform (bullion S16) is fixed; the two free parameters of the cost model
are:

* ``remote_penalty_exp`` — how much worse remote bandwidth is than the SLIT
  ratio suggests (BCS-glued machines degrade super-linearly with distance);
* per-app problem sizes — scaled down so a full Figure 1 run takes minutes,
  keeping the compute/memory intensity ratios of the originals.

EXPERIMENTS.md records the calibration and the resulting paper-vs-measured
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ExperimentError
from ..machine.interconnect import Interconnect
from ..machine.presets import bullion_s16
from ..machine.topology import NumaTopology

#: Figure 1 policy set (LAS is the normalisation baseline).
FIGURE1_POLICIES = ("dfifo", "rgp+las", "ep")
BASELINE_POLICY = "las"

#: Figure 1 application order (as plotted in the paper).
FIGURE1_APPS = (
    "cg",
    "gauss-seidel",
    "histogram",
    "jacobi",
    "nstream",
    "qr",
    "redblack",
    "symminv",
)

#: Paper-scale problem sizes (scaled to simulate in minutes, intensity kept).
PAPER_APP_PARAMS: dict[str, dict[str, Any]] = {
    "cg": dict(nt=10, tile=96, iterations=6),
    "gauss-seidel": dict(nt=16, tile=128, sweeps=8),
    "histogram": dict(nt=16, tile=64, n_bins=16, repeats=6),
    "jacobi": dict(nt=12, tile=128, sweeps=8),
    "nstream": dict(n_blocks=40, block_elems=64 * 1024, iterations=12),
    "qr": dict(nt=10, tile=96),
    "redblack": dict(nt=16, tile=128, sweeps=6),
    "symminv": dict(nt=10, tile=96),
}

#: Reduced sizes for quick runs / CI benchmarks.
QUICK_APP_PARAMS: dict[str, dict[str, Any]] = {
    "cg": dict(nt=4, tile=128, iterations=4),
    "gauss-seidel": dict(nt=8, tile=128, sweeps=4),
    "histogram": dict(nt=8, tile=64, n_bins=16, repeats=2),
    "jacobi": dict(nt=8, tile=128, sweeps=4),
    "nstream": dict(n_blocks=48, block_elems=32 * 1024, iterations=6),
    "qr": dict(nt=6, tile=96),
    "redblack": dict(nt=8, tile=128, sweeps=4),
    "symminv": dict(nt=6, tile=96),
}


@dataclass
class ExperimentConfig:
    """Everything needed to run the evaluation."""

    topology: NumaTopology = field(default_factory=bullion_s16)
    remote_penalty_exp: float = 1.0
    link_fraction: float | None = 0.45
    core_fraction: float | None = 0.30
    #: RGP window-size limit: a task count, or ``"auto"`` for the
    #: adaptive controller (meaningful with pipelined repartitioning).
    window_size: int | str = 1024
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
    app_params: dict[str, dict[str, Any]] = field(
        default_factory=lambda: {k: dict(v) for k, v in PAPER_APP_PARAMS.items()}
    )
    apps: tuple[str, ...] = FIGURE1_APPS
    policies: tuple[str, ...] = FIGURE1_POLICIES
    baseline: str = BASELINE_POLICY
    steal: bool | str = "near"

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ExperimentError("need at least one seed")
        if self.baseline in self.policies:
            raise ExperimentError(
                "baseline policy must not be listed in policies (it is "
                "always run)"
            )

    def interconnect(self) -> Interconnect:
        return Interconnect(
            self.topology,
            remote_penalty_exp=self.remote_penalty_exp,
            link_fraction=self.link_fraction,
            core_fraction=self.core_fraction,
        )

    @classmethod
    def paper(cls, **overrides) -> "ExperimentConfig":
        """The full Figure 1 configuration."""
        return cls(**overrides)

    @classmethod
    def quick(cls, **overrides) -> "ExperimentConfig":
        """Smaller sizes + fewer seeds, for CI and benchmarks."""
        defaults = dict(
            app_params={k: dict(v) for k, v in QUICK_APP_PARAMS.items()},
            seeds=(0, 1, 2),
        )
        defaults.update(overrides)
        return cls(**defaults)
