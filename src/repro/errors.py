"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Invalid NUMA topology specification (bad distance matrix, counts...)."""


class MemoryError_(ReproError):
    """Invalid memory operation (double bind, unknown object, bad range)."""


class GraphError(ReproError):
    """Invalid graph operation (unknown node, cycle, malformed CSR)."""


class PartitionError(ReproError):
    """Graph partitioning failure (infeasible balance, bad part count)."""


class RuntimeStateError(ReproError):
    """Task runtime misuse (submit after finalize, unknown data object...)."""


class DependencyError(ReproError):
    """Dependence-tracking violation (task reads data never written/bound)."""


class SchedulerError(ReproError):
    """Scheduler misconfiguration or contract violation."""


class SimulationError(ReproError):
    """Discrete-event simulation invariant violation (deadlock, time warp)."""


class ApplicationError(ReproError):
    """Benchmark application misconfiguration (bad sizes, tile counts)."""


class ExperimentError(ReproError):
    """Experiment harness failure (unknown app/policy, empty sweep)."""


class FaultError(ReproError):
    """Fault-injection / resilience failure (bad fault plan, retry limit
    exceeded, no surviving core can run a task)."""


class PartitionTimeoutError(FaultError):
    """The window partition result did not arrive before its deadline."""


class BenchmarkError(ReproError):
    """Benchmark harness failure (schema violation, divergent schedules)."""


class VerificationError(ReproError):
    """A runtime invariant or a differential-oracle check failed.

    Raised by :mod:`repro.verify`: the online :class:`InvariantChecker`
    (``REPRO_VERIFY=1``) when a mid-run invariant breaks, and the reference
    oracle when the recorded decision trace cannot be replayed."""
