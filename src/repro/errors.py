"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Invalid NUMA topology specification (bad distance matrix, counts...)."""


class MemoryError_(ReproError):
    """Invalid memory operation (double bind, unknown object, bad range)."""


class GraphError(ReproError):
    """Invalid graph operation (unknown node, cycle, malformed CSR)."""


class PartitionError(ReproError):
    """Graph partitioning failure (infeasible balance, bad part count)."""


class ExactBudgetExceeded(PartitionError):
    """The exact partitioner's branch-and-bound node budget ran out.

    Only raised when the backend was configured with ``on_budget="raise"``;
    the default degrades to the multilevel heuristic's answer with a
    ``meta`` flag instead of hanging or erroring.
    """


class RuntimeStateError(ReproError):
    """Task runtime misuse (submit after finalize, unknown data object...)."""


class DependencyError(ReproError):
    """Dependence-tracking violation (task reads data never written/bound)."""


class SchedulerError(ReproError):
    """Scheduler misconfiguration or contract violation."""


class SimulationError(ReproError):
    """Discrete-event simulation invariant violation (deadlock, time warp)."""


class ApplicationError(ReproError):
    """Benchmark application misconfiguration (bad sizes, tile counts)."""


class ExperimentError(ReproError):
    """Experiment harness failure (unknown app/policy, empty sweep)."""


class FaultError(ReproError):
    """Fault-injection / resilience failure (bad fault plan, retry limit
    exceeded, no surviving core can run a task)."""


class PartitionTimeoutError(FaultError):
    """The window partition result did not arrive before its deadline."""


class BenchmarkError(ReproError):
    """Benchmark harness failure (schema violation, divergent schedules)."""


class ProfilingError(ReproError):
    """Critical-path profiling failure (decomposition does not sum to the
    makespan, unalignable runs, malformed profile input)."""


class VerificationError(ReproError):
    """A runtime invariant or a differential-oracle check failed.

    Raised by :mod:`repro.verify`: the online :class:`InvariantChecker`
    (``REPRO_VERIFY=1``) when a mid-run invariant breaks, and the reference
    oracle when the recorded decision trace cannot be replayed."""


# ---------------------------------------------------------------------------
# Service errors (DESIGN.md §12)


class ServiceError(ReproError):
    """Base class for the simulation job service (:mod:`repro.service`)."""


class JobSpecError(ServiceError):
    """A submitted job specification is malformed (unknown app/policy/
    machine, bad seed, unparsable fault plan).  Maps to HTTP 400."""


class QueueFullError(ServiceError):
    """The bounded admission queue is full; the job was shed.

    Maps to HTTP 429 with a ``Retry-After`` hint."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class RateLimitError(ServiceError):
    """A tenant exhausted its token bucket.  Maps to HTTP 429."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JobNotFoundError(ServiceError):
    """No job/result with the requested id/hash.  Maps to HTTP 404."""


class DeadlineExceededError(ServiceError):
    """A job missed its deadline (queued too long, or ran past its
    per-job wall-clock timeout and was killed)."""


class PoisonJobError(ServiceError):
    """A job crashed the configured number of workers and was quarantined;
    it will never be retried again."""


class ShuttingDownError(ServiceError):
    """The server is draining (SIGTERM received); no new jobs accepted.
    Maps to HTTP 503."""


# ---------------------------------------------------------------------------
# CLI exit codes
#
# ``repro`` maps every :class:`ReproError` subtree to a distinct,
# documented process exit code so scripts and CI can branch on the
# failure class without parsing stderr:
#
# ===== =====================================================
# code  meaning
# ===== =====================================================
# 0     success
# 1     other library error (simulation invariant, memory, graph...)
# 2     configuration error (bad app/policy/machine/arguments)
# 3     partition timeout (window partition missed its deadline)
# 4     verification failure (oracle divergence, invariant break)
# 5     fault-injection / resilience failure
# 6     benchmark harness failure (schema violation, divergence)
# 7     service failure (queue full, rate limited, poison job...)
# ===== =====================================================
#
# Code 2 intentionally matches argparse's usage-error exit code: both are
# "the invocation was wrong", and scripts treat them identically.

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_CONFIG = 2
EXIT_PARTITION_TIMEOUT = 3
EXIT_VERIFICATION = 4
EXIT_FAULT = 5
EXIT_BENCHMARK = 6
EXIT_SERVICE = 7

#: Most-derived-first mapping from error class to exit code; the first
#: ``isinstance`` match wins, so subclasses (PartitionTimeoutError before
#: FaultError) must precede their bases.
EXIT_CODE_MAP: tuple[tuple[type, int], ...] = (
    (PartitionTimeoutError, EXIT_PARTITION_TIMEOUT),
    (VerificationError, EXIT_VERIFICATION),
    (FaultError, EXIT_FAULT),
    (BenchmarkError, EXIT_BENCHMARK),
    (ServiceError, EXIT_SERVICE),
    (ExperimentError, EXIT_CONFIG),
    (ApplicationError, EXIT_CONFIG),
    (TopologyError, EXIT_CONFIG),
    (SchedulerError, EXIT_CONFIG),
)


def exit_code_for(exc: BaseException) -> int:
    """Documented CLI exit code for a library error (1 if unmapped)."""
    for klass, code in EXIT_CODE_MAP:
        if isinstance(exc, klass):
            return code
    return EXIT_ERROR
