"""Data objects and task data accesses (the OmpSs ``depend`` clauses).

A :class:`DataObject` is a named contiguous allocation (a tile, a vector
block...).  Tasks declare :class:`DataAccess` es on objects; the dependence
tracker derives the TDG from them and the simulator charges their bytes to
the NUMA nodes holding the pages.

Objects may carry a real numpy ``payload`` so the same program can be
*executed* (for numerical validation) as well as *simulated*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..errors import RuntimeStateError


class AccessMode(enum.Enum):
    """OpenMP/OmpSs dependence type of one task argument."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.IN, AccessMode.INOUT)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.OUT, AccessMode.INOUT)

    @property
    def traffic_multiplier(self) -> int:
        """Memory traffic per byte of the access: INOUT moves data twice."""
        return 2 if self is AccessMode.INOUT else 1


@dataclass(eq=False)
class DataObject:
    """A named allocation tracked by the runtime.

    Parameters
    ----------
    key:
        Dense id assigned by the program (index into its object table).
    name:
        Human-readable name (used in traces).
    size_bytes:
        Allocation size.
    initial_node:
        If set, the object is *pre-bound* to this NUMA node before the
        program runs (externally initialised input).  ``None`` means the
        allocation is deferred: pages bind on first touch by a task.
    interleaved:
        Pre-bind pages round-robin over all nodes (``numactl --interleave``
        style); mutually exclusive with ``initial_node``.
    payload:
        Optional real storage (numpy array) for execution mode.
    """

    key: int
    name: str
    size_bytes: int
    initial_node: int | None = None
    interleaved: bool = False
    payload: Any = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise RuntimeStateError(
                f"data object {self.name!r} must have positive size"
            )
        if self.initial_node is not None and self.interleaved:
            raise RuntimeStateError(
                f"data object {self.name!r}: initial_node and interleaved "
                "are mutually exclusive"
            )

    def __repr__(self) -> str:
        return f"DataObject({self.key}, {self.name!r}, {self.size_bytes}B)"


@dataclass(frozen=True)
class DataAccess:
    """One task argument: an object (or a byte range of it) plus a mode."""

    obj: DataObject
    mode: AccessMode
    offset: int = 0
    length: int | None = None

    def __post_init__(self) -> None:
        size = self.obj.size_bytes
        length = self.length if self.length is not None else size - self.offset
        if self.offset < 0 or length < 0 or self.offset + length > size:
            raise RuntimeStateError(
                f"access range [{self.offset}, {self.offset + length}) outside "
                f"{self.obj.name!r} of size {size}"
            )

    @property
    def bytes(self) -> int:
        """Length of the accessed range."""
        if self.length is not None:
            return self.length
        return self.obj.size_bytes - self.offset

    @property
    def traffic_bytes(self) -> int:
        """Bytes of memory traffic this access generates."""
        return self.bytes * self.mode.traffic_multiplier


def reads_of(accesses: list[DataAccess]) -> list[DataAccess]:
    """Accesses that read their object."""
    return [a for a in accesses if a.mode.reads]


def writes_of(accesses: list[DataAccess]) -> list[DataAccess]:
    """Accesses that write their object."""
    return [a for a in accesses if a.mode.writes]
