"""Task runtime: programs, dependence tracking, and the NUMA simulator.

Stands in for Nanos++ (DESIGN.md §2): applications declare data and tasks
with in/out/inout dependence lists; the runtime derives the TDG; the
simulator executes it on a modelled NUMA machine under a pluggable
scheduling policy.
"""

from .cost import allocated_bytes_per_node, traffic_streams
from .data import AccessMode, DataAccess, DataObject, reads_of, writes_of
from .dependencies import DependencyTracker
from .executor import execute, execute_in_order
from .placement import Placement
from .program import TaskProgram
from .result import Message, SimulationResult, TaskRecord
from .simulator import Simulator, simulate
from .task import Task
from .validation import validate_schedule

__all__ = [
    "AccessMode",
    "DataAccess",
    "DataObject",
    "DependencyTracker",
    "Message",
    "Placement",
    "SimulationResult",
    "Simulator",
    "Task",
    "TaskProgram",
    "TaskRecord",
    "allocated_bytes_per_node",
    "execute",
    "execute_in_order",
    "reads_of",
    "simulate",
    "traffic_streams",
    "validate_schedule",
    "writes_of",
]
