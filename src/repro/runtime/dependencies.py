"""Dependence tracking: derive TDG edges from declared data accesses.

Standard task-dataflow rules at data-object granularity (apps use one
object per tile, matching how OmpSs array sections are used in the paper's
benchmarks):

* **RAW** — a reader depends on the last writer;
* **WAW** — a writer depends on the previous writer;
* **WAR** — a writer depends on every reader since the last write.

Edge weights are the *bytes of the consumer's access* (what must be present
before the consumer may run) — the quantity the paper uses to weight TDG
edges for partitioning.  WAR edges carry zero bytes: they order tasks but
move no data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .task import Task


@dataclass
class _ObjectState:
    last_writer: int | None = None
    #: readers since the last write, with the bytes they read
    readers: list[int] = field(default_factory=list)


class DependencyTracker:
    """Feeds on tasks in creation order, emits weighted TDG edges."""

    def __init__(self) -> None:
        self._state: dict[int, _ObjectState] = {}

    def edges_for(self, task: Task) -> list[tuple[int, int, float]]:
        """Process ``task``; return new edges ``(src, dst, bytes)``.

        Must be called in task-creation order (asserted via ids).
        """
        edges: dict[int, float] = {}

        def add(src: int | None, weight: float) -> None:
            if src is None or src == task.tid:
                return
            assert src < task.tid, "dependence must point backwards"
            edges[src] = edges.get(src, 0.0) + weight

        for access in task.accesses:
            state = self._state.setdefault(access.obj.key, _ObjectState())
            if access.mode.reads:
                add(state.last_writer, float(access.bytes))
            if access.mode.writes:
                # WAW: order after the previous writer (no data moved beyond
                # what a read already accounted for).
                if not access.mode.reads:
                    add(state.last_writer, 0.0)
                # WAR: order after intervening readers (no data moved).
                for reader in state.readers:
                    add(reader, 0.0)

        # Second pass: update object states (after computing edges so that
        # a task with several accesses to one object is handled coherently).
        for access in task.accesses:
            state = self._state[access.obj.key]
            if access.mode.writes:
                state.last_writer = task.tid
                state.readers = []
            if access.mode.reads and not access.mode.writes:
                state.readers.append(task.tid)

        return [(src, task.tid, w) for src, w in sorted(edges.items())]

    def last_writer(self, obj_key: int) -> int | None:
        """Last task that wrote the object (``None`` if never written)."""
        state = self._state.get(obj_key)
        return state.last_writer if state else None
