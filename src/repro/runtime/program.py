"""Task program: the recorded stream of data declarations, tasks, barriers.

:class:`TaskProgram` is what an application hands to the simulator (or to
the sequential executor).  It plays the role of the application binary plus
the runtime's task-instantiation phase: a list of data objects, a list of
tasks in creation order, barrier positions, and the task dependency graph
derived on the fly by :class:`~repro.runtime.dependencies.DependencyTracker`.

Programs are *reusable*: simulation never mutates them, so the same program
runs under every scheduler — exactly how the paper compares policies on
identical TDGs.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import RuntimeStateError
from ..graph.tdg import TaskGraph
from .data import AccessMode, DataAccess, DataObject
from .dependencies import DependencyTracker
from .task import Task


class TaskProgram:
    """Builder + container for a task-parallel program."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.objects: list[DataObject] = []
        self.tasks: list[Task] = []
        self.tdg = TaskGraph()
        self._tracker = DependencyTracker()
        #: task index at which each barrier sits: barrier i separates tasks
        #: with epoch <= i from epoch i+1 tasks.
        self.barriers: list[int] = []
        self._epoch = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Construction API (what an application calls)
    # ------------------------------------------------------------------
    def data(
        self,
        name: str,
        size_bytes: int,
        *,
        initial_node: int | None = None,
        interleaved: bool = False,
        payload: Any = None,
    ) -> DataObject:
        """Declare a data object (a tile / block / vector)."""
        self._check_open()
        obj = DataObject(
            key=len(self.objects),
            name=name,
            size_bytes=int(size_bytes),
            initial_node=initial_node,
            interleaved=interleaved,
            payload=payload,
        )
        self.objects.append(obj)
        return obj

    def task(
        self,
        name: str = "",
        *,
        ins: list[DataObject | DataAccess] | None = None,
        outs: list[DataObject | DataAccess] | None = None,
        inouts: list[DataObject | DataAccess] | None = None,
        work: float = 0.0,
        fn: Callable[[], Any] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> Task:
        """Create a task with OmpSs-style dependence lists.

        Entries may be plain :class:`DataObject` (whole-object access) or
        explicit :class:`DataAccess` (sub-range).
        """
        self._check_open()
        accesses: list[DataAccess] = []
        for lst, mode in (
            (ins, AccessMode.IN),
            (outs, AccessMode.OUT),
            (inouts, AccessMode.INOUT),
        ):
            for item in lst or []:
                if isinstance(item, DataAccess):
                    if item.mode is not mode:
                        raise RuntimeStateError(
                            f"access mode {item.mode} listed under {mode}"
                        )
                    accesses.append(item)
                else:
                    accesses.append(DataAccess(obj=item, mode=mode))
        tid = len(self.tasks)
        task = Task(
            tid=tid,
            name=name or f"task{tid}",
            accesses=tuple(accesses),
            work=float(work),
            fn=fn,
            epoch=self._epoch,
            meta=meta or {},
        )
        self.tasks.append(task)
        node = self.tdg.add_node(weight=max(task.work, 1e-12), label=task.name)
        assert node == tid
        for src, dst, w in self._tracker.edges_for(task):
            self.tdg.add_edge(src, dst, w)
        return task

    def barrier(self) -> None:
        """Insert a taskwait/barrier: later tasks wait for all earlier ones.

        Also one of the paper's two RGP partition triggers.
        """
        self._check_open()
        if self.barriers and self.barriers[-1] == len(self.tasks):
            return  # consecutive barriers collapse
        self.barriers.append(len(self.tasks))
        self._epoch += 1

    def finalize(self) -> "TaskProgram":
        """Freeze the program (further construction raises)."""
        self._finalized = True
        return self

    def _check_open(self) -> None:
        if self._finalized:
            raise RuntimeStateError("program is finalized")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    @property
    def n_epochs(self) -> int:
        """Number of barrier epochs (>= 1 for a non-empty program)."""
        return self._epoch + 1

    def epoch_task_counts(self) -> list[int]:
        """Number of tasks in each epoch."""
        counts = [0] * self.n_epochs
        for t in self.tasks:
            counts[t.epoch] += 1
        return counts

    def first_partition_point(self, window_size: int) -> int:
        """The paper's RGP trigger: ``min(first barrier, window size)``.

        Returns the number of leading tasks forming the initial subgraph.
        """
        if window_size < 1:
            raise RuntimeStateError("window size must be >= 1")
        first_barrier = self.barriers[0] if self.barriers else self.n_tasks
        return min(window_size, first_barrier, self.n_tasks)

    def total_work(self) -> float:
        return sum(t.work for t in self.tasks)

    def total_traffic_bytes(self) -> int:
        return sum(t.traffic_bytes for t in self.tasks)

    def validate(self) -> None:
        """Structural checks: ids dense, edges respect creation order."""
        for i, t in enumerate(self.tasks):
            if t.tid != i:
                raise RuntimeStateError(f"task id {t.tid} at position {i}")
        if self.tdg.n_nodes != self.n_tasks:
            raise RuntimeStateError("TDG node count != task count")
        for src, dst, _ in self.tdg.edges():
            if not (src < dst):
                raise RuntimeStateError(f"edge {src}->{dst} not forward")

    def __repr__(self) -> str:
        return (
            f"TaskProgram({self.name!r}, tasks={self.n_tasks}, "
            f"objects={self.n_objects}, epochs={self.n_epochs})"
        )
