"""Schedule validation: prove a simulation result is physically possible.

The executor validates *orders*; this module validates the *timed
schedule* itself, straight from the records:

* no core runs two tasks at once;
* every task starts at/after all its TDG predecessors finished;
* barrier epochs do not overlap;
* every task *completed* exactly once, on a core of its recorded socket.

Fault-injected runs re-execute crashed attempts
(:attr:`~repro.runtime.result.SimulationResult.crashed_records`); those
attempts must also obey core exclusivity and dependences, must never
overlap a later attempt of the same task, and must carry a non-``"ok"``
outcome — while ``records`` still covers every task exactly once.

Used by the integration tests after every scheduler change, and exported
for users debugging their own policies.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import SimulationError
from ..machine.topology import NumaTopology
from ..runtime.program import TaskProgram
from ..runtime.result import SimulationResult

#: Scheduling tolerance for float comparisons (simulated time units).
_TOL = 1e-6


def validate_schedule(
    program: TaskProgram,
    result: SimulationResult,
    topology: NumaTopology,
    *,
    simulator=None,
) -> None:
    """Raise :class:`SimulationError` on the first inconsistency found.

    When ``simulator`` is given (the :class:`~repro.runtime.simulator.
    Simulator` instance that produced ``result``), the runtime state is
    additionally checked for drainage: no task may remain parked (either
    in the flat queue or keyed under ``parked_by_key``), and a pipelined
    RGP scheduler may not leave a window stuck ``pending``/``lost`` while
    tasks of that window went unscheduled.
    """
    if simulator is not None:
        _check_runtime_drained(simulator, result)
    _check_coverage(program, result)
    _check_socket_core_consistency(result, topology)
    _check_core_exclusivity(result)
    _check_dependences(program, result)
    _check_barriers(program, result)
    _check_reexecutions(program, result)


def _check_runtime_drained(sim, result: SimulationResult) -> None:
    """End-of-run drainage: parked queues empty, no window left behind.

    Pipelined RGP parks tasks whose window partition has not arrived yet
    and wakes them via ``Simulator.reoffer_key``; if that wake-up is
    skipped (or ``reoffer`` forgets to clear ``parked_by_key``), the run
    can still *appear* complete when a fallback path scheduled the tasks
    — this check catches the leak itself.
    """
    if sim.parked:
        tids = sorted(t.tid for t in sim.parked)
        raise SimulationError(
            f"{len(sim.parked)} task(s) still parked at end of run: {tids}"
        )
    if sim.parked_by_key:
        leaked = {
            key: sorted(t.tid for t in tasks)
            for key, tasks in sorted(sim.parked_by_key.items())
        }
        raise SimulationError(
            f"parked_by_key not drained at end of run: {leaked}"
        )
    # Cluster runs: every message sent must have been received (stamped
    # into a Message record at task finish) or dropped with its crashed
    # attempt — an entry left here means a send was never closed out.
    in_flight = getattr(sim, "_msgs_in_flight", None)
    if in_flight:
        leaked = {tid: len(msgs) for tid, msgs in sorted(in_flight.items())}
        raise SimulationError(
            f"in-flight messages not drained at end of run: {leaked}"
        )
    scheduler = getattr(sim, "scheduler", None)
    window_state = getattr(scheduler, "_window_state", None)
    windows = getattr(scheduler, "_windows", None)
    if not window_state or windows is None:
        return
    from ..core.rgp import WINDOW_PENDING, WINDOW_LOST

    completed = {r.tid for r in result.records}
    for window, state in sorted(window_state.items()):
        if state not in (WINDOW_PENDING, WINDOW_LOST):
            continue
        lo, hi = windows.span(window)
        unscheduled = [tid for tid in range(lo, hi) if tid not in completed]
        if unscheduled:
            raise SimulationError(
                f"window {window} left {state!r} with unscheduled tasks "
                f"{unscheduled}"
            )


def _check_coverage(program: TaskProgram, result: SimulationResult) -> None:
    tids = sorted(r.tid for r in result.records)
    if tids != list(range(program.n_tasks)):
        raise SimulationError(
            f"schedule covers {len(tids)} records for {program.n_tasks} tasks"
        )
    for rec in result.records:
        if rec.finish < rec.start - _TOL:
            raise SimulationError(
                f"task {rec.tid} finishes ({rec.finish}) before it starts "
                f"({rec.start})"
            )
        if rec.finish > result.makespan + _TOL:
            raise SimulationError(
                f"task {rec.tid} finishes after the makespan"
            )


def _check_socket_core_consistency(
    result: SimulationResult, topology: NumaTopology
) -> None:
    for rec in [*result.records, *result.crashed_records]:
        if topology.socket_of_core(rec.core) != rec.socket:
            raise SimulationError(
                f"task {rec.tid} recorded on core {rec.core} which belongs "
                f"to socket {topology.socket_of_core(rec.core)}, not "
                f"{rec.socket}"
            )


def _check_core_exclusivity(result: SimulationResult) -> None:
    # Crashed attempts occupied their core for [start, finish) too.
    by_core = defaultdict(list)
    for rec in [*result.records, *result.crashed_records]:
        by_core[rec.core].append(rec)
    for core, recs in by_core.items():
        recs.sort(key=lambda r: r.start)
        for prev, cur in zip(recs, recs[1:]):
            if cur.start < prev.finish - _TOL:
                raise SimulationError(
                    f"core {core} overlap: task {prev.tid} "
                    f"[{prev.start:.6g}, {prev.finish:.6g}) and task "
                    f"{cur.tid} [{cur.start:.6g}, {cur.finish:.6g})"
                )


def _check_dependences(program: TaskProgram, result: SimulationResult) -> None:
    rec = {r.tid: r for r in result.records}
    for src, dst, _w in program.tdg.edges():
        if rec[dst].start < rec[src].finish - _TOL:
            raise SimulationError(
                f"dependence violated: task {dst} "
                f"({program.tasks[dst].name}) started at "
                f"{rec[dst].start:.6g} before its predecessor {src} "
                f"({program.tasks[src].name}) finished at "
                f"{rec[src].finish:.6g}"
            )


def _check_barriers(program: TaskProgram, result: SimulationResult) -> None:
    rec = {r.tid: r for r in result.records}
    latest_finish_by_epoch: dict[int, float] = defaultdict(float)
    earliest_start_by_epoch: dict[int, float] = defaultdict(lambda: float("inf"))
    for task in program.tasks:
        r = rec[task.tid]
        latest_finish_by_epoch[task.epoch] = max(
            latest_finish_by_epoch[task.epoch], r.finish
        )
        earliest_start_by_epoch[task.epoch] = min(
            earliest_start_by_epoch[task.epoch], r.start
        )
    epochs = sorted(latest_finish_by_epoch)
    for prev, cur in zip(epochs, epochs[1:]):
        if earliest_start_by_epoch[cur] < latest_finish_by_epoch[prev] - _TOL:
            raise SimulationError(
                f"barrier violated: epoch {cur} starts at "
                f"{earliest_start_by_epoch[cur]:.6g} before epoch {prev} "
                f"finishes at {latest_finish_by_epoch[prev]:.6g}"
            )


def _check_reexecutions(program: TaskProgram, result: SimulationResult) -> None:
    """Crashed attempts must be real, ordered, dependence-safe attempts."""
    completed = {r.tid: r for r in result.records}
    pred_finish = {
        tid: [completed[src].finish for src in program.tdg.predecessors(tid)]
        for tid in completed
    }
    attempts_of = defaultdict(list)
    for rec in result.crashed_records:
        if rec.outcome == "ok":
            raise SimulationError(
                f"crashed record for task {rec.tid} claims outcome 'ok'"
            )
        if rec.tid not in completed:
            raise SimulationError(
                f"crashed record for unknown/incomplete task {rec.tid}"
            )
        if rec.finish < rec.start - _TOL:
            raise SimulationError(
                f"crashed attempt of task {rec.tid} finishes ({rec.finish}) "
                f"before it starts ({rec.start})"
            )
        if rec.finish > result.makespan + _TOL:
            raise SimulationError(
                f"crashed attempt of task {rec.tid} outlives the makespan"
            )
        # A crashed attempt still had to wait for its dependences.
        for fin in pred_finish[rec.tid]:
            if rec.start < fin - _TOL:
                raise SimulationError(
                    f"crashed attempt of task {rec.tid} started at "
                    f"{rec.start:.6g} before a predecessor finished at "
                    f"{fin:.6g}"
                )
        attempts_of[rec.tid].append(rec)
    for tid, crashed in attempts_of.items():
        crashed.sort(key=lambda r: r.start)
        chain = [*crashed, completed[tid]]
        for prev, cur in zip(chain, chain[1:]):
            if cur.start < prev.finish - _TOL:
                raise SimulationError(
                    f"task {tid} re-executed at {cur.start:.6g} before its "
                    f"previous attempt ended at {prev.finish:.6g}"
                )
        final = completed[tid]
        if final.attempt != len(crashed):
            raise SimulationError(
                f"task {tid} completed as attempt {final.attempt} but has "
                f"{len(crashed)} crashed attempts on record"
            )
