"""The task record.

Tasks are immutable once created: all mutable scheduling/simulation state
lives in the simulator, so one :class:`~repro.runtime.program.TaskProgram`
can be simulated many times under different schedulers without rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import RuntimeStateError
from .data import AccessMode, DataAccess


@dataclass(eq=False)
class Task:
    """One node of the task dependency graph.

    Parameters
    ----------
    tid:
        Dense id in creation order (== TDG node id).
    name:
        Label, e.g. ``"potrf(2,2)"``.
    accesses:
        Declared data accesses (the ``depend`` clauses).
    work:
        Pure compute time in simulated time units (memory time is derived
        from the accesses and the machine state at run time).
    fn:
        Optional real computation, called with no arguments in execution
        mode (apps close over their numpy payloads).
    epoch:
        Barrier epoch: the task may only start once every task of earlier
        epochs has finished.
    meta:
        Free-form metadata; known keys: ``"ep_socket"`` (expert-programmer
        placement), app-specific tile coordinates.
    """

    tid: int
    name: str
    accesses: tuple[DataAccess, ...]
    work: float
    fn: Callable[[], Any] | None = None
    epoch: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.work < 0:
            raise RuntimeStateError(f"task {self.name!r}: work must be >= 0")
        if self.epoch < 0:
            raise RuntimeStateError(f"task {self.name!r}: epoch must be >= 0")
        self.accesses = tuple(self.accesses)

    # ------------------------------------------------------------------
    @property
    def input_bytes(self) -> int:
        """Bytes read (IN + INOUT)."""
        return sum(a.bytes for a in self.accesses if a.mode.reads)

    @property
    def output_bytes(self) -> int:
        """Bytes written (OUT + INOUT)."""
        return sum(a.bytes for a in self.accesses if a.mode.writes)

    @property
    def traffic_bytes(self) -> int:
        """Total memory traffic the task generates."""
        return sum(a.traffic_bytes for a in self.accesses)

    def accesses_by_mode(self, mode: AccessMode) -> list[DataAccess]:
        return [a for a in self.accesses if a.mode is mode]

    def __repr__(self) -> str:
        return f"Task({self.tid}, {self.name!r}, work={self.work:.3g})"
