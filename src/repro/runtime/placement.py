"""Placement decisions returned by schedulers to the simulator."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulerError


@dataclass(frozen=True)
class Placement:
    """Where a ready task should go.

    Exactly one of the three forms:

    * ``Placement(socket=s)`` — push to socket ``s``'s ready queue
      (work-pushing, any core of the socket may run it);
    * ``Placement(core=c)`` — push to core ``c``'s private queue
      (DFIFO-style per-CPU placement);
    * ``Placement(park=True)`` — hold the task in the runtime's temporary
      queue (RGP: ready before the window partition is available); the
      scheduler must later re-offer it via
      :meth:`~repro.runtime.simulator.Simulator.reoffer`.

    A parked placement may carry a ``park_key`` (RGP pipelining: the
    window index the task is waiting on); the simulator then additionally
    indexes the task under that key so the scheduler can re-offer one
    window's tasks with
    :meth:`~repro.runtime.simulator.Simulator.reoffer_key` when that
    window's partition is delivered.
    """

    socket: int | None = None
    core: int | None = None
    park: bool = False
    park_key: int | None = None

    def __post_init__(self) -> None:
        n_set = (self.socket is not None) + (self.core is not None) + bool(self.park)
        if n_set != 1:
            raise SchedulerError(
                "Placement needs exactly one of socket=, core=, park=True; "
                f"got {self!r}"
            )
        if self.park_key is not None and not self.park:
            raise SchedulerError(
                f"park_key= is only meaningful with park=True; got {self!r}"
            )

    def to_dict(self) -> dict:
        """JSON-safe form (verification repro files, decision traces)."""
        if self.park:
            doc: dict = {"park": True}
            if self.park_key is not None:
                doc["park_key"] = int(self.park_key)
            return doc
        if self.core is not None:
            return {"core": int(self.core)}
        return {"socket": int(self.socket)}

    @classmethod
    def from_dict(cls, doc: dict) -> Placement:
        """Inverse of :meth:`to_dict`."""
        if doc.get("park"):
            return cls(park=True, park_key=doc.get("park_key"))
        if "core" in doc:
            return cls(core=int(doc["core"]))
        return cls(socket=int(doc["socket"]))
