"""Discrete-event NUMA machine simulator with fluid memory streams.

This is the substitute for running on real hardware (DESIGN.md §2).  Time
advances between *events* (task completions and scheduler timers).  While a
task runs it owns one core and drains:

* a **compute component** at rate 1 (time units of ``task.work``), and
* one **memory stream per NUMA node** it touches, whose instantaneous rate
  comes from :class:`~repro.machine.interconnect.Interconnect` (processor
  sharing of each node's bandwidth, scaled by socket distance).

A task finishes when compute *and* all streams have drained (roofline-style
overlap of compute and memory).  Because rates only change when the set of
running tasks changes, completions can be predicted exactly between events.

Scheduling protocol: when a task becomes ready the attached scheduler's
``choose(task)`` returns a :class:`~repro.runtime.placement.Placement` —
a socket queue (work-pushing), a core queue (DFIFO), or *park* (RGP's
temporary queue while the window partition is pending).  Idle cores pull
from their queues; optional distance-aware work stealing rebalances.

Resilient execution (DESIGN.md §7): an optional
:class:`~repro.faults.plan.FaultPlan` injects core failures, stragglers,
task crashes and bandwidth degradation through the same timer mechanism
schedulers use.  Crashed attempts are re-executed (dependence-safe: a
crashed task never released its successors) up to ``max_retries`` times
with exponential backoff; failed cores are quarantined and their queued
work re-offered; placements aimed at dead cores/sockets are transparently
remapped to the nearest surviving socket.  With no plan (or an empty one)
every fault path is skipped and results are identical to the fault-free
simulator.

Observability (DESIGN.md §8): an optional
:class:`~repro.observability.Instrumentation` receives structured events
(task lifecycle, placement decisions, steals, faults, epochs) and feeds a
metrics registry (queue depths, busy cores, the NUMA traffic matrix,
cumulative local/remote bytes).  Emitting never touches simulator state
or an RNG, so instrumented and uninstrumented runs are byte-identical.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import FaultError, ReproError, SimulationError
from ..machine.interconnect import Interconnect, StreamKey
from ..machine.memory import DEFAULT_PAGE_SIZE, MemoryManager
from ..machine.topology import NumaTopology
from .cost import traffic_streams
from .engines import (  # noqa: F401 (re-export)
    _EPS,
    _EPS_BYTES,
    _INF,
    ENGINES,
    _Running,
)
from .placement import Placement
from .program import TaskProgram
from .result import Message, SimulationResult, TaskRecord
from .task import Task


def _verify_env() -> bool:
    """True when ``REPRO_VERIFY`` asks for the online invariant checker."""
    flag = os.environ.get("REPRO_VERIFY", "").strip().lower()
    return flag not in ("", "0", "off", "false")


@dataclass(order=True)
class _Timer:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """Simulate one program on one machine under one scheduler."""

    def __init__(
        self,
        program: TaskProgram,
        topology: NumaTopology,
        scheduler,
        *,
        interconnect: Interconnect | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        steal: bool | str = True,
        steal_distance: float | None = None,
        seed: int = 0,
        duration_jitter: float = 0.03,
        max_iterations: int | None = None,
        faults=None,
        max_retries: int = 3,
        retry_backoff: float = 0.0,
        wall_clock_limit: float | None = None,
        instrument=None,
        placement_cache: bool = True,
        probe=None,
        verify: bool | None = None,
        engine: str = "flat",
    ) -> None:
        program.validate()
        self.program = program
        self.topology = topology
        self.interconnect = interconnect or Interconnect(topology)
        ic_topo = self.interconnect.topology
        if (
            ic_topo.n_sockets != topology.n_sockets
            or ic_topo.cores_per_socket != topology.cores_per_socket
            or getattr(ic_topo, "n_resources", ic_topo.n_nodes)
            != getattr(topology, "n_resources", topology.n_nodes)
            or not np.allclose(ic_topo.distance, topology.distance)
        ):
            raise SimulationError(
                "interconnect was built for a structurally different topology"
            )
        # Cluster structure (None on a single box): cross-box traffic is
        # re-keyed from the remote memory node onto the source box's NIC
        # resource, producing explicit messages instead of implicit remote
        # loads.  ``n_resources`` sizes every per-resource array below.
        self.n_resources = getattr(topology, "n_resources", topology.n_nodes)
        n_boxes = getattr(topology, "n_boxes", 1)
        self.n_boxes = n_boxes
        if n_boxes > 1:
            self._box_of_socket: list[int] | None = [
                topology.box_of_socket(s) for s in range(topology.n_sockets)
            ]
            self._nic_of_box = [
                topology.nic_of_box(b) for b in range(n_boxes)
            ]
            self.bytes_by_link = np.zeros((n_boxes, n_boxes), dtype=np.float64)
        else:
            self._box_of_socket = None
            self._nic_of_box = None
            self.bytes_by_link = None
        self.messages: list[Message] = []
        self.messages_dropped = 0
        #: Per-attempt in-flight transfers: tid -> [(src_box, dst_box,
        #: nbytes, send_ts)].  Stamped into Message records at finish,
        #: dropped on crash; must be empty when the run drains.
        self._msgs_in_flight: dict[int, list[tuple[int, int, float, float]]] = {}
        # Steal policy: True/"global" (any victim), "near" (victims within
        # ``steal_distance``, default: strictly closer than the machine
        # diameter, i.e. same module on the bullion), False/"off".
        if steal in (True, "global"):
            self.steal_enabled = True
            self.steal_distance = float("inf")
        elif steal == "near":
            self.steal_enabled = True
            self.steal_distance = (
                float(steal_distance)
                if steal_distance is not None
                else topology.max_distance() - 1e-9
            )
        elif steal in (False, "off"):
            self.steal_enabled = False
            self.steal_distance = 0.0
        else:
            raise SimulationError(f"unknown steal policy {steal!r}")
        self.seed = int(seed)
        if not 0.0 <= duration_jitter < 1.0:
            raise SimulationError("duration_jitter must be in [0, 1)")
        # Multiplicative per-task noise (OS noise, cache effects): without it
        # the fluid model is perfectly periodic and cyclic policies can lock
        # into accidental task->core alignments a real machine never keeps.
        self.duration_jitter = float(duration_jitter)
        self.rng = np.random.default_rng([self.seed, 0x51])
        self.max_iterations = (
            max_iterations
            if max_iterations is not None
            else 50 * max(1, program.n_tasks) + 1000
        )

        # Memory image: register all objects, apply explicit pre-bindings.
        # ``placement_cache=False`` forces every placement query to
        # recompute (the pre-cache behaviour; used by benchmarks and the
        # cache-equivalence tests).  Cached and uncached runs are
        # byte-identical — the cache is a pure memoisation layer.
        self.memory = MemoryManager(
            topology.n_nodes, page_size, cache=placement_cache
        )
        for obj in program.objects:
            self.memory.register(obj.key, obj.size_bytes)
            if obj.initial_node is not None:
                self.memory.bind(obj.key, obj.initial_node)
            elif obj.interleaved:
                self.memory.interleave(obj.key)

        # Queues.
        self.socket_queues: list[deque[Task]] = [
            deque() for _ in range(topology.n_sockets)
        ]
        self.core_queues: list[deque[Task]] = [deque() for _ in range(topology.n_cores)]
        self.idle_cores: list[list[int]] = [
            list(reversed(topology.cores_of_socket(s))) for s in topology.sockets()
        ]
        self.parked: list[Task] = []
        #: Parked tasks additionally indexed by the scheduler's ``park_key``
        #: (RGP pipelining: key = the window index a task waits on), so one
        #: window's temporary queue can be re-offered without touching the
        #: others.  Untouched when schedulers park without a key.
        self.parked_by_key: dict[int, list[Task]] = {}

        # Task state.
        n = program.n_tasks
        self.pending_deps = np.array(
            [program.tdg.in_degree(t) for t in range(n)], dtype=np.int64
        )
        self.done = np.zeros(n, dtype=bool)
        self.n_done = 0
        self.running: dict[int, _Running] = {}

        # Fluid engine (DESIGN.md §14): object = per-attempt scalar oracle,
        # flat = struct-of-arrays numpy twin.  Bit-identical by contract.
        engine_cls = ENGINES.get(engine)
        if engine_cls is None:
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of "
                + "/".join(sorted(ENGINES))
            )
        self.engine_name = engine
        self.engine = engine_cls(self)

        # Barrier epochs.
        self.n_epochs = program.n_epochs
        self.remaining_in_epoch = np.zeros(self.n_epochs, dtype=np.int64)
        for t in program.tasks:
            self.remaining_in_epoch[t.epoch] += 1
        self.active_epoch = 0
        self.held_by_epoch: list[list[Task]] = [[] for _ in range(self.n_epochs)]

        # Clock and timers.
        self.now = 0.0
        self._timers: list[_Timer] = []
        self._timer_seq = 0

        # Statistics.
        self.records: list[TaskRecord] = []
        self._start_traffic: dict[int, tuple[float, float]] = {}
        self.bytes_by_pair = np.zeros(
            (topology.n_sockets, topology.n_nodes), dtype=np.float64
        )
        self.busy_time = np.zeros(topology.n_sockets, dtype=np.float64)
        self.steals = 0
        self.parked_total = 0

        # Verification probe (repro.verify, or None).  Like instrumentation,
        # every call site is guarded by one ``is not None`` check and no
        # probe is installed by default, so unverified runs are untouched.
        self.probe = probe

        # Fault injection and recovery (all dormant when faults is None).
        if faults is not None and faults.is_empty():
            faults = None  # zero-overhead guarantee: empty plan == no plan
        if faults is not None:
            faults.validate_against(topology)
        self.faults = faults
        if max_retries < 0:
            raise SimulationError("max_retries must be >= 0")
        self.max_retries = int(max_retries)
        if retry_backoff < 0:
            raise SimulationError("retry_backoff must be >= 0")
        self.retry_backoff = float(retry_backoff)
        if wall_clock_limit is not None and wall_clock_limit <= 0:
            raise SimulationError("wall_clock_limit must be positive or None")
        self.wall_clock_limit = wall_clock_limit
        self._deadline: float | None = None
        self._starts_since_check = 0
        #: Cores currently failed; never idle, never dispatched to.
        self.quarantined: set[int] = set()
        self._core_speed: np.ndarray | None = None  # lazily != 1.0
        self._node_bw_factor: np.ndarray | None = None  # lazily != 1.0
        self.attempts = np.zeros(n, dtype=np.int64)  # failed attempts per task
        self.reexecutions = 0
        self.wasted_work = 0.0
        self.crashed_records: list[TaskRecord] = []
        self.cores_failed = 0
        self._injector = None

        # Observability (repro.observability.Instrumentation, or None).
        # Every emit site is guarded by one ``is not None`` check and no
        # emit path touches simulator state or an RNG, so results with and
        # without instrumentation are byte-identical (tested).
        self.obs = instrument
        if instrument is not None:
            self._m_traffic = instrument.registry.matrix(
                "numa.traffic", (topology.n_sockets, topology.n_nodes)
            )
            if n_boxes > 1:
                self._m_link = instrument.registry.matrix(
                    "net.traffic", (n_boxes, n_boxes)
                )

        self.scheduler = scheduler
        scheduler.attach(self, np.random.default_rng([self.seed, 0xA5]))
        if faults is not None:
            from ..faults.injector import FaultInjector

            configure = getattr(scheduler, "configure_faults", None)
            if configure is not None:
                configure(faults)
            self._injector = FaultInjector(
                faults, self, np.random.default_rng([self.seed, 0xFA17])
            )
            self._injector.arm()

        # Online invariant checking (DESIGN.md §11): opt-in per run via
        # ``verify=True`` or globally via ``REPRO_VERIFY=1``.  The checker
        # rides the same probe slot as a recorder, composed when both are
        # present, and additionally watches the memory manager.
        if _verify_env() if verify is None else bool(verify):
            from ..verify.invariants import InvariantChecker

            checker = InvariantChecker(self)
            if self.probe is None:
                self.probe = checker
            else:
                from ..verify.probe import CompositeProbe

                self.probe = CompositeProbe([self.probe, checker])
            self.memory.probe = checker

    # ------------------------------------------------------------------
    # Public API used by schedulers
    # ------------------------------------------------------------------
    def schedule_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (e.g. partition completion)."""
        if delay < 0:
            raise SimulationError("timer delay must be >= 0")
        self._timer_seq += 1
        heapq.heappush(
            self._timers, _Timer(self.now + delay, self._timer_seq, callback)
        )

    def reoffer(self, tasks: list[Task]) -> None:
        """Re-offer previously parked tasks to the scheduler.

        Idempotent: tasks not currently in the temporary queue are skipped,
        so a double re-offer (e.g. a partition timeout fires and the late
        partition-done delivery arrives afterwards) can never duplicate an
        execution.
        """
        parked_tids = {t.tid for t in self.parked}
        tasks = [t for t in tasks if t.tid in parked_tids]
        if not tasks:
            return
        if self.probe is not None:
            self.probe.on_reoffer([t.tid for t in tasks])
        if self.obs is not None:
            self.obs.emit(self.now, "sched.reoffer", n=len(tasks))
        leaving = {t.tid for t in tasks}
        self.parked = [t for t in self.parked if t.tid not in leaving]
        if self.parked_by_key:
            for key in list(self.parked_by_key):
                kept = [
                    t for t in self.parked_by_key[key]
                    if t.tid not in leaving
                ]
                if kept:
                    self.parked_by_key[key] = kept
                else:
                    del self.parked_by_key[key]
        for task in tasks:
            self._offer(task)

    def reoffer_key(self, key: int) -> None:
        """Re-offer the parked tasks waiting under ``key`` (and only those).

        RGP pipelining re-offers window *k*'s temporary queue when window
        *k*'s partition is delivered (or declared lost) without disturbing
        tasks parked for other windows.  Idempotent like :meth:`reoffer`.
        """
        self.reoffer(list(self.parked_by_key.get(key, ())))

    @property
    def n_sockets(self) -> int:
        return self.topology.n_sockets

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.injector, usable directly too)
    # ------------------------------------------------------------------
    def alive_cores_of_socket(self, socket: int) -> list[int]:
        """Cores of ``socket`` not currently quarantined."""
        return [
            c for c in self.topology.cores_of_socket(socket)
            if c not in self.quarantined
        ]

    def socket_alive(self, socket: int) -> bool:
        """True while at least one core of ``socket`` survives."""
        return bool(self.alive_cores_of_socket(socket))

    def _socket_load(self, socket: int) -> int:
        """Queued + executing work on ``socket`` (remap tie-breaker)."""
        busy = len(self.alive_cores_of_socket(socket)) - len(
            self.idle_cores[socket]
        )
        queued = len(self.socket_queues[socket]) + sum(
            len(self.core_queues[c])
            for c in self.topology.cores_of_socket(socket)
        )
        return busy + queued

    def nearest_alive_socket(self, socket: int) -> int:
        """Closest surviving socket by SLIT distance, spreading ties by load.

        All minimal-distance survivors are equivalent destinations as far
        as the machine is concerned, so among them the *least loaded* one
        (queued + executing work, ties by id) wins.  Without the load
        tie-break, every placement orphaned by a dead socket — or, on a
        cluster, a whole lost box — funnels onto the single lowest-id
        survivor while its equidistant siblings sit idle.
        """
        best = -1
        best_dist = 0.0
        row = self.topology.distance[socket]
        for cand in self.topology.sockets_by_distance(socket):
            if best >= 0 and row[cand] > best_dist:
                break  # distance-ordered: no later candidate can tie
            if not self.socket_alive(cand):
                continue
            if best < 0:
                best, best_dist = cand, float(row[cand])
            elif self._socket_load(cand) < self._socket_load(best):
                best = cand
        if best >= 0:
            return best
        raise FaultError(
            f"no surviving cores on any socket at t={self.now:.4g} "
            f"({self.n_done}/{self.program.n_tasks} tasks done)"
        )

    def fail_core(self, core: int, *, duration: float | None = None) -> None:
        """Quarantine ``core``; crash its running task, re-offer its queue.

        ``duration=None`` is a permanent failure; otherwise the core
        returns via :meth:`restore_core` after ``duration`` time units.
        """
        if not 0 <= core < self.topology.n_cores:
            raise FaultError(f"core {core} out of range")
        if core in self.quarantined:
            return
        socket = self.topology.socket_of_core(core)
        self.quarantined.add(core)
        self.cores_failed += 1
        if self.probe is not None:
            self.probe.on_fault("fail_core", core=core, duration=duration)
        if self.obs is not None:
            self.obs.emit(
                self.now, "fault.core_failed",
                core=core, socket=socket, transient=duration is not None,
            )
            self.obs.registry.counter("faults.cores_failed").inc()
        if core in self.idle_cores[socket]:
            self.idle_cores[socket].remove(core)
        # Let the scheduler remap its own state (e.g. RGP window
        # assignments) before any orphaned work is re-offered through it.
        notify = getattr(self.scheduler, "on_core_failed", None)
        if notify is not None:
            notify(core)
        victim = next(
            (rt for rt in self.running.values() if rt.core == core), None
        )
        if victim is not None:
            self._crash_running(victim, "core-failure")
        orphans = list(self.core_queues[core])
        self.core_queues[core].clear()
        if not self.socket_alive(socket):
            orphans.extend(self.socket_queues[socket])
            self.socket_queues[socket].clear()
        for task in orphans:
            self._offer(task)
        if duration is not None:
            self.schedule_timer(duration, lambda: self.restore_core(core))

    def restore_core(self, core: int) -> None:
        """Bring a transiently failed core back into service."""
        if core not in self.quarantined:
            return
        if self.probe is not None:
            self.probe.on_fault("restore_core", core=core)
        self.quarantined.discard(core)
        self.idle_cores[self.topology.socket_of_core(core)].append(core)
        if self.obs is not None:
            self.obs.emit(
                self.now, "fault.core_restored",
                core=core, socket=self.topology.socket_of_core(core),
            )
        notify = getattr(self.scheduler, "on_core_restored", None)
        if notify is not None:
            notify(core)

    def set_core_speed(self, core: int, speed: float) -> None:
        """Set a core's compute rate (1.0 = nominal, 0.25 = 4× straggler)."""
        if speed <= 0:
            raise FaultError(f"core speed must be positive, got {speed}")
        if not 0 <= core < self.topology.n_cores:
            raise FaultError(f"core {core} out of range")
        if self.probe is not None:
            self.probe.on_fault("set_core_speed", core=core, speed=speed)
        if self._core_speed is None:
            if speed == 1.0:
                return
            self._core_speed = np.ones(self.topology.n_cores)
        # Close the rate epoch under the old speeds before mutating.
        self.engine.on_rates_changed()
        self._core_speed[core] = speed

    def set_node_bandwidth_factor(self, node: int, factor: float) -> None:
        """Scale a bandwidth resource's served rate (1.0 = nominal).

        ``node`` addresses any solver resource: a memory node, or (on
        clusters) a NIC at ``n_sockets + box`` — degrading a NIC models a
        congested or flapping network link.
        """
        if not 0 < factor <= 1.0:
            raise FaultError(f"bandwidth factor must be in (0, 1], got {factor}")
        if not 0 <= node < self.n_resources:
            raise FaultError(f"bandwidth resource {node} out of range")
        if self.probe is not None:
            self.probe.on_fault("set_node_bw", node=node, factor=factor)
        if self._node_bw_factor is None:
            if factor == 1.0:
                return
            self._node_bw_factor = np.ones(self.n_resources)
        # Close the rate epoch under the old bandwidths before mutating.
        self.engine.on_rates_changed()
        self._node_bw_factor[node] = factor

    def crash_if_running(self, token: tuple[int, float]) -> None:
        """Crash attempt ``token = (tid, start_time)`` if still in flight.

        Used by timer-scheduled task crashes: if the attempt already
        finished (or was crashed by a core failure) the token no longer
        matches and the crash fizzles.
        """
        tid, start = token
        rt = self.running.get(tid)
        if rt is None or rt.start != start or self.engine.attempt_done(rt):
            return
        self._crash_running(rt, "crash")

    def _crash_running(self, rt: _Running, reason: str) -> None:
        """Kill a running attempt and queue its re-execution.

        Dependence-safe by construction: the attempt never finished, so no
        successor was released and no epoch advanced.  The task's already
        -bound pages stay bound (a real first-touch heap survives a worker
        crash), so the retry re-reads them from wherever they live.
        """
        task = rt.task
        self.engine.remove(rt)
        del self.running[task.tid]
        if rt.core not in self.quarantined:
            self.idle_cores[rt.socket].append(rt.core)
        wasted = self.now - rt.start
        self.wasted_work += wasted
        self.busy_time[rt.socket] += wasted
        local_bytes, remote_bytes, net_bytes = self._start_traffic.pop(
            task.tid, (0.0, 0.0, 0.0)
        )
        # In-flight transfers die with the attempt (the retry resends).
        dropped = self._msgs_in_flight.pop(task.tid, None)
        if dropped is not None:
            self.messages_dropped += len(dropped)
        self.crashed_records.append(
            TaskRecord(
                tid=task.tid,
                name=task.name,
                socket=rt.socket,
                core=rt.core,
                start=rt.start,
                finish=self.now,
                local_bytes=local_bytes,
                remote_bytes=remote_bytes,
                attempt=int(self.attempts[task.tid]),
                outcome=reason,
                net_bytes=net_bytes,
            )
        )
        self.attempts[task.tid] += 1
        self.reexecutions += 1
        if self.probe is not None:
            self.probe.on_crash(rt, reason)
        if self.obs is not None:
            self.obs.emit(
                self.now, "task.crash",
                tid=task.tid, name=task.name, reason=reason,
                attempt=int(self.attempts[task.tid]) - 1,
            )
            self.obs.registry.counter("tasks.crashed").inc()
            self.obs.registry.counter("work.wasted").inc(wasted)
        n_failed = int(self.attempts[task.tid])
        if n_failed > self.max_retries:
            raise FaultError(
                f"task {task.tid} ({task.name}) crashed {n_failed} times "
                f"(last cause: {reason}) — retry limit {self.max_retries} "
                f"exhausted at t={self.now:.4g}"
            )
        delay = (
            self.retry_backoff * (2.0 ** (n_failed - 1))
            if self.retry_backoff > 0
            else 0.0
        )
        if delay > 0:
            self.schedule_timer(delay, lambda: self._retry_offer(task))
        else:
            self._offer(task)

    def _retry_offer(self, task: Task) -> None:
        """Offer a crashed task again after its backoff delay elapsed."""
        if self.probe is not None:
            self.probe.on_retry_offer(task.tid)
        self._offer(task)

    def _remap_placement(self, task: Task, decision: Placement) -> Placement:
        """Redirect placements aimed at quarantined cores / dead sockets."""
        if decision.core is not None and decision.core in self.quarantined:
            socket = self.topology.socket_of_core(decision.core)
            if self.socket_alive(socket):
                return Placement(socket=socket)
            return Placement(socket=self.nearest_alive_socket(socket))
        if decision.socket is not None and not self.socket_alive(
            decision.socket
        ):
            return Placement(socket=self.nearest_alive_socket(decision.socket))
        return decision

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return the result."""
        self.scheduler.on_program_start()
        self._advance_empty_epochs()
        for task in self.program.tasks:
            if self.pending_deps[task.tid] == 0:
                self._on_deps_satisfied(task)

        iterations = 0
        n = self.program.n_tasks
        deadline = (
            time.monotonic() + self.wall_clock_limit
            if self.wall_clock_limit is not None
            else None
        )
        # Per-batch budget enforcement: ``_start`` re-checks this deadline
        # every few starts so one huge dispatch batch cannot overshoot the
        # wall-clock budget arbitrarily (the loop-top check below only runs
        # once per event).
        self._deadline = deadline
        self._starts_since_check = 0
        engine = self.engine
        try:
            self._dispatch()
            while self.n_done < n:
                iterations += 1
                if iterations > self.max_iterations:
                    raise SimulationError(
                        f"no convergence after {iterations} iterations "
                        f"({self.n_done}/{n} tasks done) — simulator bug? "
                        + self._stall_detail()
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise SimulationError(
                        f"wall-clock limit of {self.wall_clock_limit:g}s "
                        f"exceeded at t={self.now:.4g} "
                        f"({self.n_done}/{n} tasks done)"
                    )
                engine.refresh()
                next_completion = engine.next_completion()
                next_timer = self._timers[0].time if self._timers else _INF
                t_next = min(next_completion, next_timer)
                if t_next == _INF:
                    self._raise_deadlock()
                if t_next > self.now:
                    self.now = t_next
                    # Mid-epoch stream departures free controller share:
                    # rebase to byte state if the clock crossed one.
                    engine.advance()

                while self._timers and self._timers[0].time <= self.now + _EPS:
                    timer = heapq.heappop(self._timers)
                    if self.probe is not None:
                        # Even a no-op pop is replay-relevant: epoch
                        # boundaries depend on where production stopped, so
                        # the oracle must stop at the same instants.
                        self.probe.on_timer(timer.time)
                    timer.callback()

                for rt in engine.completed():
                    self._finish(rt)
                self._dispatch()
                if self.probe is not None:
                    self.probe.on_loop(self)
        except ReproError:
            self._abort_run()
            raise

        result = SimulationResult(
            program_name=self.program.name,
            scheduler_name=self.scheduler.name,
            machine_name=self.topology.name,
            makespan=self.now,
            records=self.records,
            bytes_by_pair=self.bytes_by_pair,
            busy_time_per_socket=self.busy_time,
            steals=self.steals,
            parked_tasks=self.parked_total,
            touch_count=self.memory.touch_count,
            bytes_on_node=self.memory.bytes_on_node.copy(),
            seed=self.seed,
            crashed_records=self.crashed_records,
            reexecutions=self.reexecutions,
            wasted_work=self.wasted_work,
            cores_failed=self.cores_failed,
            faults_injected=(
                self._injector.total_injected if self._injector else 0
            ),
            bytes_by_link=self.bytes_by_link,
            messages=self.messages,
            messages_dropped=self.messages_dropped,
        )
        if self.obs is not None:
            self._finalize_instrumentation(result)
        if self.probe is not None:
            self.probe.on_run_end(self, result)
        return result

    def _abort_run(self) -> None:
        """Release run state before an error propagates out of :meth:`run`.

        A scheduler callback raising mid-run (e.g. RGP's
        ``on_timeout="raise"`` partition deadline) must not leave cores
        marked busy or half-drained attempts in :attr:`running`: callers
        that catch the error and inspect the simulator (harnesses, tests,
        the retry loop in ``run_policy``) need a consistent machine state.
        Aborted attempts are dropped without a completion record — the run
        produced no :class:`SimulationResult`, so there is no schedule for
        them to corrupt.
        """
        self.engine.clear()
        for rt in self.running.values():
            if rt.core not in self.quarantined:
                self.idle_cores[rt.socket].append(rt.core)
            self._start_traffic.pop(rt.task.tid, None)
            self._msgs_in_flight.pop(rt.task.tid, None)
        self.running.clear()
        if self.probe is not None:
            self.probe.on_abort(self)

    def _finalize_instrumentation(self, result: SimulationResult) -> None:
        """Close out the run's registry and attach the streams to the
        result so exporters can consume them without the simulator."""
        reg = self.obs.registry
        for s in self.topology.sockets():
            reg.gauge(f"socket.busy.s{s}").set(
                self.now, float(self.busy_time[s])
            )
            capacity = self.now * self.topology.cores_per_socket
            reg.gauge(f"socket.idle.s{s}").set(
                self.now, max(0.0, capacity - float(self.busy_time[s]))
            )
        reg.gauge("makespan").set(self.now, self.now)
        result.events = self.obs.events
        result.metrics = reg.snapshot()

    # ------------------------------------------------------------------
    # Readiness and offering
    # ------------------------------------------------------------------
    def _on_deps_satisfied(self, task: Task) -> None:
        if task.epoch > self.active_epoch:
            self.held_by_epoch[task.epoch].append(task)
        else:
            self._offer(task)

    def _offer(self, task: Task) -> None:
        decision = self.scheduler.choose(task)
        if not isinstance(decision, Placement):
            raise SimulationError(
                f"scheduler {self.scheduler.name!r} returned {decision!r}, "
                "expected a Placement"
            )
        if self.quarantined and not decision.park:
            decision = self._remap_placement(task, decision)
        if self.probe is not None:
            self.probe.on_offer(task, decision)
        if decision.park:
            self.parked.append(task)
            if decision.park_key is not None:
                self.parked_by_key.setdefault(
                    decision.park_key, []
                ).append(task)
            self.parked_total += 1
            if self.obs is not None:
                self.obs.emit(
                    self.now, "sched.place", tid=task.tid, target="park"
                )
                self.obs.registry.counter("place.park").inc()
        elif decision.core is not None:
            if not 0 <= decision.core < self.topology.n_cores:
                raise SimulationError(f"placement core {decision.core} out of range")
            self.core_queues[decision.core].append(task)
            if self.obs is not None:
                self.obs.emit(
                    self.now, "sched.place", tid=task.tid, target="core",
                    core=decision.core,
                    socket=self.topology.socket_of_core(decision.core),
                )
                self.obs.registry.counter("place.core").inc()
        else:
            if not 0 <= decision.socket < self.n_sockets:
                raise SimulationError(
                    f"placement socket {decision.socket} out of range"
                )
            self.socket_queues[decision.socket].append(task)
            if self.obs is not None:
                self.obs.emit(
                    self.now, "sched.place", tid=task.tid, target="socket",
                    socket=decision.socket,
                )
                self.obs.registry.counter("place.socket").inc()
                self.obs.registry.gauge(
                    f"queue.depth.s{decision.socket}"
                ).set(self.now, len(self.socket_queues[decision.socket]))

    def _advance_empty_epochs(self) -> None:
        while (
            self.active_epoch + 1 < self.n_epochs
            and self.remaining_in_epoch[self.active_epoch] == 0
        ):
            self.active_epoch += 1
            if self.obs is not None:
                self.obs.emit(
                    self.now, "epoch.advance", epoch=self.active_epoch
                )
            for task in self.held_by_epoch[self.active_epoch]:
                self._offer(task)
            self.held_by_epoch[self.active_epoch] = []

    # ------------------------------------------------------------------
    # Dispatch: idle cores pull work (plus stealing)
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Local starts: core queues first (explicit core placements),
            # then the socket queue.
            for s in range(self.n_sockets):
                idle = self.idle_cores[s]
                if not idle:
                    continue
                # Cores with private work.
                for core in list(idle):
                    if self.core_queues[core]:
                        idle.remove(core)
                        task = self.core_queues[core].popleft()
                        self._start(task, core, s)
                        progress = True
                while self.idle_cores[s] and self.socket_queues[s]:
                    core = self.idle_cores[s].pop()
                    task = self.socket_queues[s].popleft()
                    self._start(task, core, s)
                    progress = True
            if self.steal_enabled and self._try_steal():
                progress = True
        if self.obs is not None:
            reg = self.obs.registry
            for s in range(self.n_sockets):
                reg.gauge(f"queue.depth.s{s}").set(
                    self.now, len(self.socket_queues[s])
                )

    def _try_steal(self) -> bool:
        """One round of distance-aware stealing; True if anything moved."""
        stole = False
        for s in range(self.n_sockets):
            if not self.idle_cores[s]:
                continue
            for victim in self.topology.sockets_by_distance(s):
                if victim == s:
                    continue
                if self.topology.dist(s, victim) > self.steal_distance:
                    break  # victims are distance-ordered; all further ones fail
                task = self._pop_victim_work(victim)
                if task is None:
                    continue
                core = self.idle_cores[s].pop()
                self.steals += 1
                if self.obs is not None:
                    self.obs.emit(
                        self.now, "sched.steal", tid=task.tid, thief=s,
                        victim=victim,
                        distance=float(self.topology.dist(s, victim)),
                    )
                    self.obs.registry.counter("steals").inc()
                self._start(task, core, s)
                stole = True
                break
        return stole

    def _pop_victim_work(self, victim: int) -> Task | None:
        if self.socket_queues[victim]:
            return self.socket_queues[victim].popleft()
        for core in self.topology.cores_of_socket(victim):
            if self.core_queues[core]:
                return self.core_queues[core].popleft()
        return None

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def _cluster_streams(
        self, task: Task, socket: int, streams: dict[int, float]
    ) -> tuple[dict[int, float], float]:
        """Re-key cross-box traffic onto the data-source boxes' NICs.

        On-box streams keep their memory-node key; bytes living on another
        box become one aggregated stream per source box, keyed by that
        box's NIC resource — the explicit message.  Many readers pulling
        from one box then contend on its NIC through the regular
        progressive-filling solver, which is the network-contention model.
        Returns the resource-keyed streams and the total network bytes.
        """
        box_of = self._box_of_socket
        dst_box = box_of[socket]
        out: dict[int, float] = {}
        net: dict[int, float] | None = None
        for node, b in streams.items():
            src_box = box_of[node]
            if src_box == dst_box:
                out[node] = b
            else:
                nic = self._nic_of_box[src_box]
                if nic in out:
                    out[nic] += b
                else:
                    out[nic] = b
                if net is None:
                    net = {}
                net[src_box] = net.get(src_box, 0.0) + b
        net_bytes = 0.0
        if net:
            msgs = self._msgs_in_flight.setdefault(task.tid, [])
            for src_box, b in net.items():
                net_bytes += b
                self.bytes_by_link[src_box, dst_box] += b
                msgs.append((src_box, dst_box, b, self.now))
                if self.obs is not None:
                    self._m_link[src_box, dst_box] += b
                    self.obs.emit(
                        self.now, "msg.send",
                        tid=task.tid, src_box=src_box, dst_box=dst_box,
                        nbytes=b,
                    )
                    self.obs.registry.counter("net.messages").inc()
                    self.obs.registry.counter("net.bytes").inc(b)
        return out, net_bytes

    def _start(self, task: Task, core: int, socket: int) -> None:
        node = socket  # one memory node per socket
        # Deferred allocation: bind output pages where the producer runs;
        # first-touch-on-read binds never-written inputs too (OS behaviour).
        for access in task.accesses:
            self.memory.touch(access.obj.key, node, access.offset, access.length)
        streams = traffic_streams(task, self.memory)

        compute = task.work
        local_bytes = remote_bytes = 0.0
        has_latency = self.interconnect.latency_cost_per_access != 0.0
        pair_row = self.bytes_by_pair[socket]
        for n, b in streams.items():
            if has_latency:
                compute += self.interconnect.access_latency(socket, n)
            pair_row[n] += b
            if n == socket:
                local_bytes += b
            else:
                remote_bytes += b

        if self.obs is not None:
            reg = self.obs.registry
            for n, b in streams.items():
                self._m_traffic[socket, n] += b
            c_local = reg.counter("bytes.local")
            c_remote = reg.counter("bytes.remote")
            c_local.inc(local_bytes)
            c_remote.inc(remote_bytes)
            reg.gauge("bytes.local").set(self.now, c_local.value)
            reg.gauge("bytes.remote").set(self.now, c_remote.value)
            self.obs.emit(
                self.now, "task.start",
                tid=task.tid, name=task.name, core=core, socket=socket,
                local_bytes=local_bytes, remote_bytes=remote_bytes,
                attempt=int(self.attempts[task.tid]),
            )

        net_bytes = 0.0
        if self._box_of_socket is not None:
            streams, net_bytes = self._cluster_streams(task, socket, streams)
        self._start_traffic[task.tid] = (local_bytes, remote_bytes, net_bytes)

        factor = 1.0
        if self.duration_jitter > 0.0:
            factor = 1.0 + self.duration_jitter * float(self.rng.uniform(-1.0, 1.0))
            compute *= factor
            streams = {n: b * factor for n, b in streams.items()}

        rt = _Running(
            task=task,
            core=core,
            socket=socket,
            start=self.now,
            compute_remaining=compute,
            streams=streams,
        )
        # Engine admission BEFORE the running-dict insert: ``add`` closes
        # the current rate epoch, and a materialize over ``running`` must
        # only ever see attempts that existed at the last refresh.
        self.engine.add(rt)
        self.running[task.tid] = rt
        if self._deadline is not None:
            self._starts_since_check += 1
            if self._starts_since_check >= 128:
                self._starts_since_check = 0
                if time.monotonic() > self._deadline:
                    raise SimulationError(
                        f"wall-clock limit of {self.wall_clock_limit:g}s "
                        f"exceeded mid-dispatch at t={self.now:.4g} "
                        f"({self.n_done}/{self.program.n_tasks} tasks done)"
                    )
        if self.probe is not None:
            self.probe.on_start(rt, factor, int(self.attempts[task.tid]))
        if self.obs is not None:
            self.obs.registry.gauge("cores.busy").set(
                self.now, len(self.running)
            )
        if self._injector is not None:
            self._injector.on_task_start(rt)

    def _finish(self, rt: _Running) -> None:
        task = rt.task
        self.engine.remove(rt)
        del self.running[task.tid]
        self.idle_cores[rt.socket].append(rt.core)
        self.done[task.tid] = True
        self.n_done += 1
        self.busy_time[rt.socket] += self.now - rt.start
        local_bytes, remote_bytes, net_bytes = self._start_traffic.pop(
            task.tid, (0.0, 0.0, 0.0)
        )
        self.records.append(
            TaskRecord(
                tid=task.tid,
                name=task.name,
                socket=rt.socket,
                core=rt.core,
                start=rt.start,
                finish=self.now,
                local_bytes=local_bytes,
                remote_bytes=remote_bytes,
                attempt=int(self.attempts[task.tid]),
                net_bytes=net_bytes,
            )
        )
        in_flight = self._msgs_in_flight.pop(task.tid, None)
        if in_flight is not None:
            for src_box, dst_box, nbytes, send in in_flight:
                self.messages.append(
                    Message(
                        tid=task.tid, src_box=src_box, dst_box=dst_box,
                        nbytes=nbytes, send=send, recv=self.now,
                    )
                )
                if self.obs is not None:
                    self.obs.emit(
                        self.now, "msg.recv",
                        tid=task.tid, src_box=src_box, dst_box=dst_box,
                        nbytes=nbytes, duration=self.now - send,
                    )
        if self.probe is not None:
            self.probe.on_finish(rt)
        if self.obs is not None:
            reg = self.obs.registry
            duration = self.now - rt.start
            reg.counter("tasks.completed").inc()
            reg.histogram("task.duration").observe(duration)
            total = local_bytes + remote_bytes
            if total > 0:
                from ..observability.metrics import FRACTION_BOUNDS

                reg.histogram(
                    "task.remote_fraction", FRACTION_BOUNDS
                ).observe(remote_bytes / total)
            reg.gauge("cores.busy").set(self.now, len(self.running))
            self.obs.emit(
                self.now, "task.finish",
                tid=task.tid, name=task.name, core=rt.core,
                socket=rt.socket, duration=duration,
            )
        self.scheduler.on_task_finished(task)

        self.remaining_in_epoch[task.epoch] -= 1
        for succ in self.program.tdg.successors(task.tid):
            self.pending_deps[succ] -= 1
            if self.pending_deps[succ] == 0:
                self._on_deps_satisfied(self.program.tasks[succ])
        # Epoch advance (may cascade through empty epochs).
        while (
            self.active_epoch + 1 < self.n_epochs
            and self.remaining_in_epoch[self.active_epoch] == 0
        ):
            self.active_epoch += 1
            if self.obs is not None:
                self.obs.emit(
                    self.now, "epoch.advance", epoch=self.active_epoch
                )
            released = self.held_by_epoch[self.active_epoch]
            self.held_by_epoch[self.active_epoch] = []
            for held in released:
                self._offer(held)

    # ------------------------------------------------------------------
    # Fluid-flow mechanics (the drain/predict math lives in .engines)
    # ------------------------------------------------------------------
    def _stream_rates(self, keys: list[StreamKey]) -> np.ndarray:
        """Interconnect rates, degraded per-node when a fault plan says so."""
        rates = self.interconnect.stream_rates(keys)
        if self._node_bw_factor is not None and len(keys):
            nodes = np.fromiter(
                (k.node for k in keys), dtype=np.int64, count=len(keys)
            )
            rates = rates * self._node_bw_factor[nodes]
        return rates

    def _compute_speed(self, core: int) -> float:
        """Compute rate of ``core`` (1.0 unless a straggler fault is live)."""
        if self._core_speed is None:
            return 1.0
        return float(self._core_speed[core])

    # ------------------------------------------------------------------
    def _stuck_tasks(self, limit: int = 8) -> str:
        """Name the tasks that are neither done nor running (diagnostics)."""
        stuck = [
            t for t in self.program.tasks
            if not self.done[t.tid] and t.tid not in self.running
        ]
        names = ", ".join(f"#{t.tid}({t.name})" for t in stuck[:limit])
        if len(stuck) > limit:
            names += f", … {len(stuck) - limit} more"
        return names or "(none)"

    def _stall_detail(self) -> str:
        """Classify a stall: crashed machine vs busy survivors vs genuine
        dependence/scheduler cycle (DESIGN.md §7)."""
        queued = sum(len(q) for q in self.socket_queues) + sum(
            len(q) for q in self.core_queues
        )
        alive = self.topology.n_cores - len(self.quarantined)
        state = (
            f"{self.n_done}/{self.program.n_tasks} done, "
            f"{len(self.running)} running, {queued} queued, "
            f"{len(self.parked)} parked, active_epoch={self.active_epoch}"
        )
        if alive == 0:
            kind = "every core is quarantined — the fault plan killed the machine"
        elif self.running:
            kind = (
                f"not a dependence cycle: all {alive} surviving cores are "
                "busy and work is still flowing"
            )
        else:
            kind = (
                "genuine stall: no task is running and no timer is pending. "
                "Parked tasks with no pending timer usually mean a scheduler "
                "never re-offered its temporary queue"
            )
        return f"{state}. {kind}. Stuck tasks: {self._stuck_tasks()}"

    def _raise_deadlock(self) -> None:
        if self.quarantined and not any(
            self.socket_alive(s) for s in self.topology.sockets()
        ):
            raise FaultError(
                f"no surviving cores at t={self.now:.4g}: "
                + self._stall_detail()
            )
        raise SimulationError(
            f"deadlock at t={self.now:.4g}: " + self._stall_detail()
        )


def simulate(
    program: TaskProgram,
    topology: NumaTopology,
    scheduler,
    **kwargs,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(program, topology, scheduler, **kwargs).run()
