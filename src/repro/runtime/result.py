"""Simulation outcome: per-task records and aggregate NUMA statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TaskRecord:
    """Execution record of one task attempt.

    ``attempt`` counts earlier failed attempts of the same task (0 = first
    try); ``outcome`` is ``"ok"`` for the completing attempt and a short
    reason (``"crash"``, ``"core-failure"``) for attempts killed by an
    injected fault — those land in
    :attr:`SimulationResult.crashed_records`, never in ``records``.
    """

    tid: int
    name: str
    socket: int
    core: int
    start: float
    finish: float
    local_bytes: float = 0.0
    remote_bytes: float = 0.0
    attempt: int = 0
    outcome: str = "ok"
    #: Bytes that crossed the network (cluster runs; a subset of
    #: ``remote_bytes``, zero on a single box).
    net_bytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def remote_fraction(self) -> float:
        total = self.local_bytes + self.remote_bytes
        return self.remote_bytes / total if total > 0 else 0.0


@dataclass(frozen=True)
class Message:
    """One explicit inter-box message of a cluster run.

    A task reading bytes that live on another box *receives* them over the
    network: the simulator re-keys that traffic onto the source box's NIC
    resource, so ``send`` marks when the transfer started contending on
    the wire (the reader's start) and ``recv`` when the last byte landed
    (the reader's finish — the fluid stream drains over the whole
    attempt).  Crashed attempts drop their in-flight messages; only
    completed transfers appear in :attr:`SimulationResult.messages`.
    """

    tid: int
    src_box: int
    dst_box: int
    nbytes: float
    send: float
    recv: float

    @property
    def duration(self) -> float:
        return self.recv - self.send


@dataclass(eq=False)
class SimulationResult:
    """Everything a run produced.

    ``bytes_by_pair[s, n]`` is the memory traffic issued by tasks running
    on socket ``s`` against node ``n`` — the matrix from which locality
    metrics derive.
    """

    program_name: str
    scheduler_name: str
    machine_name: str
    makespan: float
    records: list[TaskRecord]
    bytes_by_pair: np.ndarray
    busy_time_per_socket: np.ndarray
    steals: int = 0
    parked_tasks: int = 0
    touch_count: int = 0
    bytes_on_node: np.ndarray = field(default_factory=lambda: np.zeros(0))
    seed: int = 0
    # Resilience accounting (all zero/empty on fault-free runs).
    crashed_records: list[TaskRecord] = field(default_factory=list)
    reexecutions: int = 0
    wasted_work: float = 0.0
    cores_failed: int = 0
    faults_injected: int = 0
    # Cluster runs only (both stay empty/None on a single box):
    # ``bytes_by_link[src_box, dst_box]`` is the network traffic matrix,
    # ``messages`` the completed inter-box transfers in receive order.
    bytes_by_link: np.ndarray | None = None
    messages: list[Message] = field(default_factory=list)
    messages_dropped: int = 0
    # Observability (populated only on instrumented runs): the retained
    # event stream and the metrics-registry snapshot (see
    # :mod:`repro.observability`); exporters consume these.
    events: list = field(default_factory=list)
    metrics: dict | None = None

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.records)

    @property
    def total_traffic(self) -> float:
        return float(self.bytes_by_pair.sum())

    @property
    def local_bytes(self) -> float:
        return float(np.trace(self.bytes_by_pair))

    @property
    def remote_bytes(self) -> float:
        return self.total_traffic - self.local_bytes

    @property
    def remote_fraction(self) -> float:
        """Fraction of traffic served from a remote node (0 = all local)."""
        total = self.total_traffic
        return self.remote_bytes / total if total > 0 else 0.0

    @property
    def net_bytes(self) -> float:
        """Total bytes moved across the network (0 on a single box)."""
        if self.bytes_by_link is None:
            return 0.0
        return float(self.bytes_by_link.sum())

    @property
    def net_fraction(self) -> float:
        """Fraction of all traffic that crossed the network."""
        total = self.total_traffic
        return self.net_bytes / total if total > 0 else 0.0

    def mean_access_distance(self, distance: np.ndarray) -> float:
        """Traffic-weighted mean SLIT distance of accesses."""
        total = self.total_traffic
        if total == 0:
            return 0.0
        return float((self.bytes_by_pair * np.asarray(distance)).sum() / total)

    def completion_order(self) -> list[int]:
        """Task ids sorted by finish time (ties by id) — a legal execution
        order the sequential executor can replay."""
        return [r.tid for r in sorted(self.records, key=lambda r: (r.finish, r.tid))]

    def tasks_per_socket(self) -> np.ndarray:
        n = len(self.busy_time_per_socket)
        counts = np.zeros(n, dtype=np.int64)
        for r in self.records:
            counts[r.socket] += 1
        return counts

    def load_imbalance(self) -> float:
        """max/mean of per-socket busy time (1.0 = perfectly balanced)."""
        busy = self.busy_time_per_socket
        mean = busy.mean()
        return float(busy.max() / mean) if mean > 0 else 1.0

    def summary(self) -> str:
        text = (
            f"{self.program_name} / {self.scheduler_name} @ {self.machine_name}: "
            f"makespan={self.makespan:.4g} remote={self.remote_fraction:.1%} "
            f"imbalance={self.load_imbalance():.2f} steals={self.steals}"
        )
        if self.bytes_by_link is not None:
            text += (
                f" net={self.net_fraction:.1%} msgs={len(self.messages)}"
            )
        if self.reexecutions or self.cores_failed:
            text += (
                f" reexec={self.reexecutions} wasted={self.wasted_work:.4g}"
                f" cores_failed={self.cores_failed}"
            )
        return text
