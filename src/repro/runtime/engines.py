"""Fluid-flow engines: the simulator's drain/predict mechanics, twice.

The :class:`~repro.runtime.simulator.Simulator` owns every *decision* of a
run — offering, dispatch, stealing, timers, faults, epochs, RNG draws —
while the question "when does which running attempt finish?" is answered by
a pluggable **fluid engine**.  Two implementations share one contract
(DESIGN.md §14):

* :class:`ObjectEngine` — one :class:`_Running` object per attempt with
  per-stream dicts; plain Python scalar arithmetic.  The readable twin and
  the oracle of record.
* :class:`FlatEngine` — struct-of-arrays numpy state indexed by *core
  slot* (core exclusivity bounds running attempts by ``n_cores``): per-slot
  compute remaining/deadline vectors and per-(slot, node) stream byte/rate/
  deadline grids.  Collecting the active streams with ``nonzero`` yields
  the row-major ``(indptr, node, bytes)`` CSR view the interconnect
  consumes; the three inner operations — stream drain, next-completion
  prediction, ready-release bookkeeping on finish — are O(1) numpy calls
  per event batch instead of per-object dict traffic.

Both engines implement the same **rate-epoch deadline drain**.  Stream
rates only change when the active set changes (start, finish, crash, fault
knob), so between such changes — one *rate epoch* — every completion
instant is known in closed form.  At ``refresh`` each stream gets an
absolute deadline ``d = now + bytes / rate`` (and compute ``cd = now +
remaining / speed``); the epoch then persists through any number of no-op
timer stops with **zero drain arithmetic**.  State is *materialized* back
into byte space (``bytes = rate * (d - now)``) only when the set actually
changes.  This replaces the old incremental ``bytes -= rate * dt``
subtraction whose per-stop round-off the ``_EPS_BYTES`` tolerance papered
over: a task completing at its own deadline now materializes to exactly
0.0 remaining bytes and 0.0 compute.

Bit-identity contract: every float comparison and arithmetic expression
here exists in both engines in the same order per value (IEEE doubles make
elementwise numpy ops identical to the scalar expressions), and the
water-fill rate function is permutation/label-invariant in its stream
order, so ``Simulator(engine="flat")`` and ``engine="object"`` produce
byte-identical runs.  The replay oracle
(:mod:`repro.verify.oracle`) mirrors the same epoch logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..machine.interconnect import StreamKey
from ..machine.memory import _check_cache_env
from .task import Task

#: Time tolerance (timer coalescing, compute drain).
_EPS = 1e-9

#: Byte tolerance: streams hold up to ~1e8 bytes whose deadlines come from
#: float time arithmetic, so residues of ~1e-7 bytes are round-off, not
#: pending work.  A hundredth of a byte is far below model resolution.
_EPS_BYTES = 1e-2

_INF = float("inf")


@dataclass(eq=False)
class _Running:
    """One in-flight attempt.  ``compute_remaining``/``streams`` are live
    under the object engine; the flat engine keeps the truth in its arrays
    and writes the final materialized values back on removal so probes and
    the fault injector observe identical state under either engine."""

    task: Task
    core: int
    socket: int
    start: float
    compute_remaining: float
    streams: dict[int, float]  # node -> remaining bytes
    # Rate-epoch state (object engine; see module docstring).
    n_active: int = 0
    s_rate: dict[int, float] = field(default_factory=dict)
    s_deadline: dict[int, float] = field(default_factory=dict)
    c_deadline: float = 0.0
    fin_deadline: float = _INF
    done_deadline: float = _INF


class ObjectEngine:
    """Per-attempt objects + scalar epoch arithmetic (the readable twin).

    Invariant: whenever ``valid`` is True, *every* attempt in
    ``sim.running`` carries deadlines from the latest :meth:`refresh` —
    :meth:`add`/:meth:`remove` materialize first and invalidate, so a
    never-refreshed attempt can never be materialized.
    """

    name = "object"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.valid = True  # an empty epoch is trivially fresh
        #: Earliest instant any active stream crosses its byte tolerance;
        #: the clock passing it is the only mid-epoch event that changes
        #: rates (a departed stream frees controller share).
        self.stream_dep_min = _INF
        #: ``REPRO_CHECK_CACHE=1`` also oracle-checks the incremental
        #: active-stream counters against a recount at every materialize.
        self.check = _check_cache_env()

    # -- membership ----------------------------------------------------
    def add(self, rt: _Running) -> None:
        """Admit a new attempt (must not be in ``sim.running`` yet)."""
        self.materialize()
        n_active = 0
        for n, b in rt.streams.items():
            if b > _EPS_BYTES:
                n_active += 1
            else:
                rt.streams[n] = 0.0
        rt.n_active = n_active
        self.valid = False

    def remove(self, rt: _Running) -> None:
        """Retire an attempt (finish or crash); state is materialized so
        ``rt`` holds its exact final bytes/compute."""
        self.materialize()
        self.valid = False

    def clear(self) -> None:
        """Drop all fluid state (after ``_abort_run``)."""
        self.valid = False

    # -- epoch transitions ---------------------------------------------
    def on_rates_changed(self) -> None:
        """A fault knob moved (core speed / node bandwidth): close the
        epoch under the old rates."""
        self.materialize()

    def materialize(self) -> None:
        """Rebase deadline state into byte space at ``sim.now`` and end
        the epoch.  No-op when no epoch is open."""
        if not self.valid:
            return
        sim = self.sim
        now = sim.now
        speed_arr = sim._core_speed
        for rt in sim.running.values():
            streams = rt.streams
            n_active = rt.n_active
            s_rate = rt.s_rate
            for n, d in rt.s_deadline.items():
                b = s_rate[n] * (d - now)
                if b > _EPS_BYTES:
                    streams[n] = b
                else:
                    streams[n] = 0.0
                    n_active -= 1
            rt.n_active = n_active
            speed = 1.0 if speed_arr is None else float(speed_arr[rt.core])
            c = speed * (rt.c_deadline - now)
            rt.compute_remaining = c if c > _EPS else 0.0
            if self.check:
                fresh = sum(1 for b in streams.values() if b > _EPS_BYTES)
                if fresh != rt.n_active:
                    raise SimulationError(
                        f"active-stream counter diverged for task "
                        f"{rt.task.tid}: counter {rt.n_active}, recount "
                        f"{fresh} at t={now:.6g}"
                    )
        self.valid = False

    def refresh(self) -> None:
        """Open a new epoch at ``sim.now``: one rate computation, absolute
        deadlines for every stream and compute component."""
        if self.valid:
            return
        sim = self.sim
        running = sim.running
        dep_min = _INF
        if running:
            now = sim.now
            keys: list[StreamKey] = []
            refs: list[tuple[_Running, int, float]] = []
            for rt in running.values():
                rt.s_rate = {}
                rt.s_deadline = {}
                tid = rt.task.tid
                socket = rt.socket
                for n, b in rt.streams.items():
                    if b > _EPS_BYTES:
                        keys.append(StreamKey(socket, n, group=tid))
                        refs.append((rt, n, b))
            rates = sim._stream_rates(keys)
            for (rt, n, b), rate in zip(refs, rates):
                rate = float(rate)
                rt.s_rate[n] = rate
                rt.s_deadline[n] = now + b / rate
            speed_arr = sim._core_speed
            for rt in running.values():
                speed = 1.0 if speed_arr is None else float(speed_arr[rt.core])
                cd = now + rt.compute_remaining / speed
                fin = cd
                done = cd - _EPS / speed
                s_rate = rt.s_rate
                for n, d in rt.s_deadline.items():
                    if d > fin:
                        fin = d
                    dd = d - _EPS_BYTES / s_rate[n]
                    if dd > done:
                        done = dd
                    if dd < dep_min:
                        dep_min = dd
                rt.c_deadline = cd
                rt.fin_deadline = fin
                rt.done_deadline = done
                rt.n_active = len(rt.s_deadline)
        self.stream_dep_min = dep_min
        self.valid = True

    def advance(self) -> None:
        """The clock moved (dt > 0) inside an epoch: if any stream crossed
        its byte tolerance its controller share is freed, so rebase."""
        if self.valid and self.sim.now >= self.stream_dep_min:
            self.materialize()

    # -- queries --------------------------------------------------------
    def next_completion(self) -> float:
        """Earliest finish deadline over running attempts (epoch open)."""
        running = self.sim.running
        if not running:
            return _INF
        return min(rt.fin_deadline for rt in running.values())

    def completed(self) -> list[_Running]:
        """Attempts done at ``sim.now``, sorted by tid."""
        sim = self.sim
        now = sim.now
        if self.valid:
            done = [
                rt for rt in sim.running.values() if rt.done_deadline <= now
            ]
        else:
            done = [
                rt for rt in sim.running.values()
                if rt.n_active == 0 and rt.compute_remaining <= _EPS
            ]
        done.sort(key=_by_tid)
        return done

    def attempt_done(self, rt: _Running) -> bool:
        """Doneness of one attempt at ``sim.now`` (crash-fizzle test)."""
        if self.valid:
            return rt.done_deadline <= self.sim.now
        return rt.n_active == 0 and rt.compute_remaining <= _EPS


def _by_tid(rt: _Running) -> int:
    return rt.task.tid


class FlatEngine:
    """Struct-of-arrays twin of :class:`ObjectEngine` (same contract).

    Slot = core index.  All state lives in preallocated slot-indexed
    vectors and dense ``[n_cores][n_nodes]`` grids; walking the active
    mask slot-major/node-ascending *is* the CSR ``(indptr, node)`` stream
    list the interconnect consumes.  The grids are plain Python lists:
    at realistic machine sizes (tens of cores, a handful of nodes) the
    per-call dispatch of numpy kernels costs more than the arithmetic
    itself, and scalar IEEE expressions are trivially bit-identical to
    the object engine's.  Group labels passed to the interconnect are the
    core slots — the water-fill is label-invariant, so this matches the
    object engine's tid labels bit-for-bit while keeping signatures dense
    and memoisable.
    """

    name = "flat"

    def __init__(self, sim) -> None:
        self.sim = sim
        topo = sim.topology
        nc = topo.n_cores
        # Grid width is the solver's *resource* axis: memory nodes plus,
        # on clusters, one NIC per box (stream keys may be NIC ids).
        nn = getattr(topo, "n_resources", topo.n_nodes)
        self.n_cores = nc
        self.n_nodes = nn
        self.core_socket = [topo.socket_of_core(c) for c in range(nc)]
        self.busy = [False] * nc
        self.slot_rt: list[_Running | None] = [None] * nc
        self.c_rem = [0.0] * nc
        self.c_deadline = [0.0] * nc
        self.fin_dl = [_INF] * nc
        self.done_dl = [_INF] * nc
        self.s_bytes = [[0.0] * nn for _ in range(nc)]
        self.s_active = [[False] * nn for _ in range(nc)]
        # Compact per-slot mirrors of ``s_active`` (node-ascending), kept
        # in sync at add/departure/remove so refresh assembles the stream
        # CSR with per-slot extends instead of grid scans.
        self.slot_nodes: list[list[int]] = [[] for _ in range(nc)]
        self.slot_cores: list[list[int]] = [[] for _ in range(nc)]
        self.slot_socks: list[list[int]] = [[] for _ in range(nc)]
        self.valid = True
        self.stream_dep_min = _INF
        #: Earliest done-deadline of the open epoch; ``completed`` returns
        #: [] without touching the arrays while ``now`` is before it.
        self.done_min = _INF
        # Compact views of the open epoch (set by refresh, consumed by
        # materialize): the active set cannot change while an epoch is
        # open — add/remove materialize *first* — so these stay exact.
        self._ep_cores: list[int] = []
        self._ep_nds: list[int] = []
        self._ep_rates: list[float] = []
        self._ep_d: list[float] = []
        self._ep_busy: list[int] = []
        self.check = _check_cache_env()

    # -- membership ----------------------------------------------------
    def add(self, rt: _Running) -> None:
        self.materialize()
        slot = rt.core
        streams = rt.streams
        row_b = self.s_bytes[slot]
        row_a = self.s_active[slot]
        n_active = 0
        for n, b in streams.items():
            if b > _EPS_BYTES:
                row_b[n] = b
                row_a[n] = True
                n_active += 1
            else:
                streams[n] = 0.0
        rt.n_active = n_active
        nodes = [n for n in range(self.n_nodes) if row_a[n]]
        self.slot_nodes[slot] = nodes
        self.slot_cores[slot] = [slot] * len(nodes)
        self.slot_socks[slot] = [self.core_socket[slot]] * len(nodes)
        self.busy[slot] = True
        self.slot_rt[slot] = rt
        self.c_rem[slot] = rt.compute_remaining
        self.valid = False

    def remove(self, rt: _Running) -> None:
        self.materialize()
        slot = rt.core
        # Write the exact final state back onto the handle so probes, the
        # residue tests and `repr` diffs see what the object engine shows.
        rt.compute_remaining = self.c_rem[slot]
        row_b = self.s_bytes[slot]
        streams = rt.streams
        for n in streams:
            streams[n] = row_b[n]
        rt.n_active = sum(self.s_active[slot])
        self.busy[slot] = False
        self.slot_rt[slot] = None
        self.s_active[slot] = [False] * self.n_nodes
        self.s_bytes[slot] = [0.0] * self.n_nodes
        self.slot_nodes[slot] = []
        self.slot_cores[slot] = []
        self.slot_socks[slot] = []
        self.valid = False

    def clear(self) -> None:
        nn = self.n_nodes
        for slot in range(self.n_cores):
            self.busy[slot] = False
            self.s_active[slot] = [False] * nn
            self.s_bytes[slot] = [0.0] * nn
            self.slot_nodes[slot] = []
            self.slot_cores[slot] = []
            self.slot_socks[slot] = []
        self.slot_rt = [None] * self.n_cores
        self.valid = False

    # -- epoch transitions ---------------------------------------------
    def on_rates_changed(self) -> None:
        self.materialize()

    def materialize(self) -> None:
        if not self.valid:
            return
        sim = self.sim
        now = sim.now
        cores = self._ep_cores
        if cores:
            nds = self._ep_nds
            rates = self._ep_rates
            ds = self._ep_d
            s_bytes = self.s_bytes
            s_active = self.s_active
            for i in range(len(cores)):
                b = rates[i] * (ds[i] - now)
                c = cores[i]
                n = nds[i]
                if b > _EPS_BYTES:
                    s_bytes[c][n] = b
                else:
                    s_bytes[c][n] = 0.0
                    s_active[c][n] = False
                    self.slot_nodes[c].remove(n)
                    self.slot_cores[c].pop()
                    self.slot_socks[c].pop()
        busy_idx = self._ep_busy
        if busy_idx:
            speed_arr = sim._core_speed
            c_deadline = self.c_deadline
            c_rem = self.c_rem
            if speed_arr is None:
                for s in busy_idx:
                    c = c_deadline[s] - now
                    c_rem[s] = c if c > _EPS else 0.0
            else:
                for s in busy_idx:
                    c = float(speed_arr[s]) * (c_deadline[s] - now)
                    c_rem[s] = c if c > _EPS else 0.0
        if self.check:
            for s in range(self.n_cores):
                row_b = self.s_bytes[s]
                row_a = self.s_active[s]
                for n in range(self.n_nodes):
                    if row_a[n] != (row_b[n] > _EPS_BYTES):
                        raise SimulationError(
                            f"active-stream mask diverged from byte state "
                            f"at t={now:.6g}"
                        )
                mirror = [n for n in range(self.n_nodes) if row_a[n]]
                if mirror != self.slot_nodes[s]:
                    raise SimulationError(
                        f"slot-node mirror diverged from active mask for "
                        f"slot {s} at t={now:.6g}: "
                        f"{self.slot_nodes[s]} vs {mirror}"
                    )
        self.valid = False

    def refresh(self) -> None:
        if self.valid:
            return
        sim = self.sim
        now = sim.now
        nc = self.n_cores
        fin = self.fin_dl
        done = self.done_dl
        busy = self.busy
        for s in range(nc):
            fin[s] = _INF
            done[s] = _INF
        busy_idx = [s for s in range(nc) if busy[s]]
        dep_min = _INF
        ep_cores: list[int] = []
        ep_nds: list[int] = []
        ep_rates: list[float] = []
        ep_d: list[float] = []
        if busy_idx:
            speed_arr = sim._core_speed
            c_rem = self.c_rem
            c_deadline = self.c_deadline
            if speed_arr is None:
                # Division by a speed of exactly 1.0 is an IEEE no-op, so
                # this fast path is bit-identical to the general one.
                for s in busy_idx:
                    cd = now + c_rem[s]
                    c_deadline[s] = cd
                    fin[s] = cd
                    done[s] = cd - _EPS
            else:
                for s in busy_idx:
                    speed = float(speed_arr[s])
                    cd = now + c_rem[s] / speed
                    c_deadline[s] = cd
                    fin[s] = cd
                    done[s] = cd - _EPS / speed
            # Collect active streams slot-major, node-ascending: the
            # implicit-CSR order every consumer (and the memo key) sees.
            # Walking the per-slot mirrors also yields the canonical
            # first-occurrence group labels for free (one label per slot
            # with streams, in slot order).
            slot_nodes = self.slot_nodes
            sockets: list[int] = []
            canon: list[int] = []
            label = 0
            for s in busy_idx:
                nds_s = slot_nodes[s]
                if not nds_s:
                    continue
                ep_nds += nds_s
                ep_cores += self.slot_cores[s]
                sockets += self.slot_socks[s]
                canon += [label] * len(nds_s)
                label += 1
            if ep_cores:
                rates = sim.interconnect.stream_rates_canon(
                    sockets, ep_nds, canon
                ).tolist()
                factor = sim._node_bw_factor
                s_bytes = self.s_bytes
                rate_append = ep_rates.append
                d_append = ep_d.append
                if factor is not None:
                    rates = [
                        r * float(factor[n]) for r, n in zip(rates, ep_nds)
                    ]
                for r, c, n in zip(rates, ep_cores, ep_nds):
                    d = now + s_bytes[c][n] / r
                    sdd = d - _EPS_BYTES / r
                    if d > fin[c]:
                        fin[c] = d
                    if sdd > done[c]:
                        done[c] = sdd
                    if sdd < dep_min:
                        dep_min = sdd
                    rate_append(r)
                    d_append(d)
        self._ep_cores = ep_cores
        self._ep_nds = ep_nds
        self._ep_rates = ep_rates
        self._ep_d = ep_d
        self._ep_busy = busy_idx
        self.stream_dep_min = dep_min
        self.done_min = min(done)
        self.valid = True

    def advance(self) -> None:
        if self.valid and self.sim.now >= self.stream_dep_min:
            self.materialize()

    # -- queries --------------------------------------------------------
    def next_completion(self) -> float:
        return min(self.fin_dl)

    def completed(self) -> list[_Running]:
        now = self.sim.now
        slot_rt = self.slot_rt
        if self.valid:
            if self.done_min > now:
                return []
            done_dl = self.done_dl
            done = [
                slot_rt[s] for s in range(self.n_cores) if done_dl[s] <= now
            ]
        else:
            busy = self.busy
            c_rem = self.c_rem
            s_active = self.s_active
            done = [
                slot_rt[s]
                for s in range(self.n_cores)
                if busy[s] and c_rem[s] <= _EPS and not any(s_active[s])
            ]
        if not done:
            return []
        done.sort(key=_by_tid)
        return done

    def attempt_done(self, rt: _Running) -> bool:
        slot = rt.core
        if self.valid:
            return self.done_dl[slot] <= self.sim.now
        return (
            self.c_rem[slot] <= _EPS
            and not any(self.s_active[slot])
        )


#: Engine registry for ``Simulator(engine=...)``.
ENGINES = {"object": ObjectEngine, "flat": FlatEngine}
