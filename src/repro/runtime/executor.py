"""Sequential executor: really runs the tasks' Python payloads.

Two uses:

* **Numerical validation** — apps attach numpy kernels to their tasks; the
  executor runs them in a legal order and tests compare against a plain
  numpy reference.
* **Schedule validation** — :func:`execute_in_order` replays the *simulated
  completion order* and verifies it is a legal topological order of the
  TDG, which end-to-end checks that the simulator never started a task
  before its dependencies finished.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import DependencyError
from .program import TaskProgram


def execute(program: TaskProgram) -> None:
    """Run all task payloads in creation order (always a legal order)."""
    execute_in_order(program, range(program.n_tasks))


def execute_in_order(program: TaskProgram, order: Sequence[int]) -> None:
    """Run task payloads in ``order`` after validating it is legal.

    Legal means: a permutation of all tasks, every task after its TDG
    predecessors, and epochs non-decreasing only across barrier boundaries
    (a barrier requires *all* earlier-epoch tasks to precede any later one).
    """
    order = list(order)
    n = program.n_tasks
    if sorted(order) != list(range(n)):
        raise DependencyError(
            f"order is not a permutation of 0..{n - 1} (len={len(order)})"
        )
    position = [0] * n
    for pos, tid in enumerate(order):
        position[tid] = pos
    for tid in range(n):
        for pred in program.tdg.predecessors(tid):
            if position[pred] > position[tid]:
                raise DependencyError(
                    f"task {tid} ({program.tasks[tid].name}) executed before "
                    f"its dependency {pred} ({program.tasks[pred].name})"
                )
    # Barrier legality: epochs must be non-decreasing along the order.
    last_epoch = 0
    for tid in order:
        epoch = program.tasks[tid].epoch
        if epoch < last_epoch:
            raise DependencyError(
                f"task {tid} of epoch {epoch} executed after a task of epoch "
                f"{last_epoch}: barrier violated"
            )
        last_epoch = epoch

    for tid in order:
        fn = program.tasks[tid].fn
        if fn is not None:
            fn()
