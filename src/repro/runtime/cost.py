"""Cost-model helpers shared by the simulator and the schedulers.

The quantities here are *queries* over the current memory placement; the
authoritative accounting (what actually gets charged) happens inside the
simulator when a task starts.

Both queries ride the :class:`~repro.machine.memory.MemoryManager`
placement cache (DESIGN.md §9): per-range results are memoised inside the
manager, and :func:`allocated_bytes_per_node` additionally memoises the
per-task aggregate keyed by the *version signature* of the task's objects,
so a re-query of a task whose data did not move is a dict lookup.  With
``cache=False`` managers (or ``REPRO_CHECK_CACHE=1`` oracle mode) the
cached and recomputed values are guaranteed identical.
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryError_
from ..machine.memory import MemoryManager
from .task import Task


def _signature(task: Task, memory: MemoryManager) -> tuple[int, ...]:
    """Placement-version signature of every object the task accesses.

    Reads the manager's version table directly (KeyError on an
    unregistered object carries the same meaning as the public accessor's
    error, and this runs once per scheduling decision).
    """
    ver = memory._ver
    return tuple(ver[a.obj.key] for a in task.accesses)


def _compute_allocated(
    task: Task, memory: MemoryManager
) -> tuple[np.ndarray, int]:
    acc = [0] * memory.n_nodes
    unbound = 0
    for access in task.accesses:
        placement = memory.node_bytes_of_range(
            access.obj.key, access.offset, access.length
        )
        for n, b in placement.node_items():
            acc[n] += b
        unbound += placement.unbound_bytes
    per_node = np.array(acc, dtype=np.int64)
    per_node.setflags(write=False)
    return per_node, unbound


def allocated_bytes_per_node(task: Task, memory: MemoryManager) -> tuple[np.ndarray, int]:
    """(bytes of the task's data already bound, per node; unbound bytes).

    This is the socket weighting of the locality-aware scheduler: "the
    runtime explores its dependencies and weights the sockets using the
    size of the allocated input and output data".

    The returned array is read-only and may be shared with the cache; copy
    it before mutating.
    """
    if not memory.cache_enabled:
        return _compute_allocated(task, memory)
    sig = _signature(task, memory)
    hit = memory.task_cache.get(task)
    if hit is not None and hit[0] == sig:
        memory.cache_hits += 1
        if memory.check_cache:
            fresh_node, fresh_unbound = _compute_allocated(task, memory)
            if fresh_unbound != hit[2] or not np.array_equal(fresh_node, hit[1]):
                raise MemoryError_(
                    f"placement-cache divergence on task {task.tid} "
                    f"({task.name!r}): cached ({hit[1]}, {hit[2]}) vs "
                    f"recomputed ({fresh_node}, {fresh_unbound})"
                )
        return hit[1], hit[2]
    memory.cache_misses += 1
    per_node, unbound = _compute_allocated(task, memory)
    memory.task_cache[task] = (sig, per_node, unbound)
    return per_node, unbound


def traffic_streams(task: Task, memory: MemoryManager) -> dict[int, float]:
    """Memory traffic per node for the task *with the current placement*.

    Called by the simulator after deferred allocation has bound the task's
    pages, so no bytes should remain unbound; any that do (task reading an
    object no one wrote or pre-bound) are attributed nowhere and surface in
    the unbound counter of :func:`allocated_bytes_per_node` instead.

    Returns a fresh dict each call (the simulator drains it in place); the
    per-range placements underneath come from the manager's cache.
    """
    streams: dict[int, float] = {}
    for access in task.accesses:
        placement = memory.node_bytes_of_range(
            access.obj.key, access.offset, access.length
        )
        mult = access.mode.traffic_multiplier
        for node, b in placement.node_items():
            nbytes = float(b) * mult
            if node in streams:
                streams[node] += nbytes
            else:
                streams[node] = nbytes
    return streams
