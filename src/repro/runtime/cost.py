"""Cost-model helpers shared by the simulator and the schedulers.

The quantities here are *queries* over the current memory placement; the
authoritative accounting (what actually gets charged) happens inside the
simulator when a task starts.
"""

from __future__ import annotations

import numpy as np

from ..machine.memory import MemoryManager
from .task import Task


def allocated_bytes_per_node(task: Task, memory: MemoryManager) -> tuple[np.ndarray, int]:
    """(bytes of the task's data already bound, per node; unbound bytes).

    This is the socket weighting of the locality-aware scheduler: "the
    runtime explores its dependencies and weights the sockets using the
    size of the allocated input and output data".
    """
    per_node = np.zeros(memory.n_nodes, dtype=np.int64)
    unbound = 0
    for access in task.accesses:
        placement = memory.node_bytes_of_range(
            access.obj.key, access.offset, access.length
        )
        per_node += placement.bytes_per_node
        unbound += placement.unbound_bytes
    return per_node, unbound


def traffic_streams(task: Task, memory: MemoryManager) -> dict[int, float]:
    """Memory traffic per node for the task *with the current placement*.

    Called by the simulator after deferred allocation has bound the task's
    pages, so no bytes should remain unbound; any that do (task reading an
    object no one wrote or pre-bound) are attributed nowhere and surface in
    the unbound counter of :func:`allocated_bytes_per_node` instead.
    """
    streams: dict[int, float] = {}
    for access in task.accesses:
        placement = memory.node_bytes_of_range(
            access.obj.key, access.offset, access.length
        )
        mult = access.mode.traffic_multiplier
        for node in np.flatnonzero(placement.bytes_per_node):
            nbytes = float(placement.bytes_per_node[node]) * mult
            streams[int(node)] = streams.get(int(node), 0.0) + nbytes
    return streams
