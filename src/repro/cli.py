"""Command-line interface: ``python -m repro <command>`` / ``rgp-repro``.

Commands
--------
``figure1``   — regenerate the paper's Figure 1 (table and/or bar form).
``run``       — simulate one app under one scheduler; optional Gantt chart
                and CSV/JSON trace export; ``--faults plan.json`` injects a
                fault plan.
``faults``    — resilience experiment: run an app fault-free and under a
                fault plan (from a JSON file and/or inline ``--fail-core``
                style specs) and print the resilience report.
``analyze``   — schedule report (efficiency bounds, node pressure, phase
                profile, utilisation sparkline) plus optional DOT export.
``trace``     — instrumented run; exports a Perfetto-loadable Chrome trace
                (and optionally a Paraver timeline / flat metrics JSON).
``stats``     — instrumented run; prints the metrics-registry summary and
                the NUMA socket-by-node traffic matrix.
``ablation``  — run one of the ablation sweeps (window / partitioner /
                sockets / las / propagation / pipeline / cluster / gap).
``bench``     — host-performance benchmark of the scheduling hot path
                (placement-cache on/off); emits ``BENCH_hotpath.json``,
                appends to the ``BENCH_history.jsonl`` perf history, and
                with ``--compare BASELINE.json`` gates on noise-aware
                regressions (exit code 6).
``profile``   — critical-path profile of one instrumented run: where the
                makespan went (compute / local / remote memory / waits),
                Coz-style what-ifs; ``profile diff`` attributes the
                makespan delta between two schedulers.
``verify``    — differential-oracle verification (DESIGN.md §11):
                ``fuzz`` random cases against the reference simulator,
                ``replay`` serialized divergence/corpus files, or ``diff``
                one named app/scheduler/machine combination.
``serve``     — boot the fault-tolerant simulation job service
                (DESIGN.md §12): asyncio HTTP/JSON API, content-hash
                result cache, supervised worker pool.
``submit``    — submit one job to a running service and (optionally)
                wait for its result.
``apps``      — list the available applications, schedulers and machines.

Exit codes
----------
Every :class:`~repro.errors.ReproError` maps to a documented exit code
(see ``EXIT_CODE_MAP`` in :mod:`repro.errors`): 0 success, 1 other
library error, 2 configuration error (also argparse usage errors),
3 partition timeout, 4 verification failure, 5 fault/resilience failure,
6 benchmark failure, 7 service failure.  No traceback is printed unless
``--debug`` is given, which re-raises the error instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .apps import APPS, make_app
from .errors import ReproError, exit_code_for
from .experiments.config import ExperimentConfig
from .machine import presets
from .metrics.trace import gantt_ascii, write_csv, write_json
from .runtime.simulator import Simulator
from .schedulers import SCHEDULERS, make_scheduler


def _window_spec(value: str):
    """``--window`` accepts a task count or ``auto`` (adaptive sizing)."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"window must be an integer or 'auto', got {value!r}"
        ) from None


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="reduced problem sizes and fewer seeds")
    parser.add_argument("--seeds", type=int, default=None,
                        help="number of seeds (default: config preset)")
    parser.add_argument("--window", type=_window_spec, default=None,
                        metavar="N|auto",
                        help="RGP window size limit, or 'auto' for the "
                             "adaptive controller")
    parser.add_argument("--propagation", default=None,
                        choices=["las", "repartition", "random", "cyclic"],
                        help="RGP propagation policy ('rgp' scheduler only)")
    parser.add_argument("--partition-delay", type=float, default=None,
                        help="simulated latency of a window partition")
    parser.add_argument("--prefetch-threshold", type=float, default=None,
                        metavar="F",
                        help="pipelined repartitioning: launch window k+1 "
                             "once fraction F of window k has finished "
                             "(implies --propagation repartition)")


def _config(args) -> ExperimentConfig:
    cfg = ExperimentConfig.quick() if args.quick else ExperimentConfig.paper()
    if args.seeds is not None:
        cfg.seeds = tuple(range(args.seeds))
    if getattr(args, "window", None) is not None:
        cfg.window_size = args.window
    return cfg


def cmd_figure1(args) -> int:
    from .experiments.figure1 import run_figure1

    cfg = _config(args)
    result = run_figure1(
        cfg, progress=(lambda m: print(f"  {m}", file=sys.stderr)) if args.verbose else None
    )
    print(result.render())
    if args.bars:
        print()
        print(result.render_bars())
    return 0


def _load_fault_plan(args):
    """Assemble a FaultPlan from ``--faults FILE`` plus inline specs."""
    from .faults import (
        FaultPlan,
        TaskCrash,
        parse_core_fault,
        parse_core_slowdown,
        parse_network_degradation,
        parse_node_degradation,
        parse_node_loss,
    )

    base = (
        FaultPlan.load(args.faults)
        if getattr(args, "faults", None)
        else FaultPlan()
    )
    crashes = list(base.task_crashes)
    if getattr(args, "crash_prob", None):
        crashes.append(TaskCrash(probability=args.crash_prob))
    return FaultPlan(
        core_faults=base.core_faults
        + tuple(parse_core_fault(s) for s in getattr(args, "fail_core", []) or []),
        slowdowns=base.slowdowns
        + tuple(parse_core_slowdown(s) for s in getattr(args, "slow_core", []) or []),
        task_crashes=tuple(crashes),
        node_degradations=base.node_degradations
        + tuple(
            parse_node_degradation(s)
            for s in getattr(args, "degrade_node", []) or []
        ),
        node_losses=base.node_losses
        + tuple(
            parse_node_loss(s)
            for s in getattr(args, "lose_node", []) or []
        ),
        network_degradations=base.network_degradations
        + tuple(
            parse_network_degradation(s)
            for s in getattr(args, "degrade_net", []) or []
        ),
        partition_timeout=(
            args.partition_timeout
            if getattr(args, "partition_timeout", None) is not None
            else base.partition_timeout
        ),
    )


def _scheduler_kwargs(cfg, args) -> dict:
    """Scheduler kwargs from CLI flags (RGP schedulers only)."""
    if not args.scheduler.startswith("rgp"):
        return {}
    kwargs = {"window_size": cfg.window_size}
    if getattr(args, "partition_delay", None) is not None:
        kwargs["partition_delay"] = args.partition_delay
    if args.scheduler == "rgp":
        if getattr(args, "propagation", None) is not None:
            kwargs["propagation"] = args.propagation
        if getattr(args, "prefetch_threshold", None) is not None:
            # Pipelining implies repartition propagation; an explicitly
            # conflicting --propagation is rejected by the scheduler.
            kwargs.setdefault("propagation", "repartition")
            kwargs["prefetch_threshold"] = args.prefetch_threshold
    return kwargs


def _interconnect(cfg, topo):
    from .machine.interconnect import Interconnect

    return Interconnect(
        topo,
        remote_penalty_exp=cfg.remote_penalty_exp,
        link_fraction=cfg.link_fraction,
        core_fraction=cfg.core_fraction,
    )


def build_program(app, machine):
    """Build ``app``'s task program for ``machine``'s placement domains.

    The placement domains are the machine's *leaf sockets* — the places a
    task can run and an EP annotation can name.  Cluster machines carry
    extra memory resources beyond the sockets (one NIC per box, so
    ``n_resources > n_sockets``); programs must always be sized over the
    leaf sockets, never the resource axis, and every CLI entry point goes
    through this one helper so the two cannot drift apart.
    """
    return app.build(machine.n_sockets)


def _build_sim(cfg, topo, args, faults=None, **sim_kwargs):
    params = dict(cfg.app_params.get(args.app, {}))
    app = make_app(args.app, **params)
    program = build_program(app, topo)
    kwargs = _scheduler_kwargs(cfg, args)
    sim = Simulator(
        program, topo, make_scheduler(args.scheduler, **kwargs),
        interconnect=_interconnect(cfg, topo), seed=args.seed,
        steal=cfg.steal, faults=faults, **sim_kwargs,
    )
    return program, sim


def cmd_run(args) -> int:
    cfg = _config(args)
    if getattr(args, "cluster", None) is not None:
        topo = presets.cluster(args.cluster)
    else:
        topo = presets.by_name(args.machine)
    faults = _load_fault_plan(args) if args.faults else None
    _, sim = _build_sim(cfg, topo, args, faults=faults)
    result = sim.run()
    print(result.summary())
    if args.gantt:
        print(gantt_ascii(result))
    if args.trace_csv:
        write_csv(result, args.trace_csv)
        print(f"trace written to {args.trace_csv}")
    if args.trace_json:
        write_json(result, args.trace_json)
        print(f"trace written to {args.trace_json}")
    return 0


def cmd_faults(args) -> int:
    """Resilience experiment: fault-free vs faulted run + report."""
    from .metrics.resilience import resilience_report
    from .runtime.validation import validate_schedule

    cfg = _config(args)
    topo = presets.by_name(args.machine)
    plan = _load_fault_plan(args)
    if plan.is_empty():
        print("fault plan is empty — nothing to inject", file=sys.stderr)
        return 2
    if args.save_plan:
        plan.dump(args.save_plan)
        print(f"fault plan written to {args.save_plan}")
    print("fault plan:")
    for line in plan.describe().splitlines():
        print(f"  {line}")

    program, base_sim = _build_sim(cfg, topo, args)
    fault_free = base_sim.run()
    _, sim = _build_sim(
        cfg, topo, args, faults=plan,
        max_retries=args.max_retries, retry_backoff=args.retry_backoff,
    )
    result = sim.run()
    validate_schedule(program, result, topo)
    print()
    print(f"fault-free: {fault_free.summary()}")
    print(f"faulted:    {result.summary()}")
    print()
    print(resilience_report(result, fault_free).render())
    return 0


def cmd_trace(args) -> int:
    """Instrumented run + timeline export (DESIGN.md §8)."""
    from .observability import (
        Instrumentation,
        RingBufferSink,
        write_chrome_trace,
        write_metrics_json,
        write_paraver,
    )

    cfg = _config(args)
    topo = presets.by_name(args.machine)
    faults = _load_fault_plan(args) if args.faults else None
    obs = Instrumentation(sink=RingBufferSink(args.capacity))
    program, sim = _build_sim(cfg, topo, args, faults=faults, instrument=obs)
    result = sim.run()
    print(result.summary())
    dropped = obs.sink.dropped
    if dropped:
        print(f"note: ring buffer dropped {dropped} events "
              f"(raise --capacity to keep them)", file=sys.stderr)
    write_chrome_trace(result, args.out, tdg=program.tdg)
    print(f"chrome trace written to {args.out} "
          f"(open in https://ui.perfetto.dev)")
    if args.paraver:
        write_paraver(result, args.paraver)
        print(f"paraver timeline written to {args.paraver}")
    if args.metrics_json:
        write_metrics_json(result, args.metrics_json)
        print(f"metrics written to {args.metrics_json}")
    return 0


def _run_profiled(cfg, topo, args, scheduler_name, *, capacity=1 << 20):
    """Instrumented run of one scheduler + its critical-path profile."""
    from .observability import Instrumentation, RingBufferSink
    from .profiling import profile_run

    ns = argparse.Namespace(**vars(args))
    ns.scheduler = scheduler_name
    faults = _load_fault_plan(ns) if getattr(ns, "faults", None) else None
    obs = Instrumentation(sink=RingBufferSink(capacity))
    program, sim = _build_sim(cfg, topo, ns, faults=faults, instrument=obs)
    result = sim.run()
    report = profile_run(
        program, result, topo, interconnect=_interconnect(cfg, topo)
    )
    return program, result, report


def cmd_profile(args) -> int:
    """Critical-path profile: where did this run's makespan go?"""
    import json as _json

    if args.app is None or args.scheduler is None:
        print("error: profile needs --app and --scheduler "
              "(or use 'profile diff')", file=sys.stderr)
        return 2
    cfg = _config(args)
    topo = presets.by_name(args.machine)
    program, result, report = _run_profiled(
        cfg, topo, args, args.scheduler, capacity=args.capacity
    )
    print(report.render(top=args.top))
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"profile written to {args.json}")
    if args.perfetto:
        from .observability import write_chrome_trace

        write_chrome_trace(
            result, args.perfetto, tdg=program.tdg, critical_path=report
        )
        print(f"chrome trace (critical path highlighted) written to "
              f"{args.perfetto} (open in https://ui.perfetto.dev)")
    return 0


def cmd_profile_diff(args) -> int:
    """Differential profile: why is run B faster/slower than run A?"""
    import json as _json

    from .profiling import diff_profiles

    cfg = _config(args)
    topo = presets.by_name(args.machine)
    _, _, report_a = _run_profiled(cfg, topo, args, args.a)
    _, _, report_b = _run_profiled(cfg, topo, args, args.b)
    diff = diff_profiles(report_a, report_b)
    print(diff.render(top=args.top))
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(diff.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"diff written to {args.json}")
    return 0


def cmd_stats(args) -> int:
    """Instrumented run + metrics-registry summary (no event buffering)."""
    from .observability import NULL_SINK, Instrumentation

    cfg = _config(args)
    topo = presets.by_name(args.machine)
    faults = _load_fault_plan(args) if args.faults else None
    obs = Instrumentation(sink=NULL_SINK)
    _, sim = _build_sim(cfg, topo, args, faults=faults, instrument=obs)
    result = sim.run()
    print(result.summary())
    print()
    print(obs.registry.render())
    return 0


def cmd_ablation(args) -> int:
    from .experiments import ablations

    cfg = _config(args)
    if args.which == "gap":
        report = ablations.run_gap_ablation(cfg, quick=args.quick)
        print(report.render())
        if args.gate_drb is not None:
            mean = report.mean_gap("drb")
            if mean > args.gate_drb:
                print(
                    f"FAIL: drb mean optimality gap {mean * 100:.1f}% "
                    f"exceeds gate {args.gate_drb * 100:.1f}%"
                )
                return 6
            print(
                f"gate ok: drb mean optimality gap {mean * 100:.1f}% "
                f"<= {args.gate_drb * 100:.1f}%"
            )
        return 0
    runner = {
        "window": ablations.run_window_ablation,
        "partitioner": ablations.run_partitioner_ablation,
        "sockets": ablations.run_socket_ablation,
        "las": ablations.run_las_ablation,
        "propagation": ablations.run_propagation_ablation,
        "pipeline": ablations.run_pipeline_ablation,
        "cluster": ablations.run_cluster_ablation,
    }[args.which]
    print(runner(cfg).render())
    return 0


def cmd_bench(args) -> int:
    """Host benchmarks: the hot-path suite or the e2e engine suite."""
    from .bench import (
        append_history,
        compare_bench_files,
        headline_e2e_speedup,
        headline_speedup,
        load_bench_file,
        run_e2e_bench,
        run_hotpath_bench,
        write_e2e_entries,
        write_entries,
    )
    from .errors import BenchmarkError

    out = args.out or (
        "BENCH_e2e.json" if args.target == "e2e" else "BENCH_hotpath.json"
    )

    def compare(current: str) -> None:
        report = compare_bench_files(
            args.compare, current,
            tolerance=args.tolerance, absolute=args.absolute,
        )
        print(report.render())
        if not report.ok:
            n = len(report.regressions)
            raise BenchmarkError(
                f"{n} benchmark regression{'s' if n != 1 else ''} "
                f"vs baseline {args.compare}"
            )

    if args.validate:
        # load_bench_file schema-validates for whichever kind it detects.
        kind, entries = load_bench_file(args.validate)
        print(f"{args.validate}: schema OK ({kind}, {len(entries)} entries)")
        return 0
    if args.compare and args.against:
        # Pure file-vs-file comparison: no benchmark run at all.
        compare(args.against)
        return 0

    progress = lambda m: print(f"  {m}", file=sys.stderr)  # noqa: E731
    if args.target == "e2e":
        entries = run_e2e_bench(
            quick=args.quick,
            sizes=tuple(args.sizes) if args.sizes else None,
            machine=args.machine,
            reps=args.reps,
            seed=args.seed,
            verify=not args.no_verify,
            progress=progress,
        )
        write_e2e_entries(entries, out)
        kind = "e2e"
        speedup = headline_e2e_speedup(entries)
        headline_key = "e2e_speedup_vs_before"
        if speedup is not None:
            print(f"end-to-end speedup vs pre-flat-engine tree: {speedup:.2f}x")
    else:
        entries = run_hotpath_bench(
            quick=args.quick,
            sizes=tuple(args.sizes) if args.sizes else None,
            machine=args.machine,
            reps=args.reps,
            seed=args.seed,
            verify=not args.no_verify,
            progress=progress,
        )
        write_entries(entries, out)
        kind = "hotpath"
        speedup = headline_speedup(entries)
        headline_key = "decision_speedup"
        if speedup is not None:
            print(f"placement-cache decision-rate speedup: {speedup:.2f}x")
    print(f"bench results written to {out} ({len(entries)} entries)")
    if not args.no_history:
        headline = {headline_key: speedup} if speedup is not None else None
        # Default the history next to the bench file so runs writing to a
        # scratch --out never touch a history elsewhere.
        history = args.history or str(
            Path(out).parent / "BENCH_history.jsonl"
        )
        append_history(history, kind, entries, headline=headline)
        print(f"history appended to {history}")
    if args.compare:
        compare(out)
    return 0


def _parse_budget(value: str) -> float:
    """``--budget`` accepts seconds (``120``, ``120s``) or minutes (``2m``)."""
    text = value.strip().lower()
    try:
        if text.endswith("m"):
            return float(text[:-1]) * 60.0
        if text.endswith("s"):
            return float(text[:-1])
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"budget must look like '120', '120s' or '2m', got {value!r}"
        ) from None


def cmd_verify(args) -> int:
    """Differential-oracle verification: fuzz / replay / diff."""
    from .verify import POLICY_MATRIX, differential_run, fuzz, replay_file

    if args.verify_command == "fuzz":
        known = [label for label, _, _ in POLICY_MATRIX]
        for policy in args.policies or []:
            if policy not in known:
                print(f"error: unknown policy {policy!r} "
                      f"(choose from {', '.join(known)})", file=sys.stderr)
                return 2
        report = fuzz(
            args.seeds,
            policies=args.policies or None,
            budget_s=args.budget,
            out_dir=args.out_dir,
            engine=args.engine,
            progress=(
                (lambda m: print(f"  {m}", file=sys.stderr))
                if args.verbose else None
            ),
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.verify_command == "replay":
        import os

        paths: list[str] = []
        for target in args.paths:
            if os.path.isdir(target):
                paths.extend(
                    os.path.join(target, name)
                    for name in sorted(os.listdir(target))
                    if name.endswith(".json")
                )
            else:
                paths.append(target)
        if not paths:
            print("error: no case files to replay", file=sys.stderr)
            return 2
        failures = 0
        for path in paths:
            report = replay_file(path, engine=args.engine)
            print(f"{path}: {report.summary()}")
            if not report.ok:
                failures += 1
                if args.out_dir:
                    from .verify import save_repro

                    print(f"  repro file: {save_repro(report, args.out_dir)}")
        return 1 if failures else 0

    # verify diff
    report = differential_run(
        args.scheduler,
        args.app,
        args.machine,
        faults=args.faults,
        scheduler_kwargs=(
            {"window_size": args.window} if args.window is not None else None
        ),
        seed=args.seed,
    )
    print(report.summary())
    if args.out:
        from .verify import save_repro

        print(f"case written to {save_repro(report, args.out)}")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Boot the simulation job service (DESIGN.md §12)."""
    import asyncio

    from .service import ServiceConfig
    from .service.http import serve

    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        poison_threshold=args.poison_threshold,
        rate_per_s=args.rate,
        burst=args.burst,
        default_deadline_s=args.deadline,
        drain_grace_s=args.drain_grace,
        data_dir=args.data_dir,
    )

    def ready(port: int) -> None:
        print(f"serving on http://{args.host}:{port} "
              f"({args.workers} workers, queue {args.queue_capacity}"
              + (f", data dir {args.data_dir}" if args.data_dir else "")
              + ")", flush=True)

    asyncio.run(serve(config, args.host, args.port, ready_message=ready))
    return 0


def cmd_submit(args) -> int:
    """Submit one job to a running service; optionally wait for it."""
    import json as _json

    from .service.client import ServiceClient
    from .service.jobs import JobState

    if args.spec:
        spec = _json.loads(open(args.spec).read())
    elif args.app is None or args.scheduler is None:
        print("error: need --spec FILE or both --app and --scheduler",
              file=sys.stderr)
        return 2
    else:
        spec = {
            "app": args.app,
            "policy": args.scheduler,
            "machine": args.machine,
            "seed": args.seed,
        }
        if args.faults:
            from .faults import FaultPlan

            spec["faults"] = FaultPlan.load(args.faults).to_dict()
        if args.tenant:
            spec["tenant"] = args.tenant
        if args.deadline is not None:
            spec["deadline_s"] = args.deadline
    client = ServiceClient(args.host, args.port)
    response = client.submit(spec, wait=args.wait,
                             wait_timeout=args.wait_timeout)
    if response.status == 429:
        hint = response.retry_after_s
        print(f"shed (HTTP 429), retry after {hint}s", file=sys.stderr)
        return 75  # EX_TEMPFAIL: transient, retry later
    if response.status >= 400:
        print(f"error: HTTP {response.status}: "
              f"{response.body.get('error', response.body)}", file=sys.stderr)
        return 1
    print(_json.dumps(response.body, indent=2, sort_keys=True))
    state = response.body.get("state")
    if args.wait and state != JobState.DONE:
        return 1
    return 0


def cmd_apps(args) -> int:
    print("applications:", ", ".join(sorted(APPS)))
    print("schedulers:  ", ", ".join(sorted(SCHEDULERS)))
    print("machines:    ", ", ".join(sorted(presets.PRESETS)))
    return 0


def cmd_analyze(args) -> int:
    """Simulate once and print the full schedule report + timeline."""
    from .metrics.analysis import schedule_report, utilization_timeline

    cfg = _config(args)
    topo = presets.by_name(args.machine)
    params = dict(cfg.app_params.get(args.app, {}))
    app = make_app(args.app, **params)
    program = build_program(app, topo)
    kwargs = _scheduler_kwargs(cfg, args)
    from .machine.interconnect import Interconnect

    sim = Simulator(
        program, topo, make_scheduler(args.scheduler, **kwargs),
        interconnect=Interconnect(
            topo, remote_penalty_exp=cfg.remote_penalty_exp,
            link_fraction=cfg.link_fraction, core_fraction=cfg.core_fraction,
        ),
        seed=args.seed, steal=cfg.steal,
    )
    result = sim.run()
    print(schedule_report(program, result, topo))
    # Utilisation sparkline.
    _, busy = utilization_timeline(result, n_points=64)
    if len(busy):
        blocks = " .:-=+*#%@"
        top = max(int(busy.max()), 1)
        line = "".join(
            blocks[min(len(blocks) - 1, int(b / top * (len(blocks) - 1)))]
            for b in busy
        )
        print(f"utilization [{line}] (peak {top} cores)")
    if args.dot:
        from .graph.dot import write_dot

        write_dot(program.tdg, args.dot, max_nodes=args.dot_max_nodes)
        print(f"TDG written to {args.dot}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rgp-repro",
        description=(
            "Reproduction of 'Graph partitioning applied to DAG scheduling "
            "to reduce NUMA effects' (PPoPP 2018)"
        ),
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="re-raise library errors with a full traceback instead of "
             "the one-line 'error: ...' + documented exit code",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure1", help="regenerate Figure 1")
    _add_common(p)
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument("--bars", action="store_true",
                   help="render the paper-style clipped bar chart too")
    p.set_defaults(fn=cmd_figure1)

    p = sub.add_parser("run", help="simulate one app under one scheduler")
    _add_common(p)
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--scheduler", required=True, choices=sorted(SCHEDULERS))
    p.add_argument("--machine", default="bullion-s16",
                   choices=sorted(presets.PRESETS))
    p.add_argument("--cluster", type=int, default=None, metavar="N_BOXES",
                   help="simulate an N_BOXES-node cluster (overrides "
                        "--machine; each node is a 2-socket NUMA box)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--gantt", action="store_true", help="ASCII Gantt chart")
    p.add_argument("--trace-csv", default=None)
    p.add_argument("--trace-json", default=None)
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="inject a fault plan (JSON file, see 'faults' cmd)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "faults",
        help="resilience experiment: fault-free vs faulted run + report",
    )
    _add_common(p)
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--scheduler", required=True, choices=sorted(SCHEDULERS))
    p.add_argument("--machine", default="bullion-s16",
                   choices=sorted(presets.PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="load a fault plan file (inline specs add to it)")
    p.add_argument("--fail-core", action="append", metavar="CORE@AT[:DUR]",
                   help="kill a core at a time (repeatable)")
    p.add_argument("--slow-core", action="append",
                   metavar="CORE@AT*FACTOR[:DUR]",
                   help="straggler: core runs FACTOR-times slower")
    p.add_argument("--degrade-node", action="append",
                   metavar="NODE@AT*FACTOR[:DUR]",
                   help="scale a memory node's bandwidth by FACTOR<1")
    p.add_argument("--lose-node", action="append", metavar="BOX@AT[:DUR]",
                   help="drop a whole cluster box at a time (repeatable)")
    p.add_argument("--degrade-net", action="append",
                   metavar="BOX@AT*FACTOR[:DUR]",
                   help="scale a cluster box's NIC bandwidth by FACTOR<1")
    p.add_argument("--crash-prob", type=float, default=None,
                   help="per-attempt task crash probability")
    p.add_argument("--partition-timeout", type=float, default=None,
                   help="declare the window partition lost at this time")
    p.add_argument("--max-retries", type=int, default=3,
                   help="per-task re-execution limit (default 3)")
    p.add_argument("--retry-backoff", type=float, default=0.0,
                   help="base of the exponential re-execution backoff")
    p.add_argument("--save-plan", default=None, metavar="OUT.json",
                   help="also write the assembled plan to a file")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "trace",
        help="instrumented run; export Perfetto/Paraver timelines",
    )
    _add_common(p)
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--scheduler", required=True, choices=sorted(SCHEDULERS))
    p.add_argument("--machine", default="bullion-s16",
                   choices=sorted(presets.PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, metavar="TRACE.json",
                   help="Chrome trace output (open in ui.perfetto.dev)")
    p.add_argument("--paraver", default=None, metavar="TRACE.prv",
                   help="also write a Paraver-flavoured text timeline")
    p.add_argument("--metrics-json", default=None, metavar="METRICS.json",
                   help="also write the flat metrics/registry snapshot")
    p.add_argument("--capacity", type=int, default=1 << 20,
                   help="event ring-buffer capacity (default 1Mi events)")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="inject a fault plan (JSON file, see 'faults' cmd)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "stats",
        help="instrumented run; print the metrics-registry summary",
    )
    _add_common(p)
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--scheduler", required=True, choices=sorted(SCHEDULERS))
    p.add_argument("--machine", default="bullion-s16",
                   choices=sorted(presets.PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="inject a fault plan (JSON file, see 'faults' cmd)")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("ablation", help="run an ablation sweep")
    _add_common(p)
    p.add_argument("which", choices=["window", "partitioner", "sockets",
                                     "las", "propagation", "pipeline",
                                     "cluster", "gap"])
    p.add_argument("--gate-drb", type=float, default=None, metavar="FRAC",
                   help="gap only: exit 6 if drb's mean optimality gap "
                        "exceeds FRAC (e.g. 0.15)")
    p.set_defaults(fn=cmd_ablation)

    p = sub.add_parser(
        "bench",
        help="host benchmarks; emits BENCH_hotpath.json / BENCH_e2e.json",
    )
    p.add_argument("--target", default="hotpath", choices=["hotpath", "e2e"],
                   help="hotpath = decision-rate + cache suite; e2e = "
                        "flat-vs-object engine wall-clock suite")
    p.add_argument("--quick", action="store_true",
                   help="smaller graph sizes (CI smoke)")
    p.add_argument("--out", default=None,
                   metavar="OUT.json",
                   help="output file (default BENCH_hotpath.json or "
                        "BENCH_e2e.json per --target)")
    p.add_argument("--sizes", type=int, nargs="+", default=None,
                   help="task-count targets (default 1k/4k/10k, quick 300/1200)")
    p.add_argument("--machine", default="four-socket",
                   choices=sorted(presets.PRESETS))
    p.add_argument("--reps", type=int, default=3,
                   help="repetitions: decision replays (hotpath) or timed "
                        "runs kept as the min (e2e); default 3")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-verify", action="store_true",
                   help="skip the schedule oracle check (cached-vs-uncached "
                        "for hotpath, flat-vs-object for e2e)")
    p.add_argument("--validate", default=None, metavar="FILE.json",
                   help="only validate an existing bench file's schema")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="compare against this baseline bench file; exits "
                        "6 on regression (noise-aware, ratio mode)")
    p.add_argument("--against", default=None, metavar="CURRENT.json",
                   help="with --compare: diff BASELINE against this "
                        "existing file instead of running the bench")
    p.add_argument("--tolerance", type=float, default=None, metavar="F",
                   help="relative regression tolerance (default 0.30 "
                        "ratio mode, 0.50 absolute mode)")
    p.add_argument("--absolute", action="store_true",
                   help="compare raw throughput numbers instead of "
                        "machine-portable derived ratios")
    p.add_argument("--history", default=None, metavar="FILE.jsonl",
                   help="append-only JSONL perf history (default "
                        "BENCH_history.jsonl next to --out)")
    p.add_argument("--no-history", action="store_true",
                   help="do not append this run to the history file")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "profile",
        help="critical-path profile of one run; 'profile diff' compares "
             "two schedulers (DESIGN.md §13)",
    )
    psub = p.add_subparsers(dest="profile_command")
    _add_common(p)
    p.add_argument("--app", default=None, choices=sorted(APPS))
    p.add_argument("--scheduler", default=None, choices=sorted(SCHEDULERS))
    p.add_argument("--machine", default="bullion-s16",
                   choices=sorted(presets.PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="inject a fault plan (JSON file, see 'faults' cmd)")
    p.add_argument("--top", type=int, default=5,
                   help="how many top critical-path tasks to list")
    p.add_argument("--json", default=None, metavar="OUT.json",
                   help="also write the full profile as JSON")
    p.add_argument("--perfetto", default=None, metavar="TRACE.json",
                   help="also write a Chrome trace with the critical "
                        "path as a highlighted track")
    p.add_argument("--capacity", type=int, default=1 << 20,
                   help="event ring-buffer capacity (default 1Mi events)")
    p.set_defaults(fn=cmd_profile)

    d = psub.add_parser(
        "diff",
        help="differential profile: run two schedulers, attribute the "
             "makespan delta by component",
    )
    _add_common(d)
    d.add_argument("--app", required=True, choices=sorted(APPS))
    d.add_argument("-a", "--a", required=True, dest="a", metavar="SCHED",
                   choices=sorted(SCHEDULERS), help="baseline scheduler")
    d.add_argument("-b", "--b", required=True, dest="b", metavar="SCHED",
                   choices=sorted(SCHEDULERS), help="candidate scheduler")
    d.add_argument("--machine", default="bullion-s16",
                   choices=sorted(presets.PRESETS))
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="inject the same fault plan into both runs")
    d.add_argument("--top", type=int, default=8,
                   help="how many per-task moves to list")
    d.add_argument("--json", default=None, metavar="OUT.json",
                   help="also write the diff as JSON")
    d.set_defaults(fn=cmd_profile_diff)

    p = sub.add_parser(
        "verify",
        help="differential-oracle verification (fuzz / replay / diff)",
    )
    vsub = p.add_subparsers(dest="verify_command", required=True)

    v = vsub.add_parser(
        "fuzz",
        help="random programs/topologies/faults diffed against the oracle",
    )
    v.add_argument("--seeds", type=int, default=50,
                   help="number of fuzz seeds (default 50)")
    v.add_argument("--budget", type=_parse_budget, default=None,
                   metavar="120s|2m",
                   help="wall-clock budget; stop early when exceeded")
    v.add_argument("--policies", nargs="+", default=None,
                   help="restrict to these policy labels "
                        "(default: the full matrix)")
    v.add_argument("--out-dir", default="verify-repros",
                   help="directory for divergence repro files "
                        "(default verify-repros/)")
    v.add_argument("-v", "--verbose", action="store_true",
                   help="print one progress line per seed")
    v.add_argument("--engine", default=None,
                   choices=["object", "flat", "both"],
                   help="production fluid engine to diff against the "
                        "oracle (default: simulator default); 'both' also "
                        "demands exact flat-vs-object bit identity")
    v.set_defaults(fn=cmd_verify)

    v = vsub.add_parser(
        "replay",
        help="re-run serialized cases (repro files, corpus entries)",
    )
    v.add_argument("paths", nargs="+", metavar="FILE|DIR",
                   help="case files, or directories of *.json cases")
    v.add_argument("--engine", default=None,
                   choices=["object", "flat", "both"],
                   help="production fluid engine to diff against the "
                        "oracle (default: simulator default); 'both' also "
                        "demands exact flat-vs-object bit identity")
    v.add_argument("--out-dir", default=None, metavar="DIR",
                   help="serialize diverging cases to DIR (CI artifacts)")
    v.set_defaults(fn=cmd_verify)

    v = vsub.add_parser(
        "diff",
        help="diff one production run against the reference oracle",
    )
    v.add_argument("--app", required=True, choices=sorted(APPS))
    v.add_argument("--scheduler", required=True, choices=sorted(SCHEDULERS))
    v.add_argument("--machine", default="two-socket",
                   choices=sorted(presets.PRESETS))
    v.add_argument("--seed", type=int, default=0)
    v.add_argument("--window", type=int, default=None,
                   help="RGP window size (rgp schedulers only)")
    v.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="inject a fault plan during the diffed run")
    v.add_argument("--out", default=None, metavar="DIR",
                   help="serialize the case (divergent or not) to DIR")
    v.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "serve",
        help="boot the fault-tolerant simulation job service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8023,
                   help="listen port (0 = pick a free one; default 8023)")
    p.add_argument("--workers", type=int, default=2,
                   help="simulation worker processes (default 2)")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="bounded admission queue size (default 64)")
    p.add_argument("--poison-threshold", type=int, default=2,
                   help="worker crashes before a job is quarantined "
                        "(default 2)")
    p.add_argument("--rate", type=float, default=0.0,
                   help="per-tenant admission rate in jobs/s "
                        "(0 disables quotas; default 0)")
    p.add_argument("--burst", type=float, default=None,
                   help="per-tenant token-bucket burst (default: rate)")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-job deadline in seconds")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   help="SIGTERM drain grace period (default 10s)")
    p.add_argument("--data-dir", default=None, metavar="DIR",
                   help="persistence root (result cache, journal, "
                        "quarantine); omit for in-memory only")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit one job to a running service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8023)
    p.add_argument("--spec", default=None, metavar="SPEC.json",
                   help="full job spec file (overrides the flags below)")
    p.add_argument("--app", default=None, choices=sorted(APPS))
    p.add_argument("--scheduler", default=None, choices=sorted(SCHEDULERS))
    p.add_argument("--machine", default="two-socket",
                   choices=sorted(presets.PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="fault plan injected into the simulated machine")
    p.add_argument("--tenant", default=None)
    p.add_argument("--deadline", type=float, default=None,
                   help="per-job deadline in seconds")
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.add_argument("--wait-timeout", type=float, default=None)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("apps", help="list apps/schedulers/machines")
    p.set_defaults(fn=cmd_apps)

    p = sub.add_parser("analyze",
                       help="schedule report for one app/scheduler run")
    _add_common(p)
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--scheduler", required=True, choices=sorted(SCHEDULERS))
    p.add_argument("--machine", default="bullion-s16",
                   choices=sorted(presets.PRESETS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dot", default=None, help="write the TDG as DOT")
    p.add_argument("--dot-max-nodes", type=int, default=2000)
    p.set_defaults(fn=cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        if getattr(args, "debug", False):
            raise
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    raise SystemExit(main())
