"""Lazy build-and-load of the C twin of the interconnect solver.

``_csolve.c`` re-implements :meth:`Interconnect._solve` in C with the
exact same floating-point operation order, so the two produce
bit-identical rates (see the contract comment at the top of the C file).
This module compiles it on first use with whatever system C compiler is
available and loads it through :mod:`ctypes` — no build system, no
package installs, and any failure (no compiler, read-only filesystem,
exotic platform) silently falls back to the pure-python solver.

Environment switches:

``REPRO_PURE_SOLVER=1``
    Never build or use the C solver (pure-python only).
``REPRO_CSOLVE_DIR``
    Directory for the compiled artifact (default: alongside the C
    source, falling back to a per-user temp directory).
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import sys
import tempfile
from pathlib import Path

_SRC = Path(__file__).with_name("_csolve.c")
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]

_fn = None
_failed = False


def _build_dir() -> Path:
    env = os.environ.get("REPRO_CSOLVE_DIR")
    if env:
        return Path(env)
    return _SRC.parent


def _compile(out: Path) -> bool:
    """Compile the solver into ``out``; True on success."""
    for cc in ("cc", "gcc", "clang"):
        tmp = out.with_name(
            f".{out.name}.{os.getpid()}.tmp"
        )
        try:
            res = subprocess.run(
                [cc, *_CFLAGS, "-o", str(tmp), str(_SRC)],
                capture_output=True,
                timeout=60,
            )
            if res.returncode == 0 and tmp.exists():
                os.replace(tmp, out)  # atomic vs concurrent builders
                return True
        except (OSError, subprocess.TimeoutExpired):
            pass
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
    return False


def _load_from(so: Path) -> ctypes.CFUNCTYPE | None:
    lib = ctypes.CDLL(str(so))
    fn = lib.repro_solve
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_int,       # n
        ctypes.c_void_p,    # sockets (int64*)
        ctypes.c_void_p,    # nodes (int64*)
        ctypes.c_void_p,    # groups (int64*)
        ctypes.c_int,       # n_nodes
        ctypes.c_int,       # n_sock
        ctypes.c_void_p,    # bw (double*)
        ctypes.c_void_p,    # eff (double*, row-major)
        ctypes.c_void_p,    # link_bw (double* or NULL)
        ctypes.c_double,    # core_fraction (< 0 disables)
        ctypes.c_void_p,    # out (double*)
    ]
    return fn


def load():
    """Return the compiled ``repro_solve`` or None (pure-python mode).

    Caches the outcome process-wide: one build attempt per process, and
    a stale artifact (older than the C source) is rebuilt.
    """
    global _fn, _failed
    if _fn is not None or _failed:
        return _fn
    if os.environ.get("REPRO_PURE_SOLVER"):
        _failed = True
        return None
    try:
        tag = f"{sys.implementation.cache_tag or 'py'}"
        candidates = [
            _build_dir() / f"_csolve-{tag}.so",
            Path(tempfile.gettempdir())
            / f"repro-csolve-{os.getuid()}"
            / f"_csolve-{tag}.so",
        ]
        src_mtime = _SRC.stat().st_mtime
        for so in candidates:
            try:
                if so.exists() and so.stat().st_mtime >= src_mtime:
                    _fn = _load_from(so)
                    return _fn
                so.parent.mkdir(parents=True, exist_ok=True)
                if _compile(so):
                    _fn = _load_from(so)
                    return _fn
            except OSError:
                continue
    except Exception:
        pass
    _failed = True
    return None
