"""NUMA machine model: topology, page-level memory placement, interconnect.

This package is the hardware substrate of the reproduction.  The paper runs
on a real Atos bullion S16; we model its observable behaviour — where pages
live, how fast a socket reaches each memory node, and how concurrent
accesses share memory-controller bandwidth (see DESIGN.md §2, §4).
"""

from .interconnect import Interconnect, StreamKey
from .memory import DEFAULT_PAGE_SIZE, UNBOUND, MemoryManager, RegionPlacement
from .presets import (
    DEFAULT_NIC_FRACTION,
    DEFAULT_NODE_BANDWIDTH,
    bullion_s16,
    by_name,
    cluster,
    cluster16,
    cluster64,
    custom,
    four_socket,
    single_socket,
    two_socket,
)
from .serialize import (
    load_topology,
    parse_numactl_hardware,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from .topology import (
    LOCAL_DISTANCE,
    ClusterTopology,
    NumaTopology,
    cluster_distance_matrix,
    hierarchical_distance_matrix,
    uniform_distance_matrix,
)

__all__ = [
    "DEFAULT_NIC_FRACTION",
    "DEFAULT_NODE_BANDWIDTH",
    "DEFAULT_PAGE_SIZE",
    "LOCAL_DISTANCE",
    "UNBOUND",
    "ClusterTopology",
    "Interconnect",
    "MemoryManager",
    "NumaTopology",
    "RegionPlacement",
    "StreamKey",
    "bullion_s16",
    "by_name",
    "cluster",
    "cluster16",
    "cluster64",
    "cluster_distance_matrix",
    "custom",
    "four_socket",
    "hierarchical_distance_matrix",
    "load_topology",
    "parse_numactl_hardware",
    "save_topology",
    "single_socket",
    "topology_from_dict",
    "topology_to_dict",
    "two_socket",
    "uniform_distance_matrix",
]
