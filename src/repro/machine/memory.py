"""Page-granularity NUMA memory model with deferred (first-touch) allocation.

The paper's runtime uses *deferred allocation*: the memory backing a task's
output is not physically allocated until the task placement is known; the
pages are then bound to the NUMA node of the socket executing the producer
task.  :class:`MemoryManager` models exactly that:

* a :class:`~repro.runtime.data.DataObject`-sized region is registered and
  split into pages (default 4 KiB);
* pages start *unbound*;
* ``touch(obj, node, offset, length)`` binds the still-unbound pages of the
  range to ``node`` (first touch wins; later touches do not move pages);
* ``node_bytes_of_range`` reports, for a byte range, how many bytes live on
  each node — this is what the locality-aware scheduler weighs and what the
  interconnect model charges.

Explicit binding (``bind``) and page migration (``migrate``) are provided
for the expert-programmer policy and for ablations.

Placement cache (DESIGN.md §9): ``node_bytes_of_range`` is the scheduling
hot path — every LAS decision and every task start re-queries it.  The
manager therefore memoises query results behind per-object *version
counters*: a version bumps only when the object's placement actually
changes (a first-touch that binds new pages, an explicit bind, a
migration, an interleave), so queries against a settled object collapse
into a dict lookup.  ``cache=False`` restores the always-recompute
behaviour, and ``REPRO_CHECK_CACHE=1`` (or ``check=True``) turns every hit
into an oracle check against a fresh recompute.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..errors import MemoryError_

#: Default page size, bytes (matches the common 4 KiB small page).
DEFAULT_PAGE_SIZE = 4096

#: Sentinel node id for a page that has not been first-touched yet.
UNBOUND = -1


def _check_cache_env() -> bool:
    """Oracle mode default: ``REPRO_CHECK_CACHE=1`` in the environment."""
    return os.environ.get("REPRO_CHECK_CACHE", "").strip() not in ("", "0")


@dataclass(frozen=True)
class RegionPlacement:
    """Per-node byte counts for a byte range of one data object."""

    bytes_per_node: np.ndarray  # shape (n_nodes,), int64
    unbound_bytes: int

    @property
    def total_bound(self) -> int:
        return int(self.bytes_per_node.sum())

    def node_items(self) -> list[tuple[int, int]]:
        """``[(node, bytes), ...]`` for nodes actually holding bytes.

        Computed once and cached on the instance: placements are immutable
        and shared through the range cache, so the hot consumers
        (``traffic_streams``, LAS weighting) skip per-query numpy scans.
        """
        items = self.__dict__.get("_node_items")
        if items is None:
            items = [
                (n, int(b))
                for n, b in enumerate(self.bytes_per_node.tolist())
                if b
            ]
            object.__setattr__(self, "_node_items", items)
        return items

    def dominant_node(self) -> int | None:
        """Node holding the most bytes, or ``None`` if nothing is bound."""
        if self.total_bound == 0:
            return None
        return int(np.argmax(self.bytes_per_node))


class MemoryManager:
    """Tracks the NUMA node of every page of every registered object."""

    def __init__(
        self,
        n_nodes: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        cache: bool = True,
        check: bool | None = None,
    ) -> None:
        if n_nodes < 1:
            raise MemoryError_(f"need at least one node, got {n_nodes}")
        if page_size < 1:
            raise MemoryError_(f"page size must be positive, got {page_size}")
        self.n_nodes = int(n_nodes)
        self.page_size = int(page_size)
        #: object key -> int8/int32 array of page->node (UNBOUND where untouched)
        self._pages: dict[int, np.ndarray] = {}
        self._sizes: dict[int, int] = {}
        #: running count of bound bytes per node
        self.bytes_on_node = np.zeros(self.n_nodes, dtype=np.int64)
        #: number of first-touch page bindings performed
        self.touch_count = 0
        #: number of pages moved by migrate()
        self.migrated_pages = 0
        # Placement cache: per-object version counters plus memo tables.
        # ``_ver[key]`` bumps on every placement change of the object, so a
        # memo entry is valid iff it was computed at the current version.
        self.cache_enabled = bool(cache)
        self.check_cache = _check_cache_env() if check is None else bool(check)
        self._ver: dict[int, int] = {}
        #: object key -> count of still-unbound pages; lets ``touch`` on a
        #: fully-bound object (every read of settled data) return without
        #: touching the page array.
        self._unbound: dict[int, int] = {}
        #: (key, offset, length) -> (version, RegionPlacement)
        self._range_cache: dict[tuple[int, int, int], tuple[int, RegionPlacement]] = {}
        #: task object -> (version signature, per_node, unbound); owned here
        #: so placement mutations invalidate it, filled by runtime.cost.
        self.task_cache: dict[object, tuple[tuple[int, ...], np.ndarray, int]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: Verification probe (repro.verify.InvariantChecker, or None).
        #: Notified after every placement mutation; never installed by
        #: default, so unverified runs pay one attribute check per mutation.
        self.probe = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, key: int, size_bytes: int) -> None:
        """Register an object of ``size_bytes`` bytes under ``key``.

        All its pages start unbound (virtual allocation only).
        """
        if key in self._pages:
            raise MemoryError_(f"object {key} already registered")
        if size_bytes <= 0:
            raise MemoryError_(f"object size must be positive, got {size_bytes}")
        n_pages = -(-size_bytes // self.page_size)  # ceil div
        self._pages[key] = np.full(n_pages, UNBOUND, dtype=np.int32)
        self._sizes[key] = int(size_bytes)
        self._ver[key] = 0
        self._unbound[key] = n_pages

    def is_registered(self, key: int) -> bool:
        return key in self._pages

    def size_of(self, key: int) -> int:
        self._check_key(key)
        return self._sizes[key]

    def _check_key(self, key: int) -> None:
        if key not in self._pages:
            raise MemoryError_(f"unknown object {key}")

    def _page_range(self, key: int, offset: int, length: int | None) -> slice:
        size = self._sizes[key]
        if length is None:
            length = size - offset
        if offset < 0 or length < 0 or offset + length > size:
            raise MemoryError_(
                f"range [{offset}, {offset + length}) outside object "
                f"{key} of size {size}"
            )
        if length == 0:
            return slice(0, 0)
        first = offset // self.page_size
        last = -(-(offset + length) // self.page_size)  # ceil
        return slice(first, last)

    # ------------------------------------------------------------------
    # Placement cache
    # ------------------------------------------------------------------
    def object_version(self, key: int) -> int:
        """Placement version of an object (bumps on every placement change)."""
        self._check_key(key)
        return self._ver[key]

    def _invalidate(self, key: int) -> None:
        """The object's placement changed: retire its memoised queries."""
        self._ver[key] += 1

    @property
    def cache_entries(self) -> int:
        """Number of memoised range queries currently held (diagnostics)."""
        return len(self._range_cache)

    # ------------------------------------------------------------------
    # Placement changes
    # ------------------------------------------------------------------
    def touch(
        self, key: int, node: int, offset: int = 0, length: int | None = None
    ) -> int:
        """First-touch the byte range: bind its *unbound* pages to ``node``.

        Returns the number of pages newly bound.  Already-bound pages are
        left where they are (first touch wins).
        """
        self._check_node(node)
        self._check_key(key)
        if self._unbound[key] == 0:
            if self.check_cache and int(
                (self._pages[key] == UNBOUND).sum()
            ) != 0:
                raise MemoryError_(
                    f"unbound-page counter diverged for object {key}: "
                    "counter says fully bound, pages disagree"
                )
            return 0  # fully bound: a touch can never move pages
        pages = self._pages[key]
        sl = self._page_range(key, offset, length)
        window = pages[sl]
        newly = window == UNBOUND
        n_new = int(newly.sum())
        if n_new:
            window[newly] = node
            self._unbound[key] -= n_new
            self.bytes_on_node[node] += n_new * self.page_size
            self.touch_count += n_new
            self._invalidate(key)
            if self.probe is not None:
                self.probe.on_memory_op(self, "touch", key)
        return n_new

    def bind(
        self, key: int, node: int, offset: int = 0, length: int | None = None
    ) -> None:
        """Explicitly bind a range to ``node``, moving pages if necessary.

        Models ``numactl``/``move_pages`` style placement by an expert
        programmer.
        """
        self._check_node(node)
        self._check_key(key)
        pages = self._pages[key]
        sl = self._page_range(key, offset, length)
        window = pages[sl]
        changed = False
        for old in np.unique(window):
            if old == node:
                continue
            changed = True
            count = int((window == old).sum())
            if old != UNBOUND:
                self.bytes_on_node[old] -= count * self.page_size
                self.migrated_pages += count
            else:
                self._unbound[key] -= count
            self.bytes_on_node[node] += count * self.page_size
        window[:] = node
        if changed:
            self._invalidate(key)
            if self.probe is not None:
                self.probe.on_memory_op(self, "bind", key)

    def migrate(self, key: int, node: int) -> int:
        """Migrate all *bound* pages of an object to ``node``.

        Unbound pages stay unbound.  Returns pages moved.
        """
        self._check_node(node)
        self._check_key(key)
        pages = self._pages[key]
        moving = (pages != UNBOUND) & (pages != node)
        n_moved = int(moving.sum())
        if n_moved:
            for old in np.unique(pages[moving]):
                count = int((pages[moving] == old).sum())
                self.bytes_on_node[old] -= count * self.page_size
            pages[moving] = node
            self.bytes_on_node[node] += n_moved * self.page_size
            self.migrated_pages += n_moved
            self._invalidate(key)
            if self.probe is not None:
                self.probe.on_memory_op(self, "migrate", key)
        return n_moved

    def interleave(self, key: int, nodes: list[int] | None = None) -> None:
        """Bind the object's pages round-robin across ``nodes``.

        Models ``numactl --interleave``; used for externally initialised
        read-only inputs.
        """
        self._check_key(key)
        if nodes is None:
            nodes = list(range(self.n_nodes))
        if not nodes:
            raise MemoryError_("interleave needs at least one node")
        for n in nodes:
            self._check_node(n)
        pages = self._pages[key]
        for i in range(len(pages)):
            self._rebind_page(pages, i, nodes[i % len(nodes)])
        self._unbound[key] = 0  # every page is bound after an interleave
        self._invalidate(key)
        if self.probe is not None:
            self.probe.on_memory_op(self, "interleave", key)

    def _rebind_page(self, pages: np.ndarray, idx: int, node: int) -> None:
        old = int(pages[idx])
        if old == node:
            return
        if old != UNBOUND:
            self.bytes_on_node[old] -= self.page_size
            self.migrated_pages += 1
        self.bytes_on_node[node] += self.page_size
        pages[idx] = node

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise MemoryError_(f"node {node} out of range [0, {self.n_nodes})")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_bytes_of_range(
        self, key: int, offset: int = 0, length: int | None = None
    ) -> RegionPlacement:
        """Bytes of the range living on each node (page-rounded interior).

        Partial first/last pages are attributed proportionally to the bytes
        of the access that fall inside the page, so the totals sum exactly
        to the requested length.

        Results are memoised per (object, range) and stay valid until the
        object's placement version changes; the returned byte array is
        read-only (copy it before mutating).
        """
        ver = self._ver.get(key)
        if ver is None:
            self._check_key(key)
        if length is None:
            length = self._sizes[key] - offset
        if not self.cache_enabled:
            return self._compute_range(key, offset, length)
        cache_key = (key, offset, length)
        hit = self._range_cache.get(cache_key)
        if hit is not None and hit[0] == ver:
            self.cache_hits += 1
            if self.check_cache:
                fresh = self._compute_range(key, offset, length)
                if (
                    fresh.unbound_bytes != hit[1].unbound_bytes
                    or not np.array_equal(fresh.bytes_per_node, hit[1].bytes_per_node)
                ):
                    raise MemoryError_(
                        f"placement-cache divergence on object {key} range "
                        f"[{offset}, {offset + length}): cached {hit[1]} "
                        f"vs recomputed {fresh}"
                    )
            return hit[1]
        self.cache_misses += 1
        placement = self._compute_range(key, offset, length)
        self._range_cache[cache_key] = (ver, placement)
        return placement

    def _compute_range(self, key: int, offset: int, length: int) -> RegionPlacement:
        sl = self._page_range(key, offset, length)
        if sl.stop == sl.start:
            per_node = np.zeros(self.n_nodes, dtype=np.int64)
            per_node.setflags(write=False)
            return RegionPlacement(bytes_per_node=per_node, unbound_bytes=0)
        window = self._pages[key][sl].tolist()
        # Per-page overlap with [offset, offset+length): full pages except
        # possibly the first and last.  Ranges here are a handful of pages,
        # so a plain loop beats the vectorised form (exact int math either
        # way).
        page_size = self.page_size
        end = offset + length
        last = len(window) - 1
        acc = [0] * self.n_nodes
        unbound = 0
        for i, nd in enumerate(window):
            if 0 < i < last:
                ob = page_size
            else:
                s = (sl.start + i) * page_size
                lo = s if s > offset else offset
                hi = s + page_size
                if hi > end:
                    hi = end
                ob = hi - lo
            if nd == UNBOUND:
                unbound += ob
            else:
                acc[nd] += ob
        per_node = np.array(acc, dtype=np.int64)
        per_node.setflags(write=False)
        return RegionPlacement(bytes_per_node=per_node, unbound_bytes=unbound)

    def page_nodes(self, key: int) -> np.ndarray:
        """Read-only view of the page->node map of an object."""
        self._check_key(key)
        view = self._pages[key].view()
        view.setflags(write=False)
        return view

    def fraction_bound(self, key: int) -> float:
        """Fraction of the object's pages that have been bound."""
        pages = self._pages[key]
        if len(pages) == 0:
            return 1.0
        return float((pages != UNBOUND).mean())

    def reset_placement(self) -> None:
        """Unbind every page of every object (fresh run, same registry)."""
        for pages in self._pages.values():
            pages[:] = UNBOUND
        self.bytes_on_node[:] = 0
        self.touch_count = 0
        self.migrated_pages = 0
        for key in self._ver:
            self._ver[key] += 1
        self._range_cache.clear()
        self.task_cache.clear()
