"""Bandwidth/latency model of the NUMA interconnect with contention.

The simulator charges a task's memory traffic as fluid *streams*: one stream
per (task, memory node) pair.  The interconnect answers one question: given
which streams are active right now, at what rate (bytes per time unit) does
each stream progress?

Model (processor sharing per memory controller):

* each memory node ``n`` has a peak bandwidth ``B_n`` (from the topology);
* a stream from socket ``s`` to node ``n`` has a *distance efficiency*
  ``e = bandwidth_factor(s, n) = local_dist / dist(s, n)`` — remote links
  move fewer bytes per unit time;
* a node serving ``k`` concurrent streams gives each an equal share of its
  controller, so the stream's rate is ``e * B_n / k``.

This captures the two first-order NUMA effects the paper exploits: remote
accesses are slower (distance factor), and piling data on one node serialises
all its consumers (contention) — the reason locality-aware placement must
*also* balance data across nodes to win.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topology import NumaTopology


@dataclass(frozen=True)
class StreamKey:
    """One fluid stream: a task (``group``) on ``socket`` reading/writing
    memory node ``node``.  Streams with the same group belong to the same
    running task and share that task's core bandwidth."""

    socket: int
    node: int
    group: int = 0


def _waterfill(caps: np.ndarray, budget: float) -> np.ndarray:
    """Max-min fair rates under per-stream caps and a total budget.

    If the caps sum to less than the budget every stream runs at its cap;
    otherwise streams are filled lowest-cap first, each receiving at most
    an equal share of what remains (the classic water-filling recursion).
    """
    total = caps.sum()
    if total <= budget:
        return caps.copy()
    rates = np.empty_like(caps)
    order = np.argsort(caps, kind="stable")
    remaining = budget
    left = len(caps)
    for i in order:
        share = remaining / left
        r = caps[i] if caps[i] < share else share
        rates[i] = r
        remaining -= r
        left -= 1
    return rates


class Interconnect:
    """Computes instantaneous stream rates under processor sharing.

    Parameters
    ----------
    topology:
        Machine description (distances, per-node peak bandwidth).
    remote_penalty_exp:
        Exponent applied to the distance efficiency; ``1.0`` is the plain
        SLIT reading, larger values model machines whose remote links
        degrade faster than the SLIT ratio suggests (ablation knob).
    latency_cost_per_access:
        Fixed time charged once per (task, node) stream, scaled by
        ``dist/local``; models the latency component of an access burst.
    """

    def __init__(
        self,
        topology: NumaTopology,
        remote_penalty_exp: float = 1.0,
        latency_cost_per_access: float = 0.0,
        link_fraction: float | None = 0.45,
        core_fraction: float | None = 0.35,
    ) -> None:
        self.topology = topology
        self.remote_penalty_exp = float(remote_penalty_exp)
        self.latency_cost_per_access = float(latency_cost_per_access)
        if link_fraction is not None and link_fraction <= 0:
            raise ValueError("link_fraction must be positive or None")
        #: Each socket's off-socket (QPI/BCS) link bandwidth as a fraction
        #: of a node's local bandwidth; all remote streams touching the
        #: socket (either side) share it.  ``None`` disables the constraint.
        self.link_fraction = link_fraction
        if core_fraction is not None and core_fraction <= 0:
            raise ValueError("core_fraction must be positive or None")
        #: A single core's achievable memory bandwidth as a fraction of a
        #: node's peak (one core cannot saturate a memory controller; with
        #: the default 0.35 about three streaming cores do).  All streams
        #: of one task share this budget.  ``None`` disables the constraint.
        self.core_fraction = core_fraction
        n = topology.n_sockets
        # Precompute efficiency matrix eff[socket, node] in [0, 1].
        eff = np.empty((n, n), dtype=np.float64)
        for s in range(n):
            for m in range(n):
                eff[s, m] = topology.bandwidth_factor(s, m) ** self.remote_penalty_exp
        self._eff = eff
        self._bw = topology.node_bandwidth
        self._link_bw = (
            None
            if link_fraction is None
            else topology.node_bandwidth * float(link_fraction)
        )

    def efficiency(self, socket: int, node: int) -> float:
        """Distance efficiency of a socket->node stream (1.0 = local)."""
        return float(self._eff[socket, node])

    def access_latency(self, socket: int, node: int) -> float:
        """Fixed start-up cost of one stream (0 unless configured)."""
        if self.latency_cost_per_access == 0.0:
            return 0.0
        d = self.topology.dist(socket, node)
        local = self.topology.dist(node, node)
        return self.latency_cost_per_access * d / local

    def stream_rates(self, streams: list[StreamKey]) -> np.ndarray:
        """Instantaneous rate of each active stream, aligned with input.

        Max-min fair allocation (progressive filling) under three families
        of constraints:

        * per-stream cap ``efficiency * B_n`` — a single stream cannot beat
          its distance-degraded point-to-point bandwidth;
        * per-node budget ``B_n`` — the memory controller;
        * per-socket link budget ``link_fraction * B_s`` — all *remote*
          streams entering or leaving a socket share its interconnect link
          (this is what makes scattered placements pay an aggregate price,
          not just a per-stream one);
        * per-task budget ``core_fraction * B`` — all streams of one task
          (= one core) share the core's achievable bandwidth.

        All unfrozen streams grow at the same rate; when a resource
        saturates, its streams freeze; bandwidth they cannot absorb keeps
        flowing to the others (water-filling).
        """
        if not streams:
            return np.empty(0, dtype=np.float64)
        n = len(streams)
        nodes = np.fromiter((s.node for s in streams), dtype=np.int64, count=n)
        sockets = np.fromiter((s.socket for s in streams), dtype=np.int64, count=n)
        caps = self._eff[sockets, nodes] * self._bw[nodes]
        remote = sockets != nodes

        n_sock = self.topology.n_sockets
        rates = np.zeros(n, dtype=np.float64)
        active = np.ones(n, dtype=bool)
        rem_node = self._bw.astype(np.float64).copy()
        rem_link = self._link_bw.copy() if self._link_bw is not None else None
        rem_core = None
        groups = None
        if self.core_fraction is not None:
            groups = np.fromiter(
                (s.group for s in streams), dtype=np.int64, count=n
            )
            _, groups = np.unique(groups, return_inverse=True)
            n_groups = int(groups.max()) + 1
            # Core budget scaled by the *local* node bandwidth of the socket.
            per_stream = self.core_fraction * self._bw[sockets]
            core_budget0 = np.zeros(n_groups)
            np.maximum.at(core_budget0, groups, per_stream)
            rem_core = core_budget0.copy()
        eps = 1e-12

        for _ in range(2 * n + 2 * n_sock + 2):  # bounded; each pass freezes >=1
            if not active.any():
                break
            idx = np.flatnonzero(active)
            # Uniform growth delta limited by the tightest constraint.
            node_users = np.bincount(nodes[idx], minlength=n_sock)
            deltas = [float((caps[idx] - rates[idx]).min())]
            used_nodes = np.flatnonzero(node_users)
            deltas.append(float((rem_node[used_nodes] / node_users[used_nodes]).min()))
            link_users = None
            if rem_link is not None:
                ridx = idx[remote[idx]]
                if len(ridx):
                    link_users = (
                        np.bincount(sockets[ridx], minlength=n_sock)
                        + np.bincount(nodes[ridx], minlength=n_sock)
                    )
                    used_links = np.flatnonzero(link_users)
                    deltas.append(
                        float((rem_link[used_links] / link_users[used_links]).min())
                    )
            group_users = None
            if rem_core is not None:
                group_users = np.bincount(groups[idx], minlength=len(rem_core))
                used_groups = np.flatnonzero(group_users)
                deltas.append(
                    float((rem_core[used_groups] / group_users[used_groups]).min())
                )
            delta = max(0.0, min(deltas))
            rates[idx] += delta
            rem_node -= delta * node_users
            if rem_link is not None and link_users is not None:
                rem_link -= delta * link_users
            if rem_core is not None:
                rem_core -= delta * group_users
            # Freeze: cap reached or any used resource saturated.
            frozen = rates[idx] >= caps[idx] - eps
            frozen |= rem_node[nodes[idx]] <= eps * self._bw[nodes[idx]]
            if rem_link is not None:
                sat_link = rem_link <= eps * np.maximum(self._link_bw, 1.0)
                frozen |= remote[idx] & (sat_link[sockets[idx]] | sat_link[nodes[idx]])
            if rem_core is not None:
                sat_core = rem_core <= eps * np.maximum(core_budget0, 1.0)
                frozen |= sat_core[groups[idx]]
            if not frozen.any():
                frozen[:] = True  # numerical stall guard: freeze everything
            active[idx[frozen]] = False
        # Every stream must end with a strictly positive rate.
        return np.maximum(rates, eps)

    def best_case_time(self, socket: int, bytes_per_node: np.ndarray) -> float:
        """Uncontended time for a task on ``socket`` to move its traffic.

        Used by cost estimators (not by the simulator, which applies real
        contention): sum over nodes of bytes / (B_n * efficiency).
        """
        t = 0.0
        for node, nbytes in enumerate(np.asarray(bytes_per_node)):
            if nbytes > 0:
                t += float(nbytes) / (self._bw[node] * self._eff[socket, node])
                t += self.access_latency(socket, node)
        return t
