"""Bandwidth/latency model of the NUMA interconnect with contention.

The simulator charges a task's memory traffic as fluid *streams*: one stream
per (task, memory node) pair.  The interconnect answers one question: given
which streams are active right now, at what rate (bytes per time unit) does
each stream progress?

Model (processor sharing per memory controller):

* each memory node ``n`` has a peak bandwidth ``B_n`` (from the topology);
* a stream from socket ``s`` to node ``n`` has a *distance efficiency*
  ``e = bandwidth_factor(s, n) = local_dist / dist(s, n)`` — remote links
  move fewer bytes per unit time;
* a node serving ``k`` concurrent streams gives each an equal share of its
  controller, so the stream's rate is ``e * B_n / k``.

This captures the two first-order NUMA effects the paper exploits: remote
accesses are slower (distance factor), and piling data on one node serialises
all its consumers (contention) — the reason locality-aware placement must
*also* balance data across nodes to win.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from . import csolve
from .topology import NumaTopology


@dataclass(frozen=True)
class StreamKey:
    """One fluid stream: a task (``group``) on ``socket`` reading/writing
    memory node ``node``.  Streams with the same group belong to the same
    running task and share that task's core bandwidth."""

    socket: int
    node: int
    group: int = 0


def _waterfill(caps: np.ndarray, budget: float) -> np.ndarray:
    """Max-min fair rates under per-stream caps and a total budget.

    If the caps sum to less than the budget every stream runs at its cap;
    otherwise streams are filled lowest-cap first, each receiving at most
    an equal share of what remains (the classic water-filling recursion).
    """
    total = caps.sum()
    if total <= budget:
        return caps.copy()
    rates = np.empty_like(caps)
    order = np.argsort(caps, kind="stable")
    remaining = budget
    left = len(caps)
    for i in order:
        share = remaining / left
        r = caps[i] if caps[i] < share else share
        rates[i] = r
        remaining -= r
        left -= 1
    return rates


class Interconnect:
    """Computes instantaneous stream rates under processor sharing.

    Parameters
    ----------
    topology:
        Machine description (distances, per-node peak bandwidth).
    remote_penalty_exp:
        Exponent applied to the distance efficiency; ``1.0`` is the plain
        SLIT reading, larger values model machines whose remote links
        degrade faster than the SLIT ratio suggests (ablation knob).
    latency_cost_per_access:
        Fixed time charged once per (task, node) stream, scaled by
        ``dist/local``; models the latency component of an access burst.
    """

    def __init__(
        self,
        topology: NumaTopology,
        remote_penalty_exp: float = 1.0,
        latency_cost_per_access: float = 0.0,
        link_fraction: float | None = 0.45,
        core_fraction: float | None = 0.35,
    ) -> None:
        self.topology = topology
        self.remote_penalty_exp = float(remote_penalty_exp)
        self.latency_cost_per_access = float(latency_cost_per_access)
        if link_fraction is not None and link_fraction <= 0:
            raise ValueError("link_fraction must be positive or None")
        #: Each socket's off-socket (QPI/BCS) link bandwidth as a fraction
        #: of a node's local bandwidth; all remote streams touching the
        #: socket (either side) share it.  ``None`` disables the constraint.
        self.link_fraction = link_fraction
        if core_fraction is not None and core_fraction <= 0:
            raise ValueError("core_fraction must be positive or None")
        #: A single core's achievable memory bandwidth as a fraction of a
        #: node's peak (one core cannot saturate a memory controller; with
        #: the default 0.35 about three streaming cores do).  All streams
        #: of one task share this budget.  ``None`` disables the constraint.
        self.core_fraction = core_fraction
        n = topology.n_sockets
        # The solver arbitrates *resources*: the per-socket memory
        # controllers, plus (on clusters) one NIC per box appended at
        # resource ids >= n_sockets.  On a single box the resource axis is
        # exactly the node axis and nothing below changes shape.
        n_res = getattr(topology, "n_resources", topology.n_nodes)
        res_bw = np.asarray(
            getattr(topology, "resource_bandwidth", topology.node_bandwidth),
            dtype=np.float64,
        )
        # Precompute efficiency matrix eff[socket, resource] in [0, 1].
        eff = np.empty((n, n_res), dtype=np.float64)
        for s in range(n):
            for m in range(n_res):
                eff[s, m] = topology.bandwidth_factor(s, m) ** self.remote_penalty_exp
        self._eff = eff
        self._bw = res_bw
        self._link_bw = (
            None
            if link_fraction is None
            else res_bw * float(link_fraction)
        )
        # Rate memo (DESIGN.md §14): the water-fill result depends only on
        # the *set* of active streams (sockets, nodes, group partition) —
        # never on remaining bytes — and every model parameter above is
        # frozen after construction.  Steady-state simulations re-pose the
        # same set over and over, so memoising by the raw array signature
        # turns most refreshes into a dict lookup.  Cached arrays are
        # returned read-only and shared; callers must not mutate them.
        self._rate_cache: dict[tuple[bytes, bytes, bytes], np.ndarray] = {}
        self.rate_cache_hits = 0
        self.rate_cache_misses = 0
        # Python-scalar mirrors of the model arrays for the solver's hot
        # path (indexing a list of floats is ~10x cheaper than indexing a
        # numpy array element-wise).
        self._eff_l = [list(map(float, row)) for row in eff]
        self._bw_l = [float(b) for b in self._bw]
        self._link_bw_l = (
            None if self._link_bw is None
            else [float(b) for b in self._link_bw]
        )
        # Optional C twin of ``_solve`` (bit-identical; see csolve.py).
        # Flat contiguous model buffers are pre-staged so each miss only
        # converts the per-call stream lists.
        self._cfn = csolve.load()
        self._c_bw = np.ascontiguousarray(self._bw, dtype=np.float64)
        self._c_eff = np.ascontiguousarray(eff, dtype=np.float64).ravel()
        self._c_link = (
            None
            if self._link_bw is None
            else np.ascontiguousarray(self._link_bw, dtype=np.float64)
        )
        self._c_link_ptr = (
            None if self._c_link is None else self._c_link.ctypes.data
        )
        self._c_cf = -1.0 if core_fraction is None else float(core_fraction)
        self._check_csolve = bool(os.environ.get("REPRO_CHECK_CSOLVE"))
        # Reusable per-call scratch (grown on demand): list->buffer fills
        # are single C-level copies, much cheaper than fresh np.array()
        # allocations per miss.
        self._c_scratch_n = 0
        self._c_s = self._c_nd = self._c_g = self._c_out = None

    def efficiency(self, socket: int, node: int) -> float:
        """Distance efficiency of a socket->node stream (1.0 = local)."""
        return float(self._eff[socket, node])

    def access_latency(self, socket: int, node: int) -> float:
        """Fixed start-up cost of one stream (0 unless configured).

        ``node`` may be a NIC resource id on clusters; the network's
        latency is charged at the machine diameter (the farthest socket
        pair) — a message crosses the whole fabric.
        """
        if self.latency_cost_per_access == 0.0:
            return 0.0
        if node >= self.topology.n_sockets:
            d = self.topology.max_distance()
            local = float(self.topology.distance[socket, socket])
        else:
            d = self.topology.dist(socket, node)
            local = self.topology.dist(node, node)
        return self.latency_cost_per_access * d / local

    def stream_rates(self, streams: list[StreamKey]) -> np.ndarray:
        """Instantaneous rate of each active stream, aligned with input.

        Max-min fair allocation (progressive filling) under three families
        of constraints:

        * per-stream cap ``efficiency * B_n`` — a single stream cannot beat
          its distance-degraded point-to-point bandwidth;
        * per-node budget ``B_n`` — the memory controller;
        * per-socket link budget ``link_fraction * B_s`` — all *remote*
          streams entering or leaving a socket share its interconnect link
          (this is what makes scattered placements pay an aggregate price,
          not just a per-stream one);
        * per-task budget ``core_fraction * B`` — all streams of one task
          (= one core) share the core's achievable bandwidth.

        All unfrozen streams grow at the same rate; when a resource
        saturates, its streams freeze; bandwidth they cannot absorb keeps
        flowing to the others (water-filling).
        """
        if not streams:
            return np.empty(0, dtype=np.float64)
        sockets = [s.socket for s in streams]
        nodes = [s.node for s in streams]
        groups = [s.group for s in streams]
        return self.stream_rates_lists(sockets, nodes, groups)

    def stream_rates_arrays(
        self,
        sockets: np.ndarray,
        nodes: np.ndarray,
        groups: np.ndarray,
    ) -> np.ndarray:
        """Array-native :meth:`stream_rates` (one int64 entry per stream).

        Identical arithmetic; the flat simulator engine calls this directly
        with its struct-of-arrays state so no :class:`StreamKey` objects are
        built on the hot path.  The result is *label-invariant* in
        ``groups``: only the partition they induce matters, so callers may
        pass task ids, core ids, or any other stable labels.  May return a
        shared read-only array (the rate memo) — copy before mutating.
        """
        return self.stream_rates_lists(
            sockets.tolist(), nodes.tolist(), groups.tolist()
        )

    def stream_rates_lists(
        self,
        sockets: list[int],
        nodes: list[int],
        groups: list[int],
    ) -> np.ndarray:
        """List-native allocation core behind both rate entry points.

        Plain python lists end to end: at typical active-set sizes (tens
        of streams) interpreter-level loops beat numpy dispatch, and tuple
        keys hash faster than array round-trips.  May return a shared
        read-only array (the rate memo) — copy before mutating.
        """
        n = len(nodes)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        # Canonical memo key: rates are label-invariant in ``groups``, so
        # relabel by first occurrence before hashing.  Two epochs posing
        # the same logical stream pattern under different task ids (object
        # engine) or on different cores (flat engine) then share one entry.
        first: dict[int, int] = {}
        canon = [0] * n
        for i, g in enumerate(groups):
            c = first.get(g)
            if c is None:
                c = len(first)
                first[g] = c
            canon[i] = c
        return self.stream_rates_canon(sockets, nodes, canon)

    def stream_rates_canon(
        self,
        sockets: list[int],
        nodes: list[int],
        canon: list[int],
    ) -> np.ndarray:
        """Rate allocation for *pre-canonicalised* group labels.

        ``canon`` must already be a first-occurrence relabel (0, 1, 2, …
        in stream order) — the flat engine produces labels in that shape
        for free while walking slots, so it skips the relabel pass of
        :meth:`stream_rates_lists`.  May return a shared read-only array
        (the rate memo) — copy before mutating.
        """
        key = (tuple(sockets), tuple(nodes), tuple(canon))
        cached = self._rate_cache.get(key)
        if cached is not None:
            self.rate_cache_hits += 1
            return cached
        self.rate_cache_misses += 1
        rates = None
        if self._cfn is not None:
            rates = self._solve_c(sockets, nodes, canon)
        if rates is None:
            rates = self._solve(sockets, nodes, canon)
        elif self._check_csolve:
            pure = self._solve(sockets, nodes, canon)
            if not np.array_equal(rates, pure):
                raise AssertionError(
                    "csolve divergence: C and python solvers disagree on "
                    f"sockets={sockets} nodes={nodes} groups={canon}: "
                    f"{rates.tolist()} vs {pure.tolist()}"
                )
        if len(self._rate_cache) >= 8192:  # bound the memo footprint
            self._rate_cache.clear()
        rates.setflags(write=False)
        self._rate_cache[key] = rates
        return rates

    def _solve_c(
        self,
        sockets: list[int],
        nodes: list[int],
        groups: list[int],
    ) -> np.ndarray | None:
        """Run the compiled solver; None on capacity overflow (fallback)."""
        n = len(nodes)
        if n > self._c_scratch_n:
            cap = max(2 * n, 256)
            self._c_s = np.empty(cap, dtype=np.int64)
            self._c_nd = np.empty(cap, dtype=np.int64)
            self._c_g = np.empty(cap, dtype=np.int64)
            self._c_out = np.empty(cap, dtype=np.float64)
            self._c_scratch_n = cap
        s, nd, g, out = self._c_s, self._c_nd, self._c_g, self._c_out
        s[:n] = sockets
        nd[:n] = nodes
        g[:n] = groups
        ret = self._cfn(
            n,
            s.ctypes.data,
            nd.ctypes.data,
            g.ctypes.data,
            len(self._bw_l),
            self.topology.n_sockets,
            self._c_bw.ctypes.data,
            self._c_eff.ctypes.data,
            self._c_link_ptr,
            self._c_cf,
            out.ctypes.data,
        )
        if ret != 0:
            return None
        return out[:n].copy()

    def _solve(
        self,
        sockets: list[int],
        nodes: list[int],
        groups: list[int],
    ) -> np.ndarray:
        """Progressive-filling solver over *stream equivalence classes*.

        The allocation is symmetric: two groups (tasks) whose streams form
        the same multiset of ``(socket, node)`` pairs are exchangeable, as
        are two same-pair streams within one group — the deterministic
        fill gives them identical rates at every pass.  So the fill runs
        over collapsed classes ``(group-signature, socket, node)`` with
        multiplicity weights, which shrinks a ~100-stream problem (dozens
        of identical stencil tasks) to a handful of classes, then expands
        the class rates back onto the input streams.  Pure python scalar
        arithmetic with small-int ids and list-indexed tallies throughout:
        at these sizes per-call numpy dispatch overhead and dict-of-tuple
        hashing cost far more than the arithmetic itself.

        ``groups`` must be canonical first-occurrence labels ``0..G-1``
        (as produced by :meth:`stream_rates_lists`).
        """
        n = len(nodes)
        # Group signatures: the multiset of (socket, node) pairs per
        # group, mapped to dense small-int signature ids.
        members: list[list[tuple[int, int]]] = []
        for i in range(n):
            g = groups[i]
            if g == len(members):
                members.append([])
            members[g].append((sockets[i], nodes[i]))
        sig_id: dict[tuple, int] = {}
        sig_of_group: list[int] = []
        sig_tuples: list[tuple] = []
        sig_weight: list[int] = []  # identical groups per signature
        for mem in members:
            sig = tuple(sorted(mem))
            sid = sig_id.get(sig)
            if sid is None:
                sid = len(sig_tuples)
                sig_id[sig] = sid
                sig_tuples.append(sig)
                sig_weight.append(0)
            sig_weight[sid] += 1
            sig_of_group.append(sid)
        # Classes: one per (signature, socket, node) with the in-group
        # multiplicity; w_total = streams of the whole class.
        eff = self._eff_l
        bw = self._bw_l
        cls_sid: list[int] = []
        cls_socket: list[int] = []
        cls_node: list[int] = []
        cls_per_group: list[int] = []
        cls_weight: list[int] = []
        cls_cap: list[float] = []
        class_index: dict[tuple[int, int, int], int] = {}
        for sid, sig in enumerate(sig_tuples):
            counts: dict[tuple[int, int], int] = {}
            for sn in sig:
                counts[sn] = counts.get(sn, 0) + 1
            w = sig_weight[sid]
            for (s, nd), c in counts.items():
                class_index[(sid, s, nd)] = len(cls_sid)
                cls_sid.append(sid)
                cls_socket.append(s)
                cls_node.append(nd)
                cls_per_group.append(c)
                cls_weight.append(w * c)
                cls_cap.append(eff[s][nd] * bw[nd])

        n_classes = len(cls_sid)
        n_sig = len(sig_tuples)
        n_nodes = len(bw)
        rem_node = list(bw)
        link_bw = self._link_bw_l
        has_link = link_bw is not None
        rem_link = list(link_bw) if has_link else []
        n_link = len(rem_link)
        has_core = self.core_fraction is not None
        if has_core:
            # Core budget scaled by the local node bandwidth of the
            # group's socket (max over its sockets, matching the
            # per-stream formulation).
            cf = self.core_fraction
            core_budget0 = [
                cf * max(bw[s] for s, _nd in sig) for sig in sig_tuples
            ]
            rem_core = list(core_budget0)
        eps = 1e-12
        node_floor = [eps * b for b in bw]
        if has_link:
            link_floor = [eps * (b if b > 1.0 else 1.0) for b in link_bw]
        if has_core:
            core_floor = [eps * (b if b > 1.0 else 1.0) for b in core_budget0]

        # One mutable record per class, iterated directly (no index
        # lookups in the fill loop):
        # [rate, cap, node, remote_socket (-1 = local / no link), sid,
        #  weight, per_group]
        recs = [
            [
                0.0,
                cls_cap[ci],
                cls_node[ci],
                cls_socket[ci]
                if has_link and cls_socket[ci] != cls_node[ci]
                else -1,
                cls_sid[ci],
                cls_weight[ci],
                cls_per_group[ci],
            ]
            for ci in range(n_classes)
        ]
        active = recs

        inf = math.inf
        n_sock = self.topology.n_sockets
        for _ in range(2 * n_classes + 2 * n_sock + 2):
            if not active:
                break
            # Uniform growth delta limited by the tightest constraint.
            node_users = [0] * n_nodes
            link_users = [0] * n_link
            sig_users = [0] * n_sig
            delta = inf
            for c in active:
                head = c[1] - c[0]
                if head < delta:
                    delta = head
                nd = c[2]
                w = c[5]
                node_users[nd] += w
                rs = c[3]
                if rs >= 0:
                    link_users[rs] += w
                    link_users[nd] += w
                if has_core:
                    sig_users[c[4]] += c[6]
            for nd in range(n_nodes):
                u = node_users[nd]
                if u:
                    d = rem_node[nd] / u
                    if d < delta:
                        delta = d
            for s in range(n_link):
                u = link_users[s]
                if u:
                    d = rem_link[s] / u
                    if d < delta:
                        delta = d
            if has_core:
                for sid in range(n_sig):
                    u = sig_users[sid]
                    if u:
                        d = rem_core[sid] / u
                        if d < delta:
                            delta = d
            if delta < 0.0:
                delta = 0.0
            for nd in range(n_nodes):
                u = node_users[nd]
                if u:
                    rem_node[nd] -= delta * u
            for s in range(n_link):
                u = link_users[s]
                if u:
                    rem_link[s] -= delta * u
            if has_core:
                for sid in range(n_sig):
                    u = sig_users[sid]
                    if u:
                        rem_core[sid] -= delta * u
            # Apply the growth and freeze in one sweep: cap reached or
            # any used resource saturated.
            still: list[list] = []
            for c in active:
                r = c[0] + delta
                c[0] = r
                if r >= c[1] - eps:
                    continue
                nd = c[2]
                if rem_node[nd] <= node_floor[nd]:
                    continue
                rs = c[3]
                if rs >= 0 and (
                    rem_link[rs] <= link_floor[rs]
                    or rem_link[nd] <= link_floor[nd]
                ):
                    continue
                if has_core and rem_core[c[4]] <= core_floor[c[4]]:
                    continue
                still.append(c)
            if len(still) == len(active):
                break  # numerical stall guard: freeze everything
            active = still

        # Expand class rates back onto streams; every stream ends with a
        # strictly positive rate.
        out = [0.0] * n
        for i in range(n):
            r = recs[class_index[(sig_of_group[groups[i]], sockets[i], nodes[i])]][0]
            out[i] = r if r > eps else eps
        return np.array(out, dtype=np.float64)

    def best_case_time(self, socket: int, bytes_per_node: np.ndarray) -> float:
        """Uncontended time for a task on ``socket`` to move its traffic.

        Used by cost estimators (not by the simulator, which applies real
        contention): sum over nodes of bytes / (B_n * efficiency).
        """
        t = 0.0
        for node, nbytes in enumerate(np.asarray(bytes_per_node)):
            if nbytes > 0:
                t += float(nbytes) / (self._bw[node] * self._eff[socket, node])
                t += self.access_latency(socket, node)
        return t
