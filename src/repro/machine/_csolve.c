/* Progressive-filling max-min solver — C twin of Interconnect._solve.
 *
 * This file is compiled lazily at runtime by repro.machine.csolve with
 * the system C compiler (no build-system dependency); when compilation
 * is impossible the pure-python solver in interconnect.py runs instead.
 *
 * BIT-IDENTITY CONTRACT: every floating-point operation below mirrors
 * the python implementation in interconnect.py `_solve` in the same
 * order on IEEE-754 doubles, so both produce byte-identical rates.  The
 * build deliberately uses -ffp-contract=off (no FMA contraction) and no
 * -ffast-math; keep it that way.  tests/test_machine_interconnect.py
 * replays random configurations through both and requires exact
 * equality.
 *
 * Inputs use canonical first-occurrence group labels 0..G-1, exactly as
 * produced by Interconnect.stream_rates_lists.  Returns 0 on success,
 * nonzero when a static capacity is exceeded (caller falls back to
 * python).
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

#define CAP_STREAMS 4096
#define CAP_NODES 256

/* (socket, node) pair encoded so int64 order == python tuple order */
#define ENC(s, nd) (((int64_t)(s) << 20) | (int64_t)(nd))
#define ENC_S(p) ((int)((p) >> 20))
#define ENC_N(p) ((int)((p) & 0xfffff))

int repro_solve(
    int n,
    const int64_t *sockets,
    const int64_t *nodes,
    const int64_t *groups,
    int n_nodes,
    int n_sock,
    const double *bw,       /* [n_nodes] */
    const double *eff,      /* [n_sock][n_nodes] row-major */
    const double *link_bw,  /* [n_nodes] or NULL */
    double core_fraction,   /* < 0 means disabled */
    double *out)            /* [n] */
{
    if (n <= 0 || n > CAP_STREAMS || n_nodes > CAP_NODES ||
        n_sock > CAP_NODES || n_nodes > (1 << 20))
        return 1;

    int has_link = link_bw != NULL;
    int has_core = core_fraction >= 0.0;

    /* ---- group membership (canonical labels: 0..G-1) ---- */
    static _Thread_local int64_t mem_pool[CAP_STREAMS]; /* encoded pairs */
    static _Thread_local int grp_off[CAP_STREAMS + 1];
    static _Thread_local int grp_len[CAP_STREAMS];
    int G = 0;
    for (int i = 0; i < n; i++) {
        int g = (int)groups[i];
        if (g < 0 || g > G) return 1; /* not canonical */
        if (g == G) { grp_len[G] = 0; G++; }
        grp_len[g]++;
    }
    grp_off[0] = 0;
    for (int g = 0; g < G; g++) grp_off[g + 1] = grp_off[g] + grp_len[g];
    {
        static _Thread_local int fill[CAP_STREAMS];
        memset(fill, 0, (size_t)G * sizeof(int));
        for (int i = 0; i < n; i++) {
            int g = (int)groups[i];
            mem_pool[grp_off[g] + fill[g]++] = ENC(sockets[i], nodes[i]);
        }
    }
    /* sort each group's pairs (insertion sort; groups are tiny) */
    for (int g = 0; g < G; g++) {
        int64_t *a = mem_pool + grp_off[g];
        int len = grp_len[g];
        for (int i = 1; i < len; i++) {
            int64_t v = a[i];
            int j = i - 1;
            while (j >= 0 && a[j] > v) { a[j + 1] = a[j]; j--; }
            a[j + 1] = v;
        }
    }

    /* ---- signature dedup (first-occurrence order) ---- */
    static _Thread_local int sig_rep[CAP_STREAMS];   /* representative grp */
    static _Thread_local int64_t sig_weight[CAP_STREAMS];
    static _Thread_local int sig_of_group[CAP_STREAMS];
    int S = 0;
    for (int g = 0; g < G; g++) {
        int len = grp_len[g];
        const int64_t *a = mem_pool + grp_off[g];
        int sid = -1;
        for (int s = 0; s < S; s++) {
            int rg = sig_rep[s];
            if (grp_len[rg] == len &&
                memcmp(mem_pool + grp_off[rg], a,
                       (size_t)len * sizeof(int64_t)) == 0) {
                sid = s;
                break;
            }
        }
        if (sid < 0) { sid = S++; sig_rep[sid] = g; sig_weight[sid] = 0; }
        sig_weight[sid]++;
        sig_of_group[g] = sid;
    }

    /* ---- classes: one per (sig, socket, node) run ---- */
    static _Thread_local int cls_sid[CAP_STREAMS];
    static _Thread_local int cls_sock[CAP_STREAMS];
    static _Thread_local int cls_node[CAP_STREAMS];
    static _Thread_local int cls_rsock[CAP_STREAMS]; /* -1 = local/no link */
    static _Thread_local int64_t cls_w[CAP_STREAMS];
    static _Thread_local int64_t cls_pg[CAP_STREAMS];
    static _Thread_local double cls_cap[CAP_STREAMS];
    static _Thread_local double cls_rate[CAP_STREAMS];
    static _Thread_local int cls_off_sig[CAP_STREAMS + 1];
    static _Thread_local double core_budget0[CAP_STREAMS];
    int C = 0;
    for (int sid = 0; sid < S; sid++) {
        cls_off_sig[sid] = C;
        int rg = sig_rep[sid];
        const int64_t *a = mem_pool + grp_off[rg];
        int len = grp_len[rg];
        int64_t w = sig_weight[sid];
        int i = 0;
        while (i < len) {
            int64_t p = a[i];
            int c = 1;
            while (i + c < len && a[i + c] == p) c++;
            int s = ENC_S(p), nd = ENC_N(p);
            if (nd >= n_nodes || s >= n_sock) return 1;
            cls_sid[C] = sid;
            cls_sock[C] = s;
            cls_node[C] = nd;
            cls_rsock[C] = (has_link && s != nd) ? s : -1;
            cls_pg[C] = c;
            cls_w[C] = w * c;
            cls_cap[C] = eff[s * n_nodes + nd] * bw[nd];
            cls_rate[C] = 0.0;
            C++;
            i += c;
        }
        if (has_core) {
            double m = bw[ENC_S(a[0])];
            for (int k = 1; k < len; k++) {
                double b = bw[ENC_S(a[k])];
                if (b > m) m = b;
            }
            core_budget0[sid] = core_fraction * m;
        }
    }
    cls_off_sig[S] = C;

    /* ---- progressive filling ---- */
    static _Thread_local double rem_node[CAP_NODES];
    static _Thread_local double node_floor[CAP_NODES];
    static _Thread_local double rem_link[CAP_NODES];
    static _Thread_local double link_floor[CAP_NODES];
    static _Thread_local double rem_core[CAP_STREAMS];
    static _Thread_local double core_floor[CAP_STREAMS];
    static _Thread_local int64_t node_users[CAP_NODES];
    static _Thread_local int64_t link_users[CAP_NODES];
    static _Thread_local int64_t sig_users[CAP_STREAMS];
    static _Thread_local int active[CAP_STREAMS];

    const double eps = 1e-12;
    for (int nd = 0; nd < n_nodes; nd++) {
        rem_node[nd] = bw[nd];
        node_floor[nd] = eps * bw[nd];
    }
    /* Link budgets are consumed by *node* id (a remote class drains both
     * its reader socket's link and its target resource's link), so the
     * array must span all n_nodes resources — sizing it by n_sock reads
     * stale memory once clusters append NIC resources past the sockets. */
    int n_link = has_link ? n_nodes : 0;
    for (int s = 0; s < n_link; s++) {
        rem_link[s] = link_bw[s];
        link_floor[s] = eps * (link_bw[s] > 1.0 ? link_bw[s] : 1.0);
    }
    if (has_core)
        for (int sid = 0; sid < S; sid++) {
            rem_core[sid] = core_budget0[sid];
            core_floor[sid] =
                eps * (core_budget0[sid] > 1.0 ? core_budget0[sid] : 1.0);
        }

    int n_active = C;
    for (int ci = 0; ci < C; ci++) active[ci] = ci;

    int max_pass = 2 * C + 2 * n_sock + 2;
    for (int pass = 0; pass < max_pass; pass++) {
        if (n_active == 0) break;
        memset(node_users, 0, (size_t)n_nodes * sizeof(int64_t));
        if (has_link)
            memset(link_users, 0, (size_t)n_link * sizeof(int64_t));
        if (has_core) memset(sig_users, 0, (size_t)S * sizeof(int64_t));
        double delta = INFINITY;
        for (int k = 0; k < n_active; k++) {
            int ci = active[k];
            double head = cls_cap[ci] - cls_rate[ci];
            if (head < delta) delta = head;
            int nd = cls_node[ci];
            int64_t w = cls_w[ci];
            node_users[nd] += w;
            int rs = cls_rsock[ci];
            if (rs >= 0) {
                link_users[rs] += w;
                link_users[nd] += w;
            }
            if (has_core) sig_users[cls_sid[ci]] += cls_pg[ci];
        }
        for (int nd = 0; nd < n_nodes; nd++) {
            int64_t u = node_users[nd];
            if (u) {
                double d = rem_node[nd] / (double)u;
                if (d < delta) delta = d;
            }
        }
        for (int s = 0; s < n_link; s++) {
            int64_t u = link_users[s];
            if (u) {
                double d = rem_link[s] / (double)u;
                if (d < delta) delta = d;
            }
        }
        if (has_core)
            for (int sid = 0; sid < S; sid++) {
                int64_t u = sig_users[sid];
                if (u) {
                    double d = rem_core[sid] / (double)u;
                    if (d < delta) delta = d;
                }
            }
        if (delta < 0.0) delta = 0.0;
        for (int nd = 0; nd < n_nodes; nd++) {
            int64_t u = node_users[nd];
            if (u) rem_node[nd] -= delta * (double)u;
        }
        for (int s = 0; s < n_link; s++) {
            int64_t u = link_users[s];
            if (u) rem_link[s] -= delta * (double)u;
        }
        if (has_core)
            for (int sid = 0; sid < S; sid++) {
                int64_t u = sig_users[sid];
                if (u) rem_core[sid] -= delta * (double)u;
            }
        /* apply the growth and freeze in one sweep */
        int still = 0;
        for (int k = 0; k < n_active; k++) {
            int ci = active[k];
            double r = cls_rate[ci] + delta;
            cls_rate[ci] = r;
            if (r >= cls_cap[ci] - eps) continue;
            int nd = cls_node[ci];
            if (rem_node[nd] <= node_floor[nd]) continue;
            int rs = cls_rsock[ci];
            if (rs >= 0 && (rem_link[rs] <= link_floor[rs] ||
                            rem_link[nd] <= link_floor[nd]))
                continue;
            if (has_core) {
                int sid = cls_sid[ci];
                if (rem_core[sid] <= core_floor[sid]) continue;
            }
            active[still++] = ci;
        }
        if (still == n_active) break; /* numerical stall guard */
        n_active = still;
    }

    /* ---- expand class rates back onto streams ---- */
    for (int i = 0; i < n; i++) {
        int sid = sig_of_group[(int)groups[i]];
        int ss = (int)sockets[i];
        int nd = (int)nodes[i];
        double r = eps; /* every class run is matched by construction */
        for (int ci = cls_off_sig[sid]; ci < cls_off_sig[sid + 1]; ci++) {
            if (cls_sock[ci] == ss && cls_node[ci] == nd) {
                r = cls_rate[ci];
                break;
            }
        }
        out[i] = r > eps ? r : eps;
    }
    return 0;
}
