"""Ready-made machine models, including the paper's evaluation platform.

The paper evaluates on an Atos Bull **bullion S16** using 8 sockets with
4 cores per socket.  The bullion S16 glues 2-socket modules with Bull's BCS
(eXternal Node Controller) interconnect, so intra-module remote accesses are
cheaper than inter-module ones — a two-level distance matrix.
"""

from __future__ import annotations

from ..errors import TopologyError
from .topology import (
    ClusterTopology,
    NumaTopology,
    cluster_distance_matrix,
    hierarchical_distance_matrix,
    uniform_distance_matrix,
)

#: Peak per-node bandwidth in bytes per simulated time unit.  One simulated
#: time unit is "the time to move DEFAULT_NODE_BANDWIDTH bytes locally";
#: only ratios matter for speedups.
DEFAULT_NODE_BANDWIDTH = 1_000_000.0


def bullion_s16(
    cores_per_socket: int = 4,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
) -> NumaTopology:
    """The paper's machine: 8 sockets x 4 cores, two-level NUMA.

    Distances: 10 local, 16 to the sibling socket of the same module,
    22 across modules (SLIT-style values for a BCS-glued machine).
    """
    return NumaTopology(
        n_sockets=8,
        cores_per_socket=cores_per_socket,
        distance=hierarchical_distance_matrix(8, group_size=2, near=16.0, far=22.0),
        node_bandwidth=node_bandwidth,
        name="bullion-s16",
    )


def two_socket(
    cores_per_socket: int = 8,
    remote: float = 21.0,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
) -> NumaTopology:
    """Commodity dual-socket server (e.g. 2x Xeon), uniform remote distance."""
    return NumaTopology(
        n_sockets=2,
        cores_per_socket=cores_per_socket,
        distance=uniform_distance_matrix(2, remote=remote),
        node_bandwidth=node_bandwidth,
        name="two-socket",
    )


def four_socket(
    cores_per_socket: int = 4,
    remote: float = 20.0,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
) -> NumaTopology:
    """Four-socket glueless machine, uniform remote distance."""
    return NumaTopology(
        n_sockets=4,
        cores_per_socket=cores_per_socket,
        distance=uniform_distance_matrix(4, remote=remote),
        node_bandwidth=node_bandwidth,
        name="four-socket",
    )


def single_socket(
    cores: int = 4, node_bandwidth: float = DEFAULT_NODE_BANDWIDTH
) -> NumaTopology:
    """UMA machine (degenerate case: every access is local)."""
    return NumaTopology(
        n_sockets=1,
        cores_per_socket=cores,
        distance=uniform_distance_matrix(1, remote=10.0),
        node_bandwidth=node_bandwidth,
        name="single-socket",
    )


def custom(
    n_sockets: int,
    cores_per_socket: int,
    remote: float = 20.0,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
    name: str = "custom",
) -> NumaTopology:
    """Uniform-distance machine with arbitrary socket/core counts."""
    return NumaTopology(
        n_sockets=n_sockets,
        cores_per_socket=cores_per_socket,
        distance=uniform_distance_matrix(n_sockets, remote=remote),
        node_bandwidth=node_bandwidth,
        name=name,
    )


#: Default per-box NIC bandwidth as a fraction of one node's bandwidth.
#: A commodity interconnect moves bytes roughly an order of magnitude
#: slower than a local memory controller.
DEFAULT_NIC_FRACTION = 0.125


def cluster(
    n_boxes: int,
    sockets_per_box: int = 2,
    cores_per_socket: int = 4,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
    nic_fraction: float = DEFAULT_NIC_FRACTION,
    near: float = 16.0,
    network: float = 60.0,
    name: str | None = None,
) -> ClusterTopology:
    """A cluster of identical dual-socket NUMA boxes behind a network.

    Distances: 10 local, ``near`` to the sibling socket of the same box,
    ``network`` across boxes; each box's NIC moves ``nic_fraction`` of one
    node's bandwidth.
    """
    if n_boxes < 1:
        raise TopologyError(f"need at least one box, got {n_boxes}")
    return ClusterTopology(
        n_sockets=n_boxes * sockets_per_box,
        cores_per_socket=cores_per_socket,
        distance=cluster_distance_matrix(
            n_boxes, sockets_per_box, near=near, network=network
        ),
        node_bandwidth=node_bandwidth,
        name=name or f"cluster{n_boxes}",
        n_boxes=n_boxes,
        sockets_per_box=sockets_per_box,
        nic_bandwidth=node_bandwidth * nic_fraction,
    )


def cluster16(**kwargs) -> ClusterTopology:
    """16 dual-socket boxes (128 cores) behind a commodity network."""
    kwargs.setdefault("name", "cluster16")
    return cluster(16, **kwargs)


def cluster64(**kwargs) -> ClusterTopology:
    """64 dual-socket boxes (512 cores) behind a commodity network."""
    kwargs.setdefault("name", "cluster64")
    return cluster(64, **kwargs)


PRESETS = {
    "bullion-s16": bullion_s16,
    "two-socket": two_socket,
    "four-socket": four_socket,
    "single-socket": single_socket,
    "cluster16": cluster16,
    "cluster64": cluster64,
}


def by_name(name: str, **kwargs) -> NumaTopology:
    """Look up a preset topology by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; known: {sorted(PRESETS)}"
        ) from None
    return factory(**kwargs)
