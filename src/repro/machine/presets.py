"""Ready-made machine models, including the paper's evaluation platform.

The paper evaluates on an Atos Bull **bullion S16** using 8 sockets with
4 cores per socket.  The bullion S16 glues 2-socket modules with Bull's BCS
(eXternal Node Controller) interconnect, so intra-module remote accesses are
cheaper than inter-module ones — a two-level distance matrix.
"""

from __future__ import annotations

from .topology import (
    NumaTopology,
    hierarchical_distance_matrix,
    uniform_distance_matrix,
)

#: Peak per-node bandwidth in bytes per simulated time unit.  One simulated
#: time unit is "the time to move DEFAULT_NODE_BANDWIDTH bytes locally";
#: only ratios matter for speedups.
DEFAULT_NODE_BANDWIDTH = 1_000_000.0


def bullion_s16(
    cores_per_socket: int = 4,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
) -> NumaTopology:
    """The paper's machine: 8 sockets x 4 cores, two-level NUMA.

    Distances: 10 local, 16 to the sibling socket of the same module,
    22 across modules (SLIT-style values for a BCS-glued machine).
    """
    return NumaTopology(
        n_sockets=8,
        cores_per_socket=cores_per_socket,
        distance=hierarchical_distance_matrix(8, group_size=2, near=16.0, far=22.0),
        node_bandwidth=node_bandwidth,
        name="bullion-s16",
    )


def two_socket(
    cores_per_socket: int = 8,
    remote: float = 21.0,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
) -> NumaTopology:
    """Commodity dual-socket server (e.g. 2x Xeon), uniform remote distance."""
    return NumaTopology(
        n_sockets=2,
        cores_per_socket=cores_per_socket,
        distance=uniform_distance_matrix(2, remote=remote),
        node_bandwidth=node_bandwidth,
        name="two-socket",
    )


def four_socket(
    cores_per_socket: int = 4,
    remote: float = 20.0,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
) -> NumaTopology:
    """Four-socket glueless machine, uniform remote distance."""
    return NumaTopology(
        n_sockets=4,
        cores_per_socket=cores_per_socket,
        distance=uniform_distance_matrix(4, remote=remote),
        node_bandwidth=node_bandwidth,
        name="four-socket",
    )


def single_socket(
    cores: int = 4, node_bandwidth: float = DEFAULT_NODE_BANDWIDTH
) -> NumaTopology:
    """UMA machine (degenerate case: every access is local)."""
    return NumaTopology(
        n_sockets=1,
        cores_per_socket=cores,
        distance=uniform_distance_matrix(1, remote=10.0),
        node_bandwidth=node_bandwidth,
        name="single-socket",
    )


def custom(
    n_sockets: int,
    cores_per_socket: int,
    remote: float = 20.0,
    node_bandwidth: float = DEFAULT_NODE_BANDWIDTH,
    name: str = "custom",
) -> NumaTopology:
    """Uniform-distance machine with arbitrary socket/core counts."""
    return NumaTopology(
        n_sockets=n_sockets,
        cores_per_socket=cores_per_socket,
        distance=uniform_distance_matrix(n_sockets, remote=remote),
        node_bandwidth=node_bandwidth,
        name=name,
    )


PRESETS = {
    "bullion-s16": bullion_s16,
    "two-socket": two_socket,
    "four-socket": four_socket,
    "single-socket": single_socket,
}


def by_name(name: str, **kwargs) -> NumaTopology:
    """Look up a preset topology by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; known: {sorted(PRESETS)}"
        ) from None
    return factory(**kwargs)
