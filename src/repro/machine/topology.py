"""NUMA machine topology: sockets, cores and the inter-socket distance matrix.

A :class:`NumaTopology` is a static description of the machine the simulator
models.  It mirrors what the OS exposes through the ACPI SLIT table: one
memory node per socket, a symmetric distance matrix whose diagonal is the
*local* distance (conventionally 10), and a flat list of cores grouped by
socket.

Distances translate into bandwidth via
:meth:`NumaTopology.bandwidth_factor`: accessing memory at distance ``d``
runs at ``local_distance / d`` of the local bandwidth, the usual first-order
reading of a SLIT entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TopologyError

#: Conventional ACPI SLIT local distance.
LOCAL_DISTANCE = 10.0


@dataclass(frozen=True, eq=False)
class NumaTopology:
    """Immutable description of a NUMA machine.

    Parameters
    ----------
    n_sockets:
        Number of sockets; each socket owns exactly one NUMA memory node
        with node id equal to the socket id.
    cores_per_socket:
        Number of cores per socket.  Core ids are dense and grouped:
        core ``c`` belongs to socket ``c // cores_per_socket``.
    distance:
        ``(n_sockets, n_sockets)`` symmetric matrix of SLIT-style distances.
        The diagonal must be the minimum of each row (local is closest).
    node_bandwidth:
        Peak local bandwidth of each memory node, in bytes per simulated
        time unit.  Scalar values are broadcast to all nodes.
    name:
        Human-readable label used in reports.
    """

    n_sockets: int
    cores_per_socket: int
    distance: np.ndarray
    node_bandwidth: np.ndarray
    name: str = "numa-machine"
    _socket_of_core: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise TopologyError(f"need at least one socket, got {self.n_sockets}")
        if self.cores_per_socket < 1:
            raise TopologyError(
                f"need at least one core per socket, got {self.cores_per_socket}"
            )
        dist = np.asarray(self.distance, dtype=np.float64)
        if dist.shape != (self.n_sockets, self.n_sockets):
            raise TopologyError(
                f"distance matrix shape {dist.shape} does not match "
                f"{self.n_sockets} sockets"
            )
        if not np.allclose(dist, dist.T):
            raise TopologyError("distance matrix must be symmetric")
        if np.any(dist <= 0):
            raise TopologyError("distances must be strictly positive")
        if np.any(np.diag(dist)[:, None] > dist + 1e-12):
            raise TopologyError("local (diagonal) distance must be minimal per row")
        bw = np.broadcast_to(
            np.asarray(self.node_bandwidth, dtype=np.float64), (self.n_sockets,)
        ).copy()
        if np.any(bw <= 0):
            raise TopologyError("node bandwidth must be strictly positive")
        dist = dist.copy()
        dist.setflags(write=False)
        object.__setattr__(self, "distance", dist)
        object.__setattr__(self, "node_bandwidth", bw)
        self.node_bandwidth.setflags(write=False)
        socket_of_core = np.repeat(
            np.arange(self.n_sockets), self.cores_per_socket
        )
        object.__setattr__(self, "_socket_of_core", socket_of_core)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Total number of cores in the machine."""
        return self.n_sockets * self.cores_per_socket

    @property
    def n_nodes(self) -> int:
        """Number of NUMA memory nodes (one per socket)."""
        return self.n_sockets

    def socket_of_core(self, core: int) -> int:
        """Return the socket owning ``core``."""
        if not 0 <= core < self.n_cores:
            raise TopologyError(f"core {core} out of range [0, {self.n_cores})")
        return int(self._socket_of_core[core])

    def cores_of_socket(self, socket: int) -> range:
        """Return the (contiguous) core-id range of ``socket``."""
        self._check_socket(socket)
        lo = socket * self.cores_per_socket
        return range(lo, lo + self.cores_per_socket)

    def sockets(self) -> range:
        """Iterate over socket ids."""
        return range(self.n_sockets)

    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.n_sockets:
            raise TopologyError(
                f"socket {socket} out of range [0, {self.n_sockets})"
            )

    # ------------------------------------------------------------------
    # Distance / bandwidth queries
    # ------------------------------------------------------------------
    def dist(self, socket_a: int, socket_b: int) -> float:
        """SLIT distance between two sockets."""
        self._check_socket(socket_a)
        self._check_socket(socket_b)
        return float(self.distance[socket_a, socket_b])

    def bandwidth_factor(self, socket: int, node: int) -> float:
        """Fraction of ``node``'s local bandwidth seen from ``socket``.

        Equal to ``local_distance / distance`` so a SLIT entry of 20 halves
        the usable bandwidth, the standard first-order approximation.
        """
        d = self.dist(socket, node)
        local = float(self.distance[node, node])
        return local / d

    def sockets_by_distance(self, socket: int) -> list[int]:
        """All sockets ordered by increasing distance from ``socket``.

        ``socket`` itself comes first; ties are broken by socket id so the
        order is deterministic.
        """
        self._check_socket(socket)
        row = self.distance[socket]
        return sorted(range(self.n_sockets), key=lambda s: (row[s], s))

    def max_distance(self) -> float:
        """Largest distance in the matrix (machine 'diameter')."""
        return float(self.distance.max())

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.name}: {self.n_sockets} sockets x "
            f"{self.cores_per_socket} cores ({self.n_cores} cores total)"
        )


def uniform_distance_matrix(
    n_sockets: int, remote: float = 20.0, local: float = LOCAL_DISTANCE
) -> np.ndarray:
    """Distance matrix where every remote socket is equally far.

    Models a fully symmetric interconnect (e.g. a small glueless machine).
    """
    if remote < local:
        raise TopologyError("remote distance must be >= local distance")
    dist = np.full((n_sockets, n_sockets), float(remote))
    np.fill_diagonal(dist, float(local))
    return dist


def hierarchical_distance_matrix(
    n_sockets: int,
    group_size: int,
    local: float = LOCAL_DISTANCE,
    near: float = 16.0,
    far: float = 22.0,
) -> np.ndarray:
    """Two-level distance matrix: sockets within a group are *near*,
    sockets in different groups are *far*.

    Models glued NUMA machines such as the Atos bullion S16, where pairs of
    sockets share a module and modules are linked by the BCS interconnect.
    """
    if n_sockets % group_size != 0:
        raise TopologyError(
            f"{n_sockets} sockets cannot be grouped in groups of {group_size}"
        )
    if not (local <= near <= far):
        raise TopologyError("expected local <= near <= far distances")
    dist = np.full((n_sockets, n_sockets), float(far))
    for g in range(n_sockets // group_size):
        lo, hi = g * group_size, (g + 1) * group_size
        dist[lo:hi, lo:hi] = float(near)
    np.fill_diagonal(dist, float(local))
    return dist
