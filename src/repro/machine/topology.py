"""NUMA machine topology: sockets, cores and the inter-socket distance matrix.

A :class:`NumaTopology` is a static description of the machine the simulator
models.  It mirrors what the OS exposes through the ACPI SLIT table: one
memory node per socket, a symmetric distance matrix whose diagonal is the
*local* distance (conventionally 10), and a flat list of cores grouped by
socket.

Distances translate into bandwidth via
:meth:`NumaTopology.bandwidth_factor`: accessing memory at distance ``d``
runs at ``local_distance / d`` of the local bandwidth, the usual first-order
reading of a SLIT entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TopologyError

#: Conventional ACPI SLIT local distance.
LOCAL_DISTANCE = 10.0


@dataclass(frozen=True, eq=False)
class NumaTopology:
    """Immutable description of a NUMA machine.

    Parameters
    ----------
    n_sockets:
        Number of sockets; each socket owns exactly one NUMA memory node
        with node id equal to the socket id.
    cores_per_socket:
        Number of cores per socket.  Core ids are dense and grouped:
        core ``c`` belongs to socket ``c // cores_per_socket``.
    distance:
        ``(n_sockets, n_sockets)`` symmetric matrix of SLIT-style distances.
        The diagonal must be the minimum of each row (local is closest).
    node_bandwidth:
        Peak local bandwidth of each memory node, in bytes per simulated
        time unit.  Scalar values are broadcast to all nodes.
    name:
        Human-readable label used in reports.
    """

    n_sockets: int
    cores_per_socket: int
    distance: np.ndarray
    node_bandwidth: np.ndarray
    name: str = "numa-machine"
    _socket_of_core: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise TopologyError(f"need at least one socket, got {self.n_sockets}")
        if self.cores_per_socket < 1:
            raise TopologyError(
                f"need at least one core per socket, got {self.cores_per_socket}"
            )
        dist = np.asarray(self.distance, dtype=np.float64)
        if dist.shape != (self.n_sockets, self.n_sockets):
            raise TopologyError(
                f"distance matrix shape {dist.shape} does not match "
                f"{self.n_sockets} sockets"
            )
        if not np.allclose(dist, dist.T):
            raise TopologyError("distance matrix must be symmetric")
        if np.any(dist <= 0):
            raise TopologyError("distances must be strictly positive")
        if np.any(np.diag(dist)[:, None] > dist + 1e-12):
            raise TopologyError("local (diagonal) distance must be minimal per row")
        bw = np.broadcast_to(
            np.asarray(self.node_bandwidth, dtype=np.float64), (self.n_sockets,)
        ).copy()
        if np.any(bw <= 0):
            raise TopologyError("node bandwidth must be strictly positive")
        dist = dist.copy()
        dist.setflags(write=False)
        object.__setattr__(self, "distance", dist)
        object.__setattr__(self, "node_bandwidth", bw)
        self.node_bandwidth.setflags(write=False)
        socket_of_core = np.repeat(
            np.arange(self.n_sockets), self.cores_per_socket
        )
        object.__setattr__(self, "_socket_of_core", socket_of_core)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Total number of cores in the machine."""
        return self.n_sockets * self.cores_per_socket

    @property
    def n_nodes(self) -> int:
        """Number of NUMA memory nodes (one per socket)."""
        return self.n_sockets

    @property
    def n_resources(self) -> int:
        """Number of bandwidth resources the rate solver arbitrates.

        On a single box this is exactly ``n_nodes`` (one memory controller
        per socket).  :class:`ClusterTopology` appends one NIC resource per
        box, so cross-box traffic contends on the network instead of the
        remote memory controller.
        """
        return self.n_sockets

    @property
    def resource_bandwidth(self) -> np.ndarray:
        """Peak bandwidth of each solver resource (length ``n_resources``)."""
        return self.node_bandwidth

    def socket_of_core(self, core: int) -> int:
        """Return the socket owning ``core``."""
        if not 0 <= core < self.n_cores:
            raise TopologyError(f"core {core} out of range [0, {self.n_cores})")
        return int(self._socket_of_core[core])

    def cores_of_socket(self, socket: int) -> range:
        """Return the (contiguous) core-id range of ``socket``."""
        self._check_socket(socket)
        lo = socket * self.cores_per_socket
        return range(lo, lo + self.cores_per_socket)

    def sockets(self) -> range:
        """Iterate over socket ids."""
        return range(self.n_sockets)

    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.n_sockets:
            raise TopologyError(
                f"socket {socket} out of range [0, {self.n_sockets})"
            )

    # ------------------------------------------------------------------
    # Distance / bandwidth queries
    # ------------------------------------------------------------------
    def dist(self, socket_a: int, socket_b: int) -> float:
        """SLIT distance between two sockets."""
        self._check_socket(socket_a)
        self._check_socket(socket_b)
        return float(self.distance[socket_a, socket_b])

    def bandwidth_factor(self, socket: int, node: int) -> float:
        """Fraction of ``node``'s local bandwidth seen from ``socket``.

        Equal to ``local_distance / distance`` so a SLIT entry of 20 halves
        the usable bandwidth, the standard first-order approximation.
        """
        d = self.dist(socket, node)
        local = float(self.distance[node, node])
        return local / d

    def sockets_by_distance(self, socket: int) -> list[int]:
        """All sockets ordered by increasing distance from ``socket``.

        ``socket`` itself comes first; ties are broken by socket id so the
        order is deterministic.
        """
        self._check_socket(socket)
        row = self.distance[socket]
        return sorted(range(self.n_sockets), key=lambda s: (row[s], s))

    def max_distance(self) -> float:
        """Largest distance in the matrix (machine 'diameter')."""
        return float(self.distance.max())

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.name}: {self.n_sockets} sockets x "
            f"{self.cores_per_socket} cores ({self.n_cores} cores total)"
        )


@dataclass(frozen=True, eq=False)
class ClusterTopology(NumaTopology):
    """A cluster of identical NUMA boxes behind a network tier.

    Sockets are numbered box-major: box ``b`` owns sockets
    ``[b * sockets_per_box, (b + 1) * sockets_per_box)``, each with its own
    memory node exactly as on a single box.  The socket-level ``distance``
    matrix carries the full three-level hierarchy (intra-socket <
    inter-socket < network) and keeps driving placement, work stealing,
    fault remapping and partitioning.

    Bandwidth is where the model forks from one box: the solver's resource
    axis grows by one **NIC resource per box** (resource id
    ``n_sockets + box``).  Cross-box traffic is re-keyed by the simulator
    from the remote memory node onto the *data-source box's* NIC, so
    messages from many readers contend on that box's network port through
    the same progressive-filling solver — explicit network contention
    instead of an implicit remote load.

    Parameters (in addition to :class:`NumaTopology`'s)
    ----------
    n_boxes:
        Number of NUMA boxes; must satisfy
        ``n_boxes * sockets_per_box == n_sockets``.
    sockets_per_box:
        Sockets per box.
    nic_bandwidth:
        Peak per-box NIC bandwidth in bytes per simulated time unit
        (scalar broadcast to all boxes).  This single number encodes the
        network tier's slowness; the NIC's efficiency column is 1.0.
    """

    n_boxes: int = 1
    sockets_per_box: int = 1
    nic_bandwidth: np.ndarray = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_boxes < 1:
            raise TopologyError(f"need at least one box, got {self.n_boxes}")
        if self.n_boxes * self.sockets_per_box != self.n_sockets:
            raise TopologyError(
                f"{self.n_boxes} boxes x {self.sockets_per_box} sockets "
                f"!= {self.n_sockets} total sockets"
            )
        if self.nic_bandwidth is None:
            raise TopologyError("a cluster needs an explicit nic_bandwidth")
        nic = np.broadcast_to(
            np.asarray(self.nic_bandwidth, dtype=np.float64), (self.n_boxes,)
        ).copy()
        if np.any(nic <= 0):
            raise TopologyError("NIC bandwidth must be strictly positive")
        nic.setflags(write=False)
        object.__setattr__(self, "nic_bandwidth", nic)
        resource_bw = np.concatenate([self.node_bandwidth, nic])
        resource_bw.setflags(write=False)
        object.__setattr__(self, "_resource_bandwidth", resource_bw)

    # -- resource axis -------------------------------------------------
    @property
    def n_resources(self) -> int:
        return self.n_sockets + self.n_boxes

    @property
    def resource_bandwidth(self) -> np.ndarray:
        return self._resource_bandwidth

    def bandwidth_factor(self, socket: int, resource: int) -> float:
        """Efficiency of ``resource`` seen from ``socket``.

        Memory-node columns follow the SLIT rule; NIC columns are 1.0 —
        the NIC bandwidth itself already encodes the network slowness, and
        every socket drives the wire equally well.
        """
        if resource >= self.n_sockets:
            if resource >= self.n_resources:
                raise TopologyError(
                    f"resource {resource} out of range [0, {self.n_resources})"
                )
            return 1.0
        return super().bandwidth_factor(socket, resource)

    # -- box structure -------------------------------------------------
    def box_of_socket(self, socket: int) -> int:
        """Return the box owning ``socket``."""
        self._check_socket(socket)
        return socket // self.sockets_per_box

    def sockets_of_box(self, box: int) -> range:
        """Return the (contiguous) socket-id range of ``box``."""
        self._check_box(box)
        lo = box * self.sockets_per_box
        return range(lo, lo + self.sockets_per_box)

    def cores_of_box(self, box: int) -> range:
        """Return the (contiguous) core-id range of ``box``."""
        self._check_box(box)
        per_box = self.sockets_per_box * self.cores_per_socket
        lo = box * per_box
        return range(lo, lo + per_box)

    def nic_of_box(self, box: int) -> int:
        """Solver resource id of ``box``'s NIC."""
        self._check_box(box)
        return self.n_sockets + box

    def boxes(self) -> range:
        """Iterate over box ids."""
        return range(self.n_boxes)

    def _check_box(self, box: int) -> None:
        if not 0 <= box < self.n_boxes:
            raise TopologyError(f"box {box} out of range [0, {self.n_boxes})")

    def describe(self) -> str:
        return (
            f"{self.name}: {self.n_boxes} boxes x {self.sockets_per_box} "
            f"sockets x {self.cores_per_socket} cores "
            f"({self.n_cores} cores total)"
        )


def cluster_distance_matrix(
    n_boxes: int,
    sockets_per_box: int,
    local: float = LOCAL_DISTANCE,
    near: float = 16.0,
    network: float = 60.0,
) -> np.ndarray:
    """Three-level distance matrix for a cluster of NUMA boxes.

    Sockets within a box are *near* each other; sockets in different boxes
    sit at the *network* distance.  ``network`` should dwarf ``near`` — the
    cross-box asymmetry is an order of magnitude steeper than on-box NUMA.
    """
    if not (local <= near <= network):
        raise TopologyError("expected local <= near <= network distances")
    return hierarchical_distance_matrix(
        n_boxes * sockets_per_box, sockets_per_box,
        local=local, near=near, far=network,
    )


def uniform_distance_matrix(
    n_sockets: int, remote: float = 20.0, local: float = LOCAL_DISTANCE
) -> np.ndarray:
    """Distance matrix where every remote socket is equally far.

    Models a fully symmetric interconnect (e.g. a small glueless machine).
    """
    if remote < local:
        raise TopologyError("remote distance must be >= local distance")
    dist = np.full((n_sockets, n_sockets), float(remote))
    np.fill_diagonal(dist, float(local))
    return dist


def hierarchical_distance_matrix(
    n_sockets: int,
    group_size: int,
    local: float = LOCAL_DISTANCE,
    near: float = 16.0,
    far: float = 22.0,
) -> np.ndarray:
    """Two-level distance matrix: sockets within a group are *near*,
    sockets in different groups are *far*.

    Models glued NUMA machines such as the Atos bullion S16, where pairs of
    sockets share a module and modules are linked by the BCS interconnect.
    """
    if n_sockets % group_size != 0:
        raise TopologyError(
            f"{n_sockets} sockets cannot be grouped in groups of {group_size}"
        )
    if not (local <= near <= far):
        raise TopologyError("expected local <= near <= far distances")
    dist = np.full((n_sockets, n_sockets), float(far))
    for g in range(n_sockets // group_size):
        lo, hi = g * group_size, (g + 1) * group_size
        dist[lo:hi, lo:hi] = float(near)
    np.fill_diagonal(dist, float(local))
    return dist
