"""Topology serialisation: save/load machine models as JSON.

Lets users describe their own machines (e.g. from ``numactl --hardware``
output) and feed them to the simulator, and lets experiments record
exactly which machine they ran on.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import TopologyError
from .topology import ClusterTopology, NumaTopology


def topology_to_dict(topology: NumaTopology) -> dict:
    """Plain-JSON representation of a topology."""
    doc = {
        "name": topology.name,
        "n_sockets": topology.n_sockets,
        "cores_per_socket": topology.cores_per_socket,
        "distance": topology.distance.tolist(),
        "node_bandwidth": topology.node_bandwidth.tolist(),
    }
    if isinstance(topology, ClusterTopology):
        doc["cluster"] = {
            "n_boxes": topology.n_boxes,
            "sockets_per_box": topology.sockets_per_box,
            "nic_bandwidth": topology.nic_bandwidth.tolist(),
        }
    return doc


def topology_from_dict(doc: dict) -> NumaTopology:
    """Inverse of :func:`topology_to_dict` (validates on construction)."""
    try:
        cluster = doc.get("cluster")
        if cluster is not None:
            return ClusterTopology(
                n_sockets=int(doc["n_sockets"]),
                cores_per_socket=int(doc["cores_per_socket"]),
                distance=np.asarray(doc["distance"], dtype=np.float64),
                node_bandwidth=np.asarray(
                    doc["node_bandwidth"], dtype=np.float64
                ),
                name=str(doc.get("name", "custom")),
                n_boxes=int(cluster["n_boxes"]),
                sockets_per_box=int(cluster["sockets_per_box"]),
                nic_bandwidth=np.asarray(
                    cluster["nic_bandwidth"], dtype=np.float64
                ),
            )
        return NumaTopology(
            n_sockets=int(doc["n_sockets"]),
            cores_per_socket=int(doc["cores_per_socket"]),
            distance=np.asarray(doc["distance"], dtype=np.float64),
            node_bandwidth=np.asarray(doc["node_bandwidth"], dtype=np.float64),
            name=str(doc.get("name", "custom")),
        )
    except KeyError as exc:
        raise TopologyError(f"topology document missing field {exc}") from None


def save_topology(topology: NumaTopology, path: str | Path) -> None:
    Path(path).write_text(json.dumps(topology_to_dict(topology), indent=2))


def load_topology(path: str | Path) -> NumaTopology:
    return topology_from_dict(json.loads(Path(path).read_text()))


def parse_numactl_hardware(text: str, cores_per_socket: int | None = None,
                           node_bandwidth: float = 1_000_000.0) -> NumaTopology:
    """Build a topology from ``numactl --hardware`` output.

    Parses the ``node distances:`` matrix and the ``node N cpus:`` lines
    (used to infer cores per socket when not given).  Only the fields the
    model needs are read; anything else is ignored.
    """
    lines = text.splitlines()
    # Distance matrix.
    try:
        start = next(i for i, ln in enumerate(lines)
                     if ln.strip().startswith("node distances"))
    except StopIteration:
        raise TopologyError("no 'node distances:' section found") from None
    rows = []
    for ln in lines[start + 2:]:
        parts = ln.split()
        if len(parts) < 2 or not parts[0].isdigit() and parts[0] != f"{len(rows)}:":
            if not parts or ":" not in parts[0]:
                break
        if ":" not in parts[0]:
            break
        rows.append([float(x) for x in parts[1:]])
    if not rows:
        raise TopologyError("could not parse the distance matrix")
    dist = np.asarray(rows)
    n = dist.shape[0]
    if cores_per_socket is None:
        cpu_lines = [ln for ln in lines if "cpus:" in ln]
        counts = [len(ln.split(":", 1)[1].split()) for ln in cpu_lines[:n]]
        cores_per_socket = max(1, min(counts) if counts else 1)
    return NumaTopology(
        n_sockets=n,
        cores_per_socket=cores_per_socket,
        distance=dist,
        node_bandwidth=node_bandwidth,
        name="numactl",
    )
