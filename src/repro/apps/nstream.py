"""NStream: the STREAM-triad benchmark (a = b + s*c, repeated).

The most memory-bound code in the suite and Figure 1's most dramatic data
point: EP and RGP+LAS beat LAS by ~1.75x because LAS's random cold-start
placement leaves whole blocks piled on a few NUMA nodes, and the triad's
total lack of reuse means that imbalance is paid every iteration; DFIFO
(0.49x) additionally makes nearly every access remote.

Decomposition: three vectors split into ``n_blocks`` blocks; one init task
per block (writes a, b, c — this is where deferred allocation binds pages)
and one triad task per block per iteration.
"""

from __future__ import annotations

import numpy as np

from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication, ep_block


class NStreamApp(TaskApplication):
    """STREAM triad over blocked vectors.

    Parameters
    ----------
    n_blocks:
        Vector blocks (= independent task chains).  The paper-scale default
        of 48 gives ~6 blocks per socket on the bullion S16 — few enough
        that LAS's random placement shows real multinomial imbalance.
    block_elems:
        Elements (float64) per block.
    iterations:
        Triad sweeps.
    scalar:
        The triad scalar.
    """

    name = "nstream"

    def __init__(
        self,
        n_blocks: int = 48,
        block_elems: int = 64 * 1024,
        iterations: int = 12,
        scalar: float = 3.0,
    ) -> None:
        super().__init__()
        self._check_positive(
            n_blocks=n_blocks, block_elems=block_elems, iterations=iterations
        )
        self.n_blocks = n_blocks
        self.block_elems = block_elems
        self.iterations = iterations
        self.scalar = scalar

    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        prog = TaskProgram(self.name)
        nbytes = self.block_elems * 8
        # Triad: read b and c, write a -> 3 block accesses; ~2 flops/elem.
        triad_work = 2.0 * self.block_elems / FLOP_RATE

        arrays = None
        if with_payload:
            arrays = {
                name: np.zeros((self.n_blocks, self.block_elems))
                for name in "abc"
            }
            self._verify_ctx = arrays

        for blk in range(self.n_blocks):
            socket = ep_block(blk, self.n_blocks, n_sockets)
            a = prog.data(f"a[{blk}]", nbytes)
            b = prog.data(f"b[{blk}]", nbytes)
            c = prog.data(f"c[{blk}]", nbytes)

            init_fn = None
            if arrays is not None:
                init_fn = self._make_init(arrays, blk)
            prog.task(
                f"init({blk})",
                outs=[a, b, c],
                work=self.block_elems / FLOP_RATE,
                fn=init_fn,
                meta={"ep_socket": socket, "block": blk},
            )
            for it in range(self.iterations):
                triad_fn = None
                if arrays is not None:
                    triad_fn = self._make_triad(arrays, blk)
                prog.task(
                    f"triad({blk},{it})",
                    ins=[b, c],
                    outs=[a],
                    work=triad_work,
                    fn=triad_fn,
                    meta={"ep_socket": socket, "block": blk, "iter": it},
                )
        return prog.finalize()

    # ------------------------------------------------------------------
    def _make_init(self, arrays: dict, blk: int):
        def init() -> None:
            arrays["a"][blk] = 0.0
            arrays["b"][blk] = blk + 1.0
            arrays["c"][blk] = 0.5 * (blk + 1.0)

        return init

    def _make_triad(self, arrays: dict, blk: int):
        scalar = self.scalar

        def triad() -> None:
            arrays["a"][blk] = arrays["b"][blk] + scalar * arrays["c"][blk]

        return triad

    def verify(self) -> float:
        arrays = self._require_payload()
        blocks = np.arange(self.n_blocks, dtype=np.float64) + 1.0
        expected = blocks + self.scalar * 0.5 * blocks  # b + s*c per block
        err = np.abs(arrays["a"] - expected[:, None]).max()
        return float(err)
