"""Synthetic DAG application: controlled-structure workloads.

Wraps the :mod:`repro.graph.generators` DAG families (chains, stencil,
fork-join, reduction tree, random layered) as a real task program: one
data object per task output, consumers read the producer's object with the
generator's edge bytes.  Used for studies where the eight paper benchmarks
have too much structure — e.g. sweeping parallelism or edge weight while
holding everything else fixed.

Payload mode computes ``value(v) = 1 + sum(value(pred))`` per task and
verifies against an independent recomputation over the TDG — any
scheduler-legal execution order must reproduce it exactly.
"""

from __future__ import annotations

import numpy as np

from ..errors import ApplicationError
from ..graph import (
    TaskGraph,
    binary_in_tree,
    fork_join,
    independent_chains,
    random_layered,
    stencil_2d,
)
from ..runtime.data import AccessMode, DataAccess
from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication, ep_block

GENERATORS = {
    "chains": lambda scale, seed: independent_chains(scale, max(2, scale // 2)),
    "stencil": lambda scale, seed: stencil_2d(scale, scale, 3),
    "forkjoin": lambda scale, seed: fork_join(scale, max(2, scale // 2)),
    "tree": lambda scale, seed: binary_in_tree(max(1, scale.bit_length())),
    "random": lambda scale, seed: random_layered(
        max(2, scale // 2), scale, seed=seed
    ),
}


class SyntheticApp(TaskApplication):
    """Generator-backed task application.

    Parameters
    ----------
    kind:
        One of ``chains``, ``stencil``, ``forkjoin``, ``tree``, ``random``.
    scale:
        Size knob passed to the generator (width / side / chain count).
    bytes_per_unit:
        Bytes represented by one unit of generator edge weight.
    compute_intensity:
        Compute work per task per KiB of its output object.
    seed:
        Seed for the random generator kinds.
    """

    name = "synthetic"

    def __init__(
        self,
        kind: str = "chains",
        scale: int = 16,
        bytes_per_unit: int = 65536,
        compute_intensity: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if kind not in GENERATORS:
            raise ApplicationError(
                f"unknown synthetic kind {kind!r}; known: {sorted(GENERATORS)}"
            )
        self._check_positive(scale=scale, bytes_per_unit=bytes_per_unit)
        if compute_intensity < 0:
            raise ApplicationError("compute_intensity must be >= 0")
        self.kind = kind
        self.scale = scale
        self.bytes_per_unit = bytes_per_unit
        self.compute_intensity = compute_intensity
        self.seed = seed

    # ------------------------------------------------------------------
    def generate_tdg(self) -> TaskGraph:
        """The raw generator DAG this app is built from."""
        return GENERATORS[self.kind](self.scale, self.seed)

    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        tdg = self.generate_tdg()
        prog = TaskProgram(f"synthetic-{self.kind}")
        n = tdg.n_nodes

        values = None
        if with_payload:
            values = np.zeros(n)
            self._verify_ctx = (tdg, values)

        # Object sizes: enough to carry the fattest outgoing edge.
        objs = []
        for v in range(n):
            out_w = max(
                [w for w in tdg.successors(v).values()] + [1.0]
            )
            objs.append(
                prog.data(f"out[{v}]", int(out_w * self.bytes_per_unit))
            )
        for v in range(n):
            ins = [
                DataAccess(
                    objs[pred], AccessMode.IN,
                    offset=0,
                    length=min(objs[pred].size_bytes,
                               int(w * self.bytes_per_unit)),
                )
                for pred, w in sorted(tdg.predecessors(v).items())
            ]
            work = (
                self.compute_intensity * objs[v].size_bytes / 1024.0 / FLOP_RATE
                * 1000.0
            )
            fn = self._make_fn(values, tdg, v) if with_payload else None
            prog.task(
                f"{self.kind}({v})",
                ins=ins,
                outs=[objs[v]],
                work=max(work, 1e-6),
                fn=fn,
                meta={"ep_socket": ep_block(v, n, n_sockets)},
            )
        return prog.finalize()

    # ------------------------------------------------------------------
    @staticmethod
    def _make_fn(values, tdg, v):
        def fn() -> None:
            values[v] = 1.0 + sum(values[p] for p in tdg.predecessors(v))

        return fn

    def verify(self) -> float:
        tdg, values = self._require_payload()
        from ..graph.analysis import topological_order

        expected = np.zeros(tdg.n_nodes)
        for v in topological_order(tdg):
            expected[v] = 1.0 + sum(expected[p] for p in tdg.predecessors(v))
        return float(np.abs(values - expected).max())
