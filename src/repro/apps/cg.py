"""Conjugate gradient on a 2-D Poisson operator, blocked into tiles.

Each iteration: a stencil SpMV (``q = A p``, matrix-free 5-point operator),
two dot products (per-tile partials + a flat reduction task producing a
scalar), and three AXPY-family vector updates.  The scalar reduction and
broadcast tasks couple every tile each iteration — unlike the pure
stencils, the TDG has global synchronisation points, so placement gains
come only from the vector blocks' streaming locality.

Payload mode runs real CG on ``A = -laplacian`` (SPD) and verifies both
against a plain-numpy CG (bit-identical partial-sum order) and that the
residual actually drops.
"""

from __future__ import annotations

import numpy as np

from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication
from .tiles import TiledField, ep_grid_block


class ConjugateGradientApp(TaskApplication):
    """Blocked CG; ``nt x nt`` tiles of ``tile x tile`` grid points."""

    name = "cg"

    def __init__(self, nt: int = 8, tile: int = 128, iterations: int = 10,
                 seed: int = 77) -> None:
        super().__init__()
        self._check_positive(nt=nt, tile=tile, iterations=iterations)
        self.nt = nt
        self.tile = tile
        self.iterations = iterations
        self.seed = seed

    # ------------------------------------------------------------------
    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        prog = TaskProgram(self.name)
        nt, tile = self.nt, self.tile
        tile_bytes = tile * tile * 8
        scalar_bytes = 8
        spmv_work = 6.0 * tile * tile / FLOP_RATE
        axpy_work = 2.0 * tile * tile / FLOP_RATE
        dot_work = 2.0 * tile * tile / FLOP_RATE

        # p carries halos (SpMV reads neighbours); x, r, q are tile-local.
        p = TiledField(prog, "p", nt, nt, tile, tile)
        x = [[prog.data(f"x[{r},{c}]", tile_bytes) for c in range(nt)]
             for r in range(nt)]
        res = [[prog.data(f"r[{r},{c}]", tile_bytes) for c in range(nt)]
               for r in range(nt)]
        q = [[prog.data(f"q[{r},{c}]", tile_bytes) for c in range(nt)]
             for r in range(nt)]

        ctx = None
        if with_payload:
            ctx = self._make_context()
            self._verify_ctx = ctx

        def ep(r: int, c: int) -> dict:
            return {"ep_socket": ep_grid_block(r, c, nt, nt, n_sockets)}

        # init: x = 0, r = b, p = b.
        for rr in range(nt):
            for cc in range(nt):
                fn = self._t_init(ctx, rr, cc) if ctx else None
                prog.task(
                    f"init({rr},{cc})",
                    outs=[x[rr][cc], res[rr][cc], p.interior(rr, cc),
                          *p.own_borders(rr, cc)],
                    work=3.0 * tile * tile / FLOP_RATE,
                    fn=fn,
                    meta=ep(rr, cc),
                )
        rs_old = prog.data("rs0", scalar_bytes)
        partials0 = [[prog.data(f"rr0[{r},{c}]", scalar_bytes)
                      for c in range(nt)] for r in range(nt)]
        for rr in range(nt):
            for cc in range(nt):
                fn = self._t_dot_rr(ctx, rr, cc, 0) if ctx else None
                prog.task(
                    f"dot_rr0({rr},{cc})", ins=[res[rr][cc]],
                    outs=[partials0[rr][cc]], work=dot_work, fn=fn,
                    meta=ep(rr, cc),
                )
        fn = self._t_reduce_rr(ctx, 0) if ctx else None
        prog.task(
            "reduce_rr0",
            ins=[partials0[rr][cc] for rr in range(nt) for cc in range(nt)],
            outs=[rs_old], work=nt * nt / FLOP_RATE, fn=fn,
            meta={"ep_socket": 0},
        )

        for it in range(self.iterations):
            # q = A p (5-point stencil SpMV).
            for rr in range(nt):
                for cc in range(nt):
                    fn = self._t_spmv(ctx, rr, cc) if ctx else None
                    prog.task(
                        f"spmv{it}({rr},{cc})",
                        ins=[p.interior(rr, cc), *p.halo_reads(rr, cc)],
                        outs=[q[rr][cc]], work=spmv_work, fn=fn,
                        meta=ep(rr, cc),
                    )
            # alpha = rs_old / (p . q)
            pq = [[prog.data(f"pq{it}[{r},{c}]", scalar_bytes)
                   for c in range(nt)] for r in range(nt)]
            for rr in range(nt):
                for cc in range(nt):
                    fn = self._t_dot_pq(ctx, rr, cc) if ctx else None
                    prog.task(
                        f"dot_pq{it}({rr},{cc})",
                        ins=[p.interior(rr, cc), q[rr][cc]],
                        outs=[pq[rr][cc]], work=dot_work, fn=fn,
                        meta=ep(rr, cc),
                    )
            alpha = prog.data(f"alpha{it}", scalar_bytes)
            fn = self._t_alpha(ctx) if ctx else None
            prog.task(
                f"alpha{it}",
                ins=[rs_old] + [pq[rr][cc] for rr in range(nt) for cc in range(nt)],
                outs=[alpha], work=nt * nt / FLOP_RATE, fn=fn,
                meta={"ep_socket": 0},
            )
            # x += alpha p ; r -= alpha q ; partial rs_new.
            rs_new = prog.data(f"rs{it + 1}", scalar_bytes)
            parts = [[prog.data(f"rr{it + 1}[{r},{c}]", scalar_bytes)
                      for c in range(nt)] for r in range(nt)]
            for rr in range(nt):
                for cc in range(nt):
                    fn = self._t_axpy_x(ctx, rr, cc) if ctx else None
                    prog.task(
                        f"axpy_x{it}({rr},{cc})",
                        ins=[alpha, p.interior(rr, cc)], inouts=[x[rr][cc]],
                        work=axpy_work, fn=fn, meta=ep(rr, cc),
                    )
                    fn = self._t_axpy_r(ctx, rr, cc) if ctx else None
                    prog.task(
                        f"axpy_r{it}({rr},{cc})",
                        ins=[alpha, q[rr][cc]], inouts=[res[rr][cc]],
                        work=axpy_work, fn=fn, meta=ep(rr, cc),
                    )
                    fn = self._t_dot_rr(ctx, rr, cc, it + 1) if ctx else None
                    prog.task(
                        f"dot_rr{it + 1}({rr},{cc})", ins=[res[rr][cc]],
                        outs=[parts[rr][cc]], work=dot_work, fn=fn,
                        meta=ep(rr, cc),
                    )
            fn = self._t_reduce_rr(ctx, it + 1) if ctx else None
            prog.task(
                f"reduce_rr{it + 1}",
                ins=[parts[rr][cc] for rr in range(nt) for cc in range(nt)],
                outs=[rs_new], work=nt * nt / FLOP_RATE, fn=fn,
                meta={"ep_socket": 0},
            )
            # p = r + (rs_new / rs_old) p  (beta folded into the update).
            for rr in range(nt):
                for cc in range(nt):
                    fn = self._t_update_p(ctx, rr, cc) if ctx else None
                    prog.task(
                        f"update_p{it}({rr},{cc})",
                        ins=[rs_new, rs_old, res[rr][cc]],
                        inouts=[p.interior(rr, cc)],
                        outs=p.own_borders(rr, cc),
                        work=axpy_work, fn=fn, meta=ep(rr, cc),
                    )
            rs_old = rs_new
        return prog.finalize()

    # ------------------------------------------------------------------
    # Payload kernels.  ctx fields: b, x, r, p, q (grids), scal dict.
    # ------------------------------------------------------------------
    def _make_context(self) -> dict:
        n = self.nt * self.tile
        rng = np.random.default_rng(self.seed)
        b = rng.standard_normal((n, n))
        return {
            "b": b,
            "x": np.zeros((n, n)),
            "r": np.zeros((n, n)),
            "p": np.zeros((n + 2, n + 2)),  # padded for the stencil
            "q": np.zeros((n, n)),
            "pq_parts": np.zeros((self.nt, self.nt)),
            "rr_parts": np.zeros((self.nt, self.nt)),
            "scal": {"rs_old": 0.0, "rs_new": 0.0, "alpha": 0.0},
            "rs_history": [],
        }

    def _tile_slices(self, r: int, c: int):
        t = self.tile
        return np.s_[r * t : (r + 1) * t], np.s_[c * t : (c + 1) * t]

    def _t_init(self, ctx, r, c):
        rows, cols = self._tile_slices(r, c)

        def fn() -> None:
            ctx["x"][rows, cols] = 0.0
            ctx["r"][rows, cols] = ctx["b"][rows, cols]
            ctx["p"][1:-1, 1:-1][rows, cols] = ctx["b"][rows, cols]

        return fn

    def _t_spmv(self, ctx, r, c):
        rows, cols = self._tile_slices(r, c)
        t = self.tile

        def fn() -> None:
            p = ctx["p"]
            r0, c0 = 1 + r * t, 1 + c * t
            centre = p[r0 : r0 + t, c0 : c0 + t]
            ctx["q"][rows, cols] = (
                4.0 * centre
                - p[r0 - 1 : r0 + t - 1, c0 : c0 + t]
                - p[r0 + 1 : r0 + t + 1, c0 : c0 + t]
                - p[r0 : r0 + t, c0 - 1 : c0 + t - 1]
                - p[r0 : r0 + t, c0 + 1 : c0 + t + 1]
            )

        return fn

    def _t_dot_pq(self, ctx, r, c):
        rows, cols = self._tile_slices(r, c)

        def fn() -> None:
            ctx["pq_parts"][r, c] = float(
                np.vdot(ctx["p"][1:-1, 1:-1][rows, cols], ctx["q"][rows, cols])
            )

        return fn

    def _t_dot_rr(self, ctx, r, c, _it):
        rows, cols = self._tile_slices(r, c)

        def fn() -> None:
            blk = ctx["r"][rows, cols]
            ctx["rr_parts"][r, c] = float(np.vdot(blk, blk))

        return fn

    def _t_reduce_rr(self, ctx, it):
        def fn() -> None:
            total = float(ctx["rr_parts"].sum())
            if it > 0:
                ctx["scal"]["rs_old"] = ctx["scal"]["rs_new"]
            ctx["scal"]["rs_new"] = total
            if it == 0:
                ctx["scal"]["rs_old"] = total
            ctx["rs_history"].append(total)

        return fn

    def _t_alpha(self, ctx):
        def fn() -> None:
            denom = float(ctx["pq_parts"].sum())
            # rs of the *current* residual is in rs_new after reduce.
            ctx["scal"]["alpha"] = ctx["scal"]["rs_new"] / denom

        return fn

    def _t_axpy_x(self, ctx, r, c):
        rows, cols = self._tile_slices(r, c)

        def fn() -> None:
            ctx["x"][rows, cols] += (
                ctx["scal"]["alpha"] * ctx["p"][1:-1, 1:-1][rows, cols]
            )

        return fn

    def _t_axpy_r(self, ctx, r, c):
        rows, cols = self._tile_slices(r, c)

        def fn() -> None:
            ctx["r"][rows, cols] -= ctx["scal"]["alpha"] * ctx["q"][rows, cols]

        return fn

    def _t_update_p(self, ctx, r, c):
        rows, cols = self._tile_slices(r, c)

        def fn() -> None:
            beta = ctx["scal"]["rs_new"] / ctx["scal"]["rs_old"]
            inner = ctx["p"][1:-1, 1:-1]
            inner[rows, cols] = ctx["r"][rows, cols] + beta * inner[rows, cols]

        return fn

    # ------------------------------------------------------------------
    def verify(self) -> float:
        """Error vs a plain-numpy CG with the same partial-sum order."""
        ctx = self._require_payload()
        n = self.nt * self.tile
        b = ctx["b"]

        def tiled_dot(u: np.ndarray, v: np.ndarray) -> float:
            t = self.tile
            total = 0.0
            parts = np.zeros((self.nt, self.nt))
            for r in range(self.nt):
                for c in range(self.nt):
                    parts[r, c] = float(
                        np.vdot(u[r * t : (r + 1) * t, c * t : (c + 1) * t],
                                v[r * t : (r + 1) * t, c * t : (c + 1) * t])
                    )
            total = float(parts.sum())
            return total

        def apply_a(p: np.ndarray) -> np.ndarray:
            padded = np.zeros((n + 2, n + 2))
            padded[1:-1, 1:-1] = p
            return (
                4.0 * p
                - padded[:-2, 1:-1]
                - padded[2:, 1:-1]
                - padded[1:-1, :-2]
                - padded[1:-1, 2:]
            )

        x = np.zeros((n, n))
        r = b.copy()
        p = b.copy()
        rs_old = tiled_dot(r, r)
        for _ in range(self.iterations):
            q = apply_a(p)
            alpha = rs_old / tiled_dot(p, q)
            x += alpha * p
            r -= alpha * q
            rs_new = tiled_dot(r, r)
            p = r + (rs_new / rs_old) * p
            rs_old = rs_new

        err_x = float(np.abs(ctx["x"] - x).max())
        # Sanity: the residual must actually have decreased.
        hist = ctx["rs_history"]
        if len(hist) >= 2 and not hist[-1] < hist[0]:
            return float("inf")
        scale = float(np.abs(x).max()) or 1.0
        return err_x / scale

    def residual_history(self) -> list[float]:
        """Per-iteration ||r||^2 from the last payload run."""
        return list(self._require_payload()["rs_history"])
