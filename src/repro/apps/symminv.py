"""Symmetric (SPD) matrix inversion via tiled Cholesky, in three phases.

1. **Cholesky** ``A = L L^T`` — potrf / trsm / syrk / gemm tile kernels;
2. **Triangular inversion** ``W = L^{-1}`` — trtri on the diagonal plus a
   gemm-accumulate / trsm recurrence per (i, k) tile;
3. **Product** ``A^{-1} = W^T W`` — syrk/gemm over the tile columns.

Phases are separated by **taskwait barriers**, like the OmpSs original —
this is the one suite application that exercises the paper's *barrier*
partition trigger (the RGP window closes at the first barrier even if the
window-size limit was not reached).

Mixed compute/memory intensity (O(T^3) kernels but long dependence chains
and lots of tile reuse across phases): Figure 1 shows DFIFO at 0.68x —
hurt by remote traffic, but not as catastrophically as the pure streams.

Payload mode runs the real numerics on a well-conditioned SPD matrix and
verifies ``A_inv @ A0 == I``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication, ep_block_cyclic_2d


class SymmetricInversionApp(TaskApplication):
    """Tiled SPD inversion of an ``(nt*tile) x (nt*tile)`` matrix."""

    name = "symminv"

    def __init__(self, nt: int = 10, tile: int = 96, seed: int = 999) -> None:
        super().__init__()
        self._check_positive(nt=nt, tile=tile)
        self.nt = nt
        self.tile = tile
        self.seed = seed

    # ------------------------------------------------------------------
    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        prog = TaskProgram(self.name)
        nt, t = self.nt, self.tile
        tile_bytes = t * t * 8
        t3 = float(t) ** 3

        # Lower-triangular tile storage for A/L (i >= j), plus W and Ainv.
        a = {(i, j): prog.data(f"A[{i},{j}]", tile_bytes)
             for i in range(nt) for j in range(i + 1)}
        w = {(i, k): prog.data(f"W[{i},{k}]", tile_bytes)
             for i in range(nt) for k in range(i + 1)}
        ainv = {(i, j): prog.data(f"Ainv[{i},{j}]", tile_bytes)
                for i in range(nt) for j in range(i + 1)}

        ctx = None
        if with_payload:
            ctx = self._make_context()
            self._verify_ctx = ctx

        def ep(i: int, j: int) -> dict:
            return {"ep_socket": ep_block_cyclic_2d(i, j, n_sockets)}

        for i in range(nt):
            for j in range(i + 1):
                fn = self._t_load(ctx, i, j) if ctx else None
                prog.task(f"load({i},{j})", outs=[a[(i, j)]],
                          work=t * t / FLOP_RATE, fn=fn, meta=ep(i, j))

        # Phase 1: Cholesky.
        for k in range(nt):
            fn = self._t_potrf(ctx, k) if ctx else None
            prog.task(f"potrf({k})", inouts=[a[(k, k)]],
                      work=t3 / 3.0 / FLOP_RATE, fn=fn, meta=ep(k, k))
            for i in range(k + 1, nt):
                fn = self._t_trsm(ctx, i, k) if ctx else None
                prog.task(f"trsm({i},{k})", ins=[a[(k, k)]],
                          inouts=[a[(i, k)]], work=t3 / FLOP_RATE, fn=fn,
                          meta=ep(i, k))
            for i in range(k + 1, nt):
                for j in range(k + 1, i + 1):
                    if i == j:
                        fn = self._t_syrk(ctx, i, k) if ctx else None
                        prog.task(f"syrk({i},{k})", ins=[a[(i, k)]],
                                  inouts=[a[(i, i)]], work=t3 / FLOP_RATE,
                                  fn=fn, meta=ep(i, i))
                    else:
                        fn = self._t_gemm1(ctx, i, j, k) if ctx else None
                        prog.task(f"gemm({i},{j},{k})",
                                  ins=[a[(i, k)], a[(j, k)]],
                                  inouts=[a[(i, j)]],
                                  work=2.0 * t3 / FLOP_RATE, fn=fn,
                                  meta=ep(i, j))
        prog.barrier()

        # Phase 2: W = L^{-1} (blocked forward substitution on tiles).
        for k in range(nt):
            fn = self._t_trtri(ctx, k) if ctx else None
            prog.task(f"trtri({k})", ins=[a[(k, k)]], outs=[w[(k, k)]],
                      work=t3 / 3.0 / FLOP_RATE, fn=fn, meta=ep(k, k))
            for i in range(k + 1, nt):
                fn = self._t_w_acc(ctx, i, k) if ctx else None
                prog.task(
                    f"w_acc({i},{k})",
                    ins=[a[(i, j)] for j in range(k, i)]
                    + [w[(j, k)] for j in range(k, i)]
                    + [a[(i, i)]],
                    outs=[w[(i, k)]],
                    work=(2.0 * (i - k) + 1.0) * t3 / FLOP_RATE,
                    fn=fn, meta=ep(i, k),
                )
        prog.barrier()

        # Phase 3: A^{-1} = W^T W (lower part).
        for i in range(nt):
            for j in range(i + 1):
                fn = self._t_wtw(ctx, i, j) if ctx else None
                prog.task(
                    f"wtw({i},{j})",
                    ins=[w[(m, i)] for m in range(i, nt)]
                    + [w[(m, j)] for m in range(i, nt)],
                    outs=[ainv[(i, j)]],
                    work=2.0 * (nt - i) * t3 / FLOP_RATE,
                    fn=fn, meta=ep(i, j),
                )
        return prog.finalize()

    # ------------------------------------------------------------------
    # Payload kernels.
    # ------------------------------------------------------------------
    def _make_context(self) -> dict:
        n = self.nt * self.tile
        rng = np.random.default_rng(self.seed)
        b = rng.standard_normal((n, n))
        a0 = b @ b.T / n + 2.0 * np.eye(n)  # well-conditioned SPD
        t = self.tile
        return {
            "A0": a0,
            "a": {
                (i, j): a0[i * t : (i + 1) * t, j * t : (j + 1) * t].copy()
                for i in range(self.nt) for j in range(i + 1)
            },
            "w": {},
            "ainv": {},
        }

    def _t_load(self, ctx, i, j):
        def fn() -> None:  # tiles pre-sliced at build time
            pass

        return fn

    def _t_potrf(self, ctx, k):
        def fn() -> None:
            ctx["a"][(k, k)] = np.linalg.cholesky(ctx["a"][(k, k)])

        return fn

    def _t_trsm(self, ctx, i, k):
        def fn() -> None:
            lkk = ctx["a"][(k, k)]
            # A_ik <- A_ik * L_kk^{-T}  (solve X L_kk^T = A_ik)
            ctx["a"][(i, k)] = scipy.linalg.solve_triangular(
                lkk, ctx["a"][(i, k)].T, lower=True
            ).T

        return fn

    def _t_syrk(self, ctx, i, k):
        def fn() -> None:
            lik = ctx["a"][(i, k)]
            ctx["a"][(i, i)] = ctx["a"][(i, i)] - lik @ lik.T

        return fn

    def _t_gemm1(self, ctx, i, j, k):
        def fn() -> None:
            ctx["a"][(i, j)] = (
                ctx["a"][(i, j)] - ctx["a"][(i, k)] @ ctx["a"][(j, k)].T
            )

        return fn

    def _t_trtri(self, ctx, k):
        t = self.tile

        def fn() -> None:
            ctx["w"][(k, k)] = scipy.linalg.solve_triangular(
                ctx["a"][(k, k)], np.eye(t), lower=True
            )

        return fn

    def _t_w_acc(self, ctx, i, k):
        def fn() -> None:
            # W_ik = -L_ii^{-1} (sum_{j=k}^{i-1} L_ij W_jk)
            acc = sum(
                ctx["a"][(i, j)] @ ctx["w"][(j, k)] for j in range(k, i)
            )
            ctx["w"][(i, k)] = -scipy.linalg.solve_triangular(
                ctx["a"][(i, i)], acc, lower=True
            )

        return fn

    def _t_wtw(self, ctx, i, j):
        def fn() -> None:
            ctx["ainv"][(i, j)] = sum(
                ctx["w"][(m, i)].T @ ctx["w"][(m, j)] for m in range(i, self.nt)
            )

        return fn

    # ------------------------------------------------------------------
    def verify(self) -> float:
        """Max abs of ``Ainv @ A0 - I`` (symmetrised assembly)."""
        ctx = self._require_payload()
        nt, t = self.nt, self.tile
        n = nt * t
        inv = np.zeros((n, n))
        for i in range(nt):
            for j in range(i + 1):
                blk = ctx["ainv"][(i, j)]
                inv[i * t : (i + 1) * t, j * t : (j + 1) * t] = blk
                if i != j:
                    inv[j * t : (j + 1) * t, i * t : (i + 1) * t] = blk.T
        residual = inv @ ctx["A0"] - np.eye(n)
        return float(np.abs(residual).max())
