"""The paper's eight benchmark applications as task-program generators.

Figure 1's x-axis: Conjugate gradient, Gauss-Seidel, Integral histogram,
Jacobi, NStream, QR factorization, Red-Black, Symmetric matrix inversion.
"""

from __future__ import annotations

from .base import FLOP_RATE, TaskApplication, ep_block, ep_block_cyclic_2d
from .cg import ConjugateGradientApp
from .gauss_seidel import GaussSeidelApp
from .histogram import IntegralHistogramApp
from .jacobi import JacobiApp
from .nstream import NStreamApp
from .qr import QRApp
from .redblack import RedBlackApp
from .symminv import SymmetricInversionApp
from .synthetic import SyntheticApp
from .tiles import TiledField, ep_grid_block

#: Registry: the paper's eight Figure 1 applications plus the synthetic
#: controlled-structure workload.
APPS: dict[str, type[TaskApplication]] = {
    cls.name: cls
    for cls in (
        ConjugateGradientApp,
        GaussSeidelApp,
        IntegralHistogramApp,
        JacobiApp,
        NStreamApp,
        QRApp,
        RedBlackApp,
        SymmetricInversionApp,
        SyntheticApp,
    )
}


def make_app(name: str, **params) -> TaskApplication:
    """Instantiate a benchmark application by name."""
    try:
        cls = APPS[name]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; known: {sorted(APPS)}") from None
    return cls(**params)


__all__ = [
    "APPS",
    "FLOP_RATE",
    "ConjugateGradientApp",
    "GaussSeidelApp",
    "IntegralHistogramApp",
    "JacobiApp",
    "NStreamApp",
    "QRApp",
    "RedBlackApp",
    "SymmetricInversionApp",
    "SyntheticApp",
    "TaskApplication",
    "TiledField",
    "ep_block",
    "ep_block_cyclic_2d",
    "ep_grid_block",
    "make_app",
]
