"""Tiled-field helper for the stencil-family applications.

A 2-D field decomposed into ``nt_r x nt_c`` tiles.  Besides the interior
object, each tile owns four *border-strip* objects (N/S/E/W).  A stencil
task writes its interior and its strips and reads the strips of its
neighbours that face it — so dependence edges carry realistic byte counts
(thin halos, fat interiors) even though dependence tracking is per-object.
"""

from __future__ import annotations

from ..errors import ApplicationError
from ..runtime.data import DataObject
from ..runtime.program import TaskProgram

#: Border directions, and the direction a neighbour's strip faces us from.
DIRS = ("N", "S", "E", "W")
_OPPOSITE = {"N": "S", "S": "N", "E": "W", "W": "E"}
_OFFSETS = {"N": (-1, 0), "S": (1, 0), "E": (0, 1), "W": (0, -1)}


class TiledField:
    """Data objects of one field (e.g. one Jacobi buffer)."""

    def __init__(
        self,
        prog: TaskProgram,
        name: str,
        nt_r: int,
        nt_c: int,
        tile_rows: int,
        tile_cols: int,
        elem_bytes: int = 8,
    ) -> None:
        if nt_r < 1 or nt_c < 1 or tile_rows < 1 or tile_cols < 1:
            raise ApplicationError("tile grid dimensions must be positive")
        self.name = name
        self.nt_r = nt_r
        self.nt_c = nt_c
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self._interior: list[list[DataObject]] = []
        self._border: dict[tuple[int, int, str], DataObject] = {}
        tile_bytes = tile_rows * tile_cols * elem_bytes
        for r in range(nt_r):
            row = []
            for c in range(nt_c):
                row.append(prog.data(f"{name}[{r},{c}]", tile_bytes))
                for d in DIRS:
                    strip = tile_cols if d in ("N", "S") else tile_rows
                    self._border[(r, c, d)] = prog.data(
                        f"{name}[{r},{c}].{d}", strip * elem_bytes
                    )
            self._interior.append(row)

    # ------------------------------------------------------------------
    def interior(self, r: int, c: int) -> DataObject:
        return self._interior[r][c]

    def border(self, r: int, c: int, d: str) -> DataObject:
        return self._border[(r, c, d)]

    def own_borders(self, r: int, c: int) -> list[DataObject]:
        """All four strips of tile (r, c) — written together with the tile."""
        return [self._border[(r, c, d)] for d in DIRS]

    def halo_reads(self, r: int, c: int) -> list[DataObject]:
        """Strips of the existing 4-neighbours that face tile (r, c)."""
        reads = []
        for d in DIRS:
            dr, dc = _OFFSETS[d]
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.nt_r and 0 <= nc < self.nt_c:
                reads.append(self._border[(nr, nc, _OPPOSITE[d])])
        return reads

    def tiles(self):
        """Iterate (r, c) row-major."""
        for r in range(self.nt_r):
            for c in range(self.nt_c):
                yield r, c


def ep_grid_block(r: int, c: int, nt_r: int, nt_c: int, n_sockets: int) -> int:
    """Expert placement for grids: contiguous 2-D blocks on a pr x pc
    socket grid (pr >= pc, most-square factorisation)."""
    pr = n_sockets
    for cand in range(1, n_sockets + 1):
        if n_sockets % cand == 0 and cand >= n_sockets // cand:
            pr = cand
            break
    pc = n_sockets // pr
    return (r * pr // nt_r) * pc + (c * pc // nt_c)
