"""Integral histogram: blocked cross-weave scan (Porikli's algorithm).

For every pixel, the cumulative histogram of the rectangle dominated by
it, computed in two passes: a **horizontal pass** (each tile row is an
independent left-to-right prefix chain) followed by a **vertical pass**
(each tile column an independent top-to-bottom chain, consuming the
horizontal result).  With ``n_bins`` bins every propagated edge is
``tile * n_bins`` values and the intermediate/output tiles are
``tile^2 * n_bins`` — the heaviest dependence traffic in the suite
relative to its compute, which is why Figure 1 marks DFIFO at 0.40x here:
nearly all of that traffic turns remote.

Payload mode computes real per-bin summed-area tables and verifies against
``np.cumsum(np.cumsum(indicator))`` per bin (exact integer counts).
"""

from __future__ import annotations

import numpy as np

from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication


class IntegralHistogramApp(TaskApplication):
    """Blocked cross-weave integral histogram over an ``nt x nt`` grid."""

    name = "histogram"

    def __init__(
        self,
        nt: int = 16,
        tile: int = 64,
        n_bins: int = 16,
        repeats: int = 3,
        seed: int = 1234,
    ) -> None:
        super().__init__()
        self._check_positive(nt=nt, tile=tile, n_bins=n_bins, repeats=repeats)
        self.nt = nt
        self.tile = tile
        self.n_bins = n_bins
        self.repeats = repeats
        self.seed = seed

    # ------------------------------------------------------------------
    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        prog = TaskProgram(self.name)
        nt, tile, nb = self.nt, self.tile, self.n_bins
        img_bytes = tile * tile * 8
        hist_tile_bytes = tile * tile * nb * 8
        edge_bytes = tile * nb * 8
        pass_work = 2.0 * tile * tile * nb / FLOP_RATE

        ctx = None
        if with_payload:
            rng = np.random.default_rng(self.seed)
            img = rng.integers(0, nb, size=(nt * tile, nt * tile))
            ctx = {
                "img": img,
                "hs": np.zeros((nb, nt * tile, nt * tile)),
                "sat": np.zeros((nb, nt * tile, nt * tile)),
            }
            self._verify_ctx = ctx

        def ep(r: int, c: int) -> dict:
            # The expert distributes tile *rows*: every row chain of the
            # horizontal pass then lives on one socket (fully parallel and
            # local), and the vertical pass pipelines down the row blocks.
            return {"ep_socket": r * n_sockets // nt}

        image = [[prog.data(f"img[{r},{c}]", img_bytes) for c in range(nt)]
                 for r in range(nt)]
        for r in range(nt):
            for c in range(nt):
                prog.task(f"load({r},{c})", outs=[image[r][c]],
                          work=tile * tile / FLOP_RATE, meta=ep(r, c))

        # Output and intermediate buffers are allocated once and *reused*
        # across the ``repeats`` frames, as the original benchmark does —
        # whoever first touches them in frame 0 owns their pages for every
        # later frame (allocation-unaware policies then write remotely).
        hs = [[prog.data(f"hs[{r},{c}]", hist_tile_bytes)
               for c in range(nt)] for r in range(nt)]
        hedge = [[prog.data(f"he[{r},{c}]", edge_bytes)
                  for c in range(nt)] for r in range(nt)]
        sat = [[prog.data(f"sat[{r},{c}]", hist_tile_bytes)
                for c in range(nt)] for r in range(nt)]
        vedge = [[prog.data(f"ve[{r},{c}]", edge_bytes)
                  for c in range(nt)] for r in range(nt)]
        for rep in range(self.repeats):
            payload_rep = with_payload and rep == self.repeats - 1
            # Horizontal pass: row chains.
            for r in range(nt):
                for c in range(nt):
                    ins = [image[r][c]]
                    if c > 0:
                        ins.append(hedge[r][c - 1])
                    fn = self._make_hpass(ctx, r, c) if payload_rep else None
                    prog.task(
                        f"hpass{rep}({r},{c})", ins=ins,
                        outs=[hs[r][c], hedge[r][c]],
                        work=pass_work, fn=fn, meta=ep(r, c),
                    )
            # Vertical pass: column chains over the horizontal result.
            for r in range(nt):
                for c in range(nt):
                    ins = [hs[r][c]]
                    if r > 0:
                        ins.append(vedge[r - 1][c])
                    fn = self._make_vpass(ctx, r, c) if payload_rep else None
                    prog.task(
                        f"vpass{rep}({r},{c})", ins=ins,
                        outs=[sat[r][c], vedge[r][c]],
                        work=pass_work, fn=fn, meta=ep(r, c),
                    )
        return prog.finalize()

    # ------------------------------------------------------------------
    def _make_hpass(self, ctx, r: int, c: int):
        tile, nb = self.tile, self.n_bins

        def hpass() -> None:
            img, hs = ctx["img"], ctx["hs"]
            rows = np.s_[r * tile : (r + 1) * tile]
            cols = np.s_[c * tile : (c + 1) * tile]
            block = img[rows, cols]
            for b in range(nb):
                local = np.cumsum(block == b, axis=1).astype(float)
                if c > 0:
                    local += hs[b, rows, c * tile - 1][:, None]
                hs[b, rows, cols] = local

        return hpass

    def _make_vpass(self, ctx, r: int, c: int):
        tile, nb = self.tile, self.n_bins

        def vpass() -> None:
            hs, sat = ctx["hs"], ctx["sat"]
            rows = np.s_[r * tile : (r + 1) * tile]
            cols = np.s_[c * tile : (c + 1) * tile]
            for b in range(nb):
                local = np.cumsum(hs[b, rows, cols], axis=0)
                if r > 0:
                    local += sat[b, r * tile - 1, cols][None, :]
                sat[b, rows, cols] = local

        return vpass

    def verify(self) -> float:
        ctx = self._require_payload()
        img = ctx["img"]
        err = 0.0
        for b in range(self.n_bins):
            ref = np.cumsum(np.cumsum(img == b, axis=0), axis=1)
            err = max(err, float(np.abs(ctx["sat"][b] - ref).max()))
        return err
