"""Application framework: each benchmark builds a :class:`TaskProgram`.

An application is a *program generator*: ``build(n_sockets)`` emits the
tasks, data objects and dependence structure the paper's benchmark would
create under Nanos++.  Two modes:

* **simulation mode** (default) — data objects carry sizes only; fast, used
  by the benchmarks;
* **payload mode** (``with_payload=True``) — tasks close over real numpy
  arrays and ``verify()`` checks the final numerical result against a plain
  numpy reference, proving the dependence structure is correct (any
  scheduler-legal execution order must produce the right answer).

Conventions shared by all apps:

* every task carries ``meta["ep_socket"]`` — the expert-programmer
  placement (block / block-cyclic, matching the app's data layout);
* compute cost is ``work = compute_intensity * flops_proxy / FLOP_RATE``
  with per-app intensities chosen so stream-like codes are memory-bound and
  factorisations are compute-bound (DESIGN.md §4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ApplicationError
from ..runtime.program import TaskProgram

#: Simulated "flop rate": flops per time unit.  One time unit also moves
#: DEFAULT_NODE_BANDWIDTH bytes from local memory, so a task with
#: flops/bytes above ~DEFAULT_NODE_BANDWIDTH/FLOP_RATE is compute-bound.
FLOP_RATE = 4_000_000.0


class TaskApplication(ABC):
    """Base class for the eight paper benchmarks."""

    #: registry/CLI name
    name: str = "abstract"

    def __init__(self) -> None:
        self._verify_ctx = None

    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        """Generate the task program for a machine with ``n_sockets``."""

    def verify(self) -> float:
        """Max abs error of the last payload build vs the numpy reference.

        Only valid after ``build(..., with_payload=True)`` **and** running
        the program's payloads (e.g. via the sequential executor).  Raises
        :class:`ApplicationError` if no payload build exists.
        """
        raise ApplicationError(f"{self.name} does not implement verification")

    # ------------------------------------------------------------------
    def _require_payload(self):
        if self._verify_ctx is None:
            raise ApplicationError(
                f"{self.name}.verify() called without a payload build"
            )
        return self._verify_ctx

    @staticmethod
    def _check_positive(**kwargs: int) -> None:
        for key, value in kwargs.items():
            if value < 1:
                raise ApplicationError(f"{key} must be >= 1, got {value}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def ep_block(index: int, count: int, n_sockets: int) -> int:
    """Expert block distribution: contiguous chunks of ``count`` items."""
    return index * n_sockets // count


def ep_block_cyclic_2d(i: int, j: int, n_sockets: int) -> int:
    """Expert 2-D block-cyclic distribution over a pr x pc socket grid.

    ``pr`` is the most-square factorisation with pr >= pc (8 -> 4x2).
    """
    pr = n_sockets
    for cand in range(1, n_sockets + 1):
        if n_sockets % cand == 0 and cand >= n_sockets // cand:
            pr = cand
            break
    pc = n_sockets // pr
    return (i % pr) * pc + (j % pc)
