"""Jacobi: blocked 2-D 4-point relaxation with ping-pong buffers.

Memory-bound (reads 5 tiles' worth of data, ~4 flops/element) with a
regular neighbour structure — the classic case where a spatially coherent
placement (EP's 2-D blocks, RGP's partition) wins: halo traffic stays
on-socket and each sweep streams tiles from local memory.  Figure 1 marks
DFIFO at 0.42x here.

Sweep ``s`` computes ``dst = 0.25 * (N + S + E + W)`` over the source
buffer, reading the four neighbouring tiles' border strips and its own
source interior.  Domain boundary values are held at 1.0.
"""

from __future__ import annotations

import numpy as np

from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication
from .tiles import TiledField, ep_grid_block


class JacobiApp(TaskApplication):
    """Ping-pong tiled Jacobi relaxation.

    Parameters
    ----------
    nt:
        Tiles per side (``nt x nt`` tile grid).
    tile:
        Elements per tile side (tile is ``tile x tile`` float64).
    sweeps:
        Jacobi iterations.
    """

    name = "jacobi"

    def __init__(self, nt: int = 12, tile: int = 128, sweeps: int = 8) -> None:
        super().__init__()
        self._check_positive(nt=nt, tile=tile, sweeps=sweeps)
        self.nt = nt
        self.tile = tile
        self.sweeps = sweeps

    # ------------------------------------------------------------------
    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        prog = TaskProgram(self.name)
        nt, tile = self.nt, self.tile
        fields = [
            TiledField(prog, "u", nt, nt, tile, tile),
            TiledField(prog, "v", nt, nt, tile, tile),
        ]
        sweep_work = 4.0 * tile * tile / FLOP_RATE

        grids = None
        if with_payload:
            n = nt * tile
            grids = [np.ones((n + 2, n + 2)), np.ones((n + 2, n + 2))]
            grids[0][1:-1, 1:-1] = 0.0
            grids[1][1:-1, 1:-1] = 0.0
            self._verify_ctx = grids

        for r, c in fields[0].tiles():
            fn = self._make_init(grids, r, c) if with_payload else None
            prog.task(
                f"init({r},{c})",
                outs=[fields[0].interior(r, c), *fields[0].own_borders(r, c)],
                work=tile * tile / FLOP_RATE,
                fn=fn,
                meta={"ep_socket": ep_grid_block(r, c, nt, nt, n_sockets)},
            )
        for s in range(self.sweeps):
            src, dst = fields[s % 2], fields[(s + 1) % 2]
            for r, c in src.tiles():
                fn = (
                    self._make_sweep(grids, s, r, c) if with_payload else None
                )
                prog.task(
                    f"sweep{s}({r},{c})",
                    ins=[src.interior(r, c), *src.halo_reads(r, c)],
                    outs=[dst.interior(r, c), *dst.own_borders(r, c)],
                    work=sweep_work,
                    fn=fn,
                    meta={"ep_socket": ep_grid_block(r, c, nt, nt, n_sockets)},
                )
        return prog.finalize()

    # ------------------------------------------------------------------
    def _make_init(self, grids, r: int, c: int):
        tile = self.tile

        def init() -> None:
            sl = np.s_[1 + r * tile : 1 + (r + 1) * tile,
                       1 + c * tile : 1 + (c + 1) * tile]
            grids[0][sl] = 0.0

        return init

    def _make_sweep(self, grids, s: int, r: int, c: int):
        tile = self.tile

        def sweep() -> None:
            src, dst = grids[s % 2], grids[(s + 1) % 2]
            r0, c0 = 1 + r * tile, 1 + c * tile
            rows, cols = np.s_[r0 : r0 + tile], np.s_[c0 : c0 + tile]
            dst[rows, cols] = 0.25 * (
                src[r0 - 1 : r0 + tile - 1, cols]
                + src[r0 + 1 : r0 + tile + 1, cols]
                + src[rows, c0 - 1 : c0 + tile - 1]
                + src[rows, c0 + 1 : c0 + tile + 1]
            )

        return sweep

    def verify(self) -> float:
        grids = self._require_payload()
        n = self.nt * self.tile
        ref = np.ones((n + 2, n + 2))
        ref[1:-1, 1:-1] = 0.0
        buf = [ref, ref.copy()]
        for s in range(self.sweeps):
            src, dst = buf[s % 2], buf[(s + 1) % 2]
            dst[1:-1, 1:-1] = 0.25 * (
                src[:-2, 1:-1] + src[2:, 1:-1] + src[1:-1, :-2] + src[1:-1, 2:]
            )
        final = buf[self.sweeps % 2]
        got = grids[self.sweeps % 2]
        return float(np.abs(got[1:-1, 1:-1] - final[1:-1, 1:-1]).max())
