"""Red-Black Gauss-Seidel: checkerboard-ordered blocked relaxation.

Tiles are coloured by ``(r + c) % 2``.  Each sweep updates all red tiles
(reading black neighbour strips from the previous half-sweep), then all
black tiles (reading the freshly updated red strips).  Compared to plain
Gauss-Seidel the TDG is much wider (every tile of one colour is
independent), giving the scheduler full parallelism but a strictly
alternating producer/consumer pattern between the colour classes.
"""

from __future__ import annotations

import numpy as np

from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication
from .gauss_seidel import _block_update
from .tiles import TiledField, ep_grid_block


class RedBlackApp(TaskApplication):
    """Tiled red-black relaxation (block updates, tile-level colouring)."""

    name = "redblack"

    def __init__(
        self,
        nt: int = 16,
        tile: int = 128,
        sweeps: int = 6,
        barrier_between_phases: bool = True,
    ) -> None:
        """``barrier_between_phases``: taskwait between the red and black
        half-sweeps (the classic fork-join red-black structure).  Without
        it the colour phases chain through border dependencies only."""
        super().__init__()
        self._check_positive(nt=nt, tile=tile, sweeps=sweeps)
        self.nt = nt
        self.tile = tile
        self.sweeps = sweeps
        self.barrier_between_phases = barrier_between_phases

    def _colour_tiles(self, colour: int):
        """Tiles of one colour, row-major."""
        for r in range(self.nt):
            for c in range(self.nt):
                if (r + c) % 2 == colour:
                    yield r, c

    def _ordered_tiles(self):
        """Red tiles first, then black, row-major within each colour."""
        for colour in (0, 1):
            yield from self._colour_tiles(colour)

    # ------------------------------------------------------------------
    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        prog = TaskProgram(self.name)
        nt, tile = self.nt, self.tile
        u = TiledField(prog, "u", nt, nt, tile, tile)
        work = 4.0 * tile * tile / FLOP_RATE

        grid = None
        if with_payload:
            n = nt * tile
            grid = np.ones((n + 2, n + 2))
            self._verify_ctx = grid

        for r, c in u.tiles():
            fn = self._make_init(grid, r, c) if with_payload else None
            prog.task(
                f"init({r},{c})",
                outs=[u.interior(r, c), *u.own_borders(r, c)],
                work=tile * tile / FLOP_RATE,
                fn=fn,
                meta={"ep_socket": ep_grid_block(r, c, nt, nt, n_sockets)},
            )
        for s in range(self.sweeps):
            for colour in (0, 1):
                if self.barrier_between_phases:
                    prog.barrier()
                for r, c in self._colour_tiles(colour):
                    fn = self._make_update(grid, r, c) if with_payload else None
                    label = "red" if colour == 0 else "black"
                    prog.task(
                        f"{label}{s}({r},{c})",
                        ins=u.halo_reads(r, c),
                        inouts=[u.interior(r, c)],
                        outs=u.own_borders(r, c),
                        work=work,
                        fn=fn,
                        meta={"ep_socket": ep_grid_block(r, c, nt, nt, n_sockets)},
                    )
        return prog.finalize()

    # ------------------------------------------------------------------
    def _make_init(self, grid, r: int, c: int):
        tile = self.tile

        def init() -> None:
            grid[1 + r * tile : 1 + (r + 1) * tile,
                 1 + c * tile : 1 + (c + 1) * tile] = 0.0

        return init

    def _make_update(self, grid, r: int, c: int):
        tile = self.tile

        def update() -> None:
            _block_update(grid, r, c, tile)

        return update

    def verify(self) -> float:
        grid = self._require_payload()
        n = self.nt * self.tile
        ref = np.ones((n + 2, n + 2))
        ref[1:-1, 1:-1] = 0.0
        for _ in range(self.sweeps):
            for r, c in self._ordered_tiles():
                _block_update(ref, r, c, self.tile)
        return float(np.abs(grid - ref).max())
