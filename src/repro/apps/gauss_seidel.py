"""Gauss-Seidel: in-place blocked relaxation with wavefront dependencies.

Block Gauss-Seidel with Jacobi inner updates: tile (r, c) of sweep ``s``
consumes the *already updated* W and N neighbour strips of the same sweep
and the not-yet-updated E and S strips of the previous sweep — exactly the
dependence pattern the runtime derives from in/inout accesses created in
row-major tile order.  The TDG is a sequence of diagonal wavefronts, much
less parallel than Jacobi, which stresses the scheduler's ability to keep
the wavefront's working set local while it slides across the grid.
"""

from __future__ import annotations

import numpy as np

from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication
from .tiles import TiledField, ep_grid_block


class GaussSeidelApp(TaskApplication):
    """Tiled Gauss-Seidel (block GS, Jacobi update inside each tile)."""

    name = "gauss-seidel"

    def __init__(
        self,
        nt: int = 16,
        tile: int = 128,
        sweeps: int = 6,
        barrier_between_sweeps: bool = True,
    ) -> None:
        """``barrier_between_sweeps``: taskwait after each sweep, as in the
        original OmpSs benchmark's outer convergence loop (also an RGP
        partition trigger).  Without it consecutive sweeps pipeline."""
        super().__init__()
        self._check_positive(nt=nt, tile=tile, sweeps=sweeps)
        self.nt = nt
        self.tile = tile
        self.sweeps = sweeps
        self.barrier_between_sweeps = barrier_between_sweeps

    # ------------------------------------------------------------------
    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        prog = TaskProgram(self.name)
        nt, tile = self.nt, self.tile
        u = TiledField(prog, "u", nt, nt, tile, tile)
        work = 4.0 * tile * tile / FLOP_RATE

        grid = None
        if with_payload:
            n = nt * tile
            grid = np.ones((n + 2, n + 2))
            self._verify_ctx = grid

        for r, c in u.tiles():
            fn = self._make_init(grid, r, c) if with_payload else None
            prog.task(
                f"init({r},{c})",
                outs=[u.interior(r, c), *u.own_borders(r, c)],
                work=tile * tile / FLOP_RATE,
                fn=fn,
                meta={"ep_socket": ep_grid_block(r, c, nt, nt, n_sockets)},
            )
        for s in range(self.sweeps):
            if self.barrier_between_sweeps:
                prog.barrier()
            for r, c in u.tiles():
                fn = self._make_sweep(grid, r, c) if with_payload else None
                prog.task(
                    f"gs{s}({r},{c})",
                    ins=u.halo_reads(r, c),
                    inouts=[u.interior(r, c)],
                    outs=u.own_borders(r, c),
                    work=work,
                    fn=fn,
                    meta={"ep_socket": ep_grid_block(r, c, nt, nt, n_sockets)},
                )
        return prog.finalize()

    # ------------------------------------------------------------------
    def _make_init(self, grid, r: int, c: int):
        tile = self.tile

        def init() -> None:
            grid[1 + r * tile : 1 + (r + 1) * tile,
                 1 + c * tile : 1 + (c + 1) * tile] = 0.0

        return init

    def _make_sweep(self, grid, r: int, c: int):
        tile = self.tile

        def sweep() -> None:
            _block_update(grid, r, c, tile)

        return sweep

    def verify(self) -> float:
        grid = self._require_payload()
        n = self.nt * self.tile
        ref = np.ones((n + 2, n + 2))
        ref[1:-1, 1:-1] = 0.0
        for _ in range(self.sweeps):
            for r in range(self.nt):
                for c in range(self.nt):
                    _block_update(ref, r, c, self.tile)
        return float(np.abs(grid - ref).max())


def _block_update(grid: np.ndarray, r: int, c: int, tile: int) -> None:
    """One tile update: 4-point average using current neighbour values."""
    r0, c0 = 1 + r * tile, 1 + c * tile
    rows, cols = np.s_[r0 : r0 + tile], np.s_[c0 : c0 + tile]
    grid[rows, cols] = 0.25 * (
        grid[r0 - 1 : r0 + tile - 1, cols]
        + grid[r0 + 1 : r0 + tile + 1, cols]
        + grid[rows, c0 - 1 : c0 + tile - 1]
        + grid[rows, c0 + 1 : c0 + tile + 1]
    )
