"""Tiled QR factorisation (PLASMA-style tall-skinny kernel DAG).

Four kernels with the classic dependence pattern:

* ``geqrt(k)``   — QR of the diagonal tile, producing R_kk and Q_kk;
* ``larfb(k,j)`` — apply Q_kk^T to the panel row (j > k);
* ``tsqrt(i,k)`` — QR of [R_kk; A_ik] (serialised down the column),
  producing a 2T x T reflector block Q2_ik and zeroing A_ik;
* ``ssrfb(i,k,j)`` — apply Q2_ik^T to [A_kj; A_ij].

The most compute-bound application in the suite (O(T^3) flops per O(T^2)
bytes): placement barely matters, so Figure 1 shows all policies within a
few percent of LAS — an important *negative control* for the cost model.

Payload mode stores the per-kernel orthogonal factors explicitly (tiles are
small) and verifies R^T R == A^T A (Q cancels), plus upper-triangularity.
"""

from __future__ import annotations

import numpy as np

from ..runtime.program import TaskProgram
from .base import FLOP_RATE, TaskApplication, ep_block_cyclic_2d


class QRApp(TaskApplication):
    """Tiled Householder QR of an ``(nt*tile) x (nt*tile)`` matrix."""

    name = "qr"

    def __init__(self, nt: int = 10, tile: int = 96, seed: int = 4242) -> None:
        super().__init__()
        self._check_positive(nt=nt, tile=tile)
        self.nt = nt
        self.tile = tile
        self.seed = seed

    # ------------------------------------------------------------------
    def build(self, n_sockets: int, *, with_payload: bool = False) -> TaskProgram:
        prog = TaskProgram(self.name)
        nt, t = self.nt, self.tile
        tile_bytes = t * t * 8
        t3 = float(t) ** 3

        a = [[prog.data(f"A[{i},{j}]", tile_bytes) for j in range(nt)]
             for i in range(nt)]

        ctx = None
        if with_payload:
            rng = np.random.default_rng(self.seed)
            full = rng.standard_normal((nt * t, nt * t))
            ctx = {
                "A0": full.copy(),
                "tiles": [
                    [full[i * t : (i + 1) * t, j * t : (j + 1) * t].copy()
                     for j in range(nt)]
                    for i in range(nt)
                ],
                "q1": {},   # (k) -> Q_kk (T x T)
                "q2": {},   # (i, k) -> Q2 (2T x T stacked reflector)
            }
            self._verify_ctx = ctx

        def ep(i: int, j: int) -> dict:
            return {"ep_socket": ep_block_cyclic_2d(i, j, n_sockets)}

        for i in range(nt):
            for j in range(nt):
                fn = self._t_load(ctx, i, j) if ctx else None
                prog.task(f"load({i},{j})", outs=[a[i][j]],
                          work=t * t / FLOP_RATE, fn=fn, meta=ep(i, j))

        for k in range(nt):
            qkk = prog.data(f"Q[{k}]", tile_bytes)
            fn = self._t_geqrt(ctx, k) if ctx else None
            prog.task(f"geqrt({k})", inouts=[a[k][k]], outs=[qkk],
                      work=2.0 * t3 / FLOP_RATE, fn=fn, meta=ep(k, k))
            for j in range(k + 1, nt):
                fn = self._t_larfb(ctx, k, j) if ctx else None
                prog.task(f"larfb({k},{j})", ins=[qkk], inouts=[a[k][j]],
                          work=2.0 * t3 / FLOP_RATE, fn=fn, meta=ep(k, j))
            for i in range(k + 1, nt):
                # Full 2T x 2T orthogonal factor of the stacked panel.
                q2 = prog.data(f"Q2[{i},{k}]", 4 * tile_bytes)
                fn = self._t_tsqrt(ctx, i, k) if ctx else None
                prog.task(
                    f"tsqrt({i},{k})",
                    inouts=[a[k][k], a[i][k]], outs=[q2],
                    work=3.0 * t3 / FLOP_RATE, fn=fn, meta=ep(i, k),
                )
                for j in range(k + 1, nt):
                    fn = self._t_ssrfb(ctx, i, k, j) if ctx else None
                    prog.task(
                        f"ssrfb({i},{k},{j})",
                        ins=[q2], inouts=[a[k][j], a[i][j]],
                        work=4.0 * t3 / FLOP_RATE, fn=fn, meta=ep(i, j),
                    )
        return prog.finalize()

    # ------------------------------------------------------------------
    # Payload kernels (explicit small orthogonal factors).
    # ------------------------------------------------------------------
    def _t_load(self, ctx, i, j):
        def fn() -> None:  # tiles were pre-sliced at build time
            pass

        return fn

    def _t_geqrt(self, ctx, k):
        def fn() -> None:
            tiles = ctx["tiles"]
            q, r = np.linalg.qr(tiles[k][k])
            ctx["q1"][k] = q
            tiles[k][k] = r

        return fn

    def _t_larfb(self, ctx, k, j):
        def fn() -> None:
            tiles = ctx["tiles"]
            tiles[k][j] = ctx["q1"][k].T @ tiles[k][j]

        return fn

    def _t_tsqrt(self, ctx, i, k):
        t = self.tile

        def fn() -> None:
            tiles = ctx["tiles"]
            stacked = np.vstack([tiles[k][k], tiles[i][k]])
            # Full (2T x 2T) Q: ssrfb must transform the whole stacked panel,
            # not just its column space.
            q, r = np.linalg.qr(stacked, mode="complete")
            ctx["q2"][(i, k)] = q
            tiles[k][k] = r[:t]
            tiles[i][k] = np.zeros((t, t))

        return fn

    def _t_ssrfb(self, ctx, i, k, j):
        t = self.tile

        def fn() -> None:
            tiles = ctx["tiles"]
            stacked = np.vstack([tiles[k][j], tiles[i][j]])
            updated = ctx["q2"][(i, k)].T @ stacked
            tiles[k][j] = updated[:t]
            tiles[i][j] = updated[t:]

        return fn

    # ------------------------------------------------------------------
    def verify(self) -> float:
        """Relative error of R^T R vs A0^T A0, plus triangularity check."""
        ctx = self._require_payload()
        nt, t = self.nt, self.tile
        r_full = np.zeros((nt * t, nt * t))
        for i in range(nt):
            for j in range(nt):
                r_full[i * t : (i + 1) * t, j * t : (j + 1) * t] = ctx["tiles"][i][j]
        below = np.tril(r_full, k=-1)
        tri_err = float(np.abs(below).max())
        gram_ref = ctx["A0"].T @ ctx["A0"]
        gram_got = r_full.T @ r_full
        scale = float(np.abs(gram_ref).max()) or 1.0
        return max(tri_err, float(np.abs(gram_got - gram_ref).max()) / scale)
