"""Structural analyses of task dependency graphs.

These are the quantities a scheduling study cares about: topological order
(execution legality), critical path (the lower bound no scheduler can beat),
levels (wavefront width / available parallelism), and connectivity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .tdg import TaskGraph


def topological_order(tdg: TaskGraph) -> list[int]:
    """Kahn topological order (by construction ids already are one, but this
    validates the invariant independently and is used by the executor)."""
    indeg = [tdg.in_degree(v) for v in tdg.nodes()]
    queue = deque(v for v in tdg.nodes() if indeg[v] == 0)
    order: list[int] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for dst in tdg.successors(v):
            indeg[dst] -= 1
            if indeg[dst] == 0:
                queue.append(dst)
    if len(order) != tdg.n_nodes:
        raise GraphError("graph contains a cycle")  # unreachable by design
    return order


def is_acyclic(tdg: TaskGraph) -> bool:
    """True iff the graph has a topological order (always, by construction)."""
    try:
        topological_order(tdg)
        return True
    except GraphError:
        return False


def levels(tdg: TaskGraph) -> np.ndarray:
    """Level (longest hop distance from any root) of each node."""
    lvl = np.zeros(tdg.n_nodes, dtype=np.int64)
    for v in topological_order(tdg):
        for dst in tdg.successors(v):
            if lvl[v] + 1 > lvl[dst]:
                lvl[dst] = lvl[v] + 1
    return lvl


def level_widths(tdg: TaskGraph) -> np.ndarray:
    """Number of nodes at each level — the DAG's parallelism profile."""
    lvl = levels(tdg)
    if len(lvl) == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(lvl)


def critical_path_weight(tdg: TaskGraph) -> float:
    """Longest path weight, counting node weights only.

    With node weight = task execution time, this is the ideal makespan on
    infinitely many local cores.
    """
    best = np.zeros(tdg.n_nodes, dtype=np.float64)
    for v in topological_order(tdg):
        w = tdg.node_weight(v)
        incoming = tdg.predecessors(v)
        if incoming:
            best[v] = w + max(best[p] for p in incoming)
        else:
            best[v] = w
    return float(best.max()) if tdg.n_nodes else 0.0


def critical_path(tdg: TaskGraph) -> list[int]:
    """One longest (node-weighted) path, as a list of node ids."""
    if tdg.n_nodes == 0:
        return []
    best = np.zeros(tdg.n_nodes, dtype=np.float64)
    prev = np.full(tdg.n_nodes, -1, dtype=np.int64)
    for v in topological_order(tdg):
        w = tdg.node_weight(v)
        incoming = tdg.predecessors(v)
        if incoming:
            p = max(incoming, key=lambda u: best[u])
            best[v] = w + best[p]
            prev[v] = p
        else:
            best[v] = w
    v = int(np.argmax(best))
    path = [v]
    while prev[v] != -1:
        v = int(prev[v])
        path.append(v)
    path.reverse()
    return path


def weakly_connected_components(tdg: TaskGraph) -> list[list[int]]:
    """Connected components ignoring edge direction, each sorted by id."""
    seen = [False] * tdg.n_nodes
    comps: list[list[int]] = []
    for start in tdg.nodes():
        if seen[start]:
            continue
        comp = []
        stack = [start]
        seen[start] = True
        while stack:
            v = stack.pop()
            comp.append(v)
            for nbr in list(tdg.successors(v)) + list(tdg.predecessors(v)):
                if not seen[nbr]:
                    seen[nbr] = True
                    stack.append(nbr)
        comps.append(sorted(comp))
    return comps


@dataclass(frozen=True)
class GraphSummary:
    """Headline numbers describing a TDG."""

    n_nodes: int
    n_edges: int
    total_work: float
    total_edge_bytes: float
    critical_path: float
    n_levels: int
    max_width: int
    avg_parallelism: float
    n_components: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"nodes={self.n_nodes} edges={self.n_edges} "
            f"work={self.total_work:.3g} cp={self.critical_path:.3g} "
            f"levels={self.n_levels} max_width={self.max_width} "
            f"avg_par={self.avg_parallelism:.2f} comps={self.n_components}"
        )


def summarize(tdg: TaskGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for a TDG."""
    widths = level_widths(tdg)
    total_work = sum(tdg.node_weight(v) for v in tdg.nodes())
    cp = critical_path_weight(tdg)
    return GraphSummary(
        n_nodes=tdg.n_nodes,
        n_edges=tdg.n_edges,
        total_work=total_work,
        total_edge_bytes=tdg.total_edge_weight,
        critical_path=cp,
        n_levels=len(widths),
        max_width=int(widths.max()) if len(widths) else 0,
        avg_parallelism=(total_work / cp) if cp > 0 else 0.0,
        n_components=len(weakly_connected_components(tdg)),
    )
