"""Incremental task dependency graph (TDG).

The runtime instantiates tasks one by one; the TDG grows with them.  Nodes
are dense integer ids assigned in creation order (this order matters: the
RGP *window* is "the first ``window_size`` tasks created").  Edges carry the
number of bytes the dependence represents — the partitioner's edge weights.

The structure is append-only: nodes and edges are only added, matching a
runtime where dependencies are discovered at task creation and never
retracted.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..errors import GraphError


class TaskGraph:
    """Directed acyclic multigraph with byte-weighted, coalesced edges.

    Adding an edge that already exists accumulates its weight (several
    dependencies between the same pair of tasks behave like one fat one).
    Acyclicity is guaranteed structurally: an edge may only point from a
    lower id to a higher id, i.e. from an earlier-created task to a later
    one — a dependence can never target an already-created task's past.
    """

    def __init__(self) -> None:
        self._succs: list[dict[int, float]] = []
        self._preds: list[dict[int, float]] = []
        self._node_weight: list[float] = []
        self._labels: list[str] = []
        self._n_edges = 0
        self.total_edge_weight = 0.0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, weight: float = 1.0, label: str = "") -> int:
        """Append a node; returns its id (creation order)."""
        if weight < 0:
            raise GraphError(f"node weight must be >= 0, got {weight}")
        self._succs.append({})
        self._preds.append({})
        self._node_weight.append(float(weight))
        self._labels.append(label)
        return len(self._succs) - 1

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Add (or fatten) the dependence ``src -> dst`` with byte weight."""
        self._check(src)
        self._check(dst)
        if src == dst:
            raise GraphError(f"self-dependence on node {src}")
        if src > dst:
            raise GraphError(
                f"edge {src}->{dst} points backwards in creation order; "
                "a task cannot depend on a later task"
            )
        if weight < 0:
            raise GraphError(f"edge weight must be >= 0, got {weight}")
        if dst not in self._succs[src]:
            self._n_edges += 1
            self._succs[src][dst] = 0.0
            self._preds[dst][src] = 0.0
        self._succs[src][dst] += float(weight)
        self._preds[dst][src] += float(weight)
        self.total_edge_weight += float(weight)

    def set_node_weight(self, node: int, weight: float) -> None:
        self._check(node)
        if weight < 0:
            raise GraphError(f"node weight must be >= 0, got {weight}")
        self._node_weight[node] = float(weight)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._succs)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._succs):
            raise GraphError(f"node {node} out of range [0, {len(self._succs)})")

    def node_weight(self, node: int) -> float:
        self._check(node)
        return self._node_weight[node]

    def label(self, node: int) -> str:
        self._check(node)
        return self._labels[node]

    def successors(self, node: int) -> dict[int, float]:
        """Outgoing edges as ``{dst: bytes}`` (read-only by convention)."""
        self._check(node)
        return self._succs[node]

    def predecessors(self, node: int) -> dict[int, float]:
        """Incoming edges as ``{src: bytes}`` (read-only by convention)."""
        self._check(node)
        return self._preds[node]

    def in_degree(self, node: int) -> int:
        self._check(node)
        return len(self._preds[node])

    def out_degree(self, node: int) -> int:
        self._check(node)
        return len(self._succs[node])

    def edge_weight(self, src: int, dst: int) -> float:
        self._check(src)
        self._check(dst)
        try:
            return self._succs[src][dst]
        except KeyError:
            raise GraphError(f"no edge {src}->{dst}") from None

    def has_edge(self, src: int, dst: int) -> bool:
        self._check(src)
        self._check(dst)
        return dst in self._succs[src]

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(src, dst, weight)`` in src order."""
        for src, nbrs in enumerate(self._succs):
            for dst, w in nbrs.items():
                yield src, dst, w

    def nodes(self) -> range:
        return range(self.n_nodes)

    def roots(self) -> list[int]:
        """Nodes with no predecessors (initially-ready tasks)."""
        return [n for n in self.nodes() if not self._preds[n]]

    def leaves(self) -> list[int]:
        """Nodes with no successors."""
        return [n for n in self.nodes() if not self._succs[n]]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def prefix(self, n: int) -> "TaskGraph":
        """Induced subgraph on the first ``n`` created nodes (the window)."""
        if n < 0:
            raise GraphError(f"prefix length must be >= 0, got {n}")
        n = min(n, self.n_nodes)
        sub = TaskGraph()
        for v in range(n):
            sub.add_node(self._node_weight[v], self._labels[v])
        for v in range(n):
            for dst, w in self._succs[v].items():
                if dst < n:
                    sub.add_edge(v, dst, w)
        return sub

    def subgraph(self, nodes: Iterable[int]) -> tuple["TaskGraph", list[int]]:
        """Induced subgraph; returns it plus the old-id list (new->old)."""
        keep = sorted(set(nodes))
        for v in keep:
            self._check(v)
        remap = {old: new for new, old in enumerate(keep)}
        sub = TaskGraph()
        for old in keep:
            sub.add_node(self._node_weight[old], self._labels[old])
        for old in keep:
            for dst, w in self._succs[old].items():
                if dst in remap:
                    sub.add_edge(remap[old], remap[dst], w)
        return sub, keep

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (for inspection/plotting)."""
        import networkx as nx

        g = nx.DiGraph()
        for v in self.nodes():
            g.add_node(v, weight=self._node_weight[v], label=self._labels[v])
        for src, dst, w in self.edges():
            g.add_edge(src, dst, weight=w)
        return g

    def __repr__(self) -> str:
        return f"TaskGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"
