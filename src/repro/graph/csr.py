"""Compressed-sparse-row graph used by the partitioners.

Partitioning works on an *undirected* weighted graph: the TDG's direction is
irrelevant for placement (a byte moved producer->consumer costs the same as
the reverse), so :func:`CSRGraph.from_tdg` symmetrises and coalesces edges.

Layout follows the METIS/SCOTCH convention:

* ``xadj``   — ``n+1`` offsets into the adjacency arrays;
* ``adjncy`` — neighbour ids, each undirected edge appears twice;
* ``adjwgt`` — edge weights aligned with ``adjncy``;
* ``vwgt``   — vertex weights (task work).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .tdg import TaskGraph


class CSRGraph:
    """Immutable undirected weighted graph in CSR form."""

    __slots__ = ("xadj", "adjncy", "adjwgt", "vwgt")

    def __init__(
        self,
        xadj: np.ndarray,
        adjncy: np.ndarray,
        adjwgt: np.ndarray,
        vwgt: np.ndarray,
    ) -> None:
        self.xadj = np.asarray(xadj, dtype=np.int64)
        self.adjncy = np.asarray(adjncy, dtype=np.int64)
        self.adjwgt = np.asarray(adjwgt, dtype=np.float64)
        self.vwgt = np.asarray(vwgt, dtype=np.float64)
        self.validate()

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return len(self.xadj) - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges (half the adjacency length)."""
        return len(self.adjncy) // 2

    @property
    def total_vertex_weight(self) -> float:
        return float(self.vwgt.sum())

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError`."""
        n = self.n_vertices
        if n < 0 or self.xadj[0] != 0:
            raise GraphError("xadj must start at 0")
        if np.any(np.diff(self.xadj) < 0):
            raise GraphError("xadj must be non-decreasing")
        if self.xadj[-1] != len(self.adjncy):
            raise GraphError("xadj[-1] must equal len(adjncy)")
        if len(self.adjwgt) != len(self.adjncy):
            raise GraphError("adjwgt and adjncy lengths differ")
        if len(self.vwgt) != n:
            raise GraphError("vwgt length must equal vertex count")
        if len(self.adjncy) and (
            self.adjncy.min() < 0 or self.adjncy.max() >= n
        ):
            raise GraphError("adjacency references out-of-range vertex")
        if np.any(self.adjwgt < 0) or np.any(self.vwgt < 0):
            raise GraphError("weights must be non-negative")

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edges: list[tuple[int, int, float]],
        vwgt: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build from an undirected edge list, coalescing duplicates.

        ``(u, v, w)`` and ``(v, u, w')`` (and repeats) merge into a single
        undirected edge of weight ``w + w'``.  Self-loops are dropped.
        """
        merged: dict[tuple[int, int], float] = {}
        for u, v, w in edges:
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise GraphError(f"edge ({u},{v}) out of range")
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0.0) + float(w)

        counts = np.zeros(n_vertices + 1, dtype=np.int64)
        for u, v in merged:
            counts[u + 1] += 1
            counts[v + 1] += 1
        xadj = np.cumsum(counts)
        adjncy = np.zeros(xadj[-1], dtype=np.int64)
        adjwgt = np.zeros(xadj[-1], dtype=np.float64)
        cursor = xadj[:-1].copy()
        for (u, v), w in merged.items():
            adjncy[cursor[u]] = v
            adjwgt[cursor[u]] = w
            cursor[u] += 1
            adjncy[cursor[v]] = u
            adjwgt[cursor[v]] = w
            cursor[v] += 1
        if vwgt is None:
            vwgt = np.ones(n_vertices, dtype=np.float64)
        return cls(xadj, adjncy, adjwgt, np.asarray(vwgt, dtype=np.float64))

    def induced_subgraph(
        self, vertices: np.ndarray
    ) -> tuple["CSRGraph", np.ndarray]:
        """Subgraph on ``vertices`` (edges with both ends inside).

        Returns the new graph and the old-id array (``old_ids[new] ==
        old``); vertex order is preserved, so partition results map back
        by position.
        """
        old_ids = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        if len(old_ids) and (old_ids[0] < 0 or old_ids[-1] >= self.n_vertices):
            raise GraphError("subgraph vertex out of range")
        new_of_old = {int(old): new for new, old in enumerate(old_ids)}
        edges: list[tuple[int, int, float]] = []
        for new_u, old_u in enumerate(old_ids):
            for old_v, w in zip(self.neighbors(old_u), self.neighbor_weights(old_u)):
                if old_v > old_u:  # each undirected edge once
                    new_v = new_of_old.get(int(old_v))
                    if new_v is not None:
                        edges.append((new_u, new_v, float(w)))
        return (
            self.from_edges(len(old_ids), edges, self.vwgt[old_ids]),
            old_ids,
        )

    @classmethod
    def from_tdg(cls, tdg: TaskGraph) -> "CSRGraph":
        """Symmetrised CSR view of a task dependency graph."""
        vwgt = np.fromiter(
            (tdg.node_weight(v) for v in tdg.nodes()),
            dtype=np.float64,
            count=tdg.n_nodes,
        )
        edges = [(u, v, w) for u, v, w in tdg.edges()]
        return cls.from_edges(tdg.n_nodes, edges, vwgt)

    def __repr__(self) -> str:
        return f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"
