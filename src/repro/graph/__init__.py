"""Graph substrate: the task dependency graph and its analyses.

The TDG is the runtime metadata the paper's contribution consumes (DESIGN.md
§3): an append-only DAG whose edge weights are dependence bytes.  The CSR
view feeds the partitioners; generators provide known-structure DAGs for
tests and synthetic studies.
"""

from .analysis import (
    GraphSummary,
    critical_path,
    critical_path_weight,
    is_acyclic,
    level_widths,
    levels,
    summarize,
    topological_order,
    weakly_connected_components,
)
from .csr import CSRGraph
from .dot import to_dot, write_dot
from .generators import (
    binary_in_tree,
    chain,
    fork_join,
    grid_graph,
    independent_chains,
    random_layered,
    stencil_2d,
)
from .tdg import TaskGraph

__all__ = [
    "CSRGraph",
    "GraphSummary",
    "TaskGraph",
    "binary_in_tree",
    "chain",
    "critical_path",
    "critical_path_weight",
    "fork_join",
    "grid_graph",
    "independent_chains",
    "is_acyclic",
    "level_widths",
    "levels",
    "random_layered",
    "stencil_2d",
    "summarize",
    "to_dot",
    "topological_order",
    "weakly_connected_components",
    "write_dot",
]
