"""Graphviz DOT export of task dependency graphs.

For inspecting what the runtime derived and what the partitioner decided:
``to_dot(tdg, parts=...)`` colours nodes by socket, scales edge pen width
by dependence bytes, and labels nodes with the task names.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .tdg import TaskGraph

#: Colour wheel for up to 16 sockets (Graphviz X11 names).
_COLORS = (
    "lightblue", "lightcoral", "palegreen", "khaki",
    "plum", "lightsalmon", "paleturquoise", "lightpink",
    "wheat", "lightgray", "aquamarine", "thistle",
    "peachpuff", "powderblue", "mistyrose", "honeydew",
)


def to_dot(
    tdg: TaskGraph,
    parts: np.ndarray | None = None,
    max_nodes: int = 2000,
    name: str = "tdg",
) -> str:
    """Render the TDG as a DOT digraph string.

    ``parts`` (socket per node) colours the nodes; graphs larger than
    ``max_nodes`` are truncated (DOT rendering degrades far earlier).
    """
    n = min(tdg.n_nodes, max_nodes)
    max_w = max((w for _, _, w in tdg.edges()), default=1.0) or 1.0
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             '  node [style=filled, shape=box, fontsize=10];']
    if tdg.n_nodes > max_nodes:
        lines.append(f'  // truncated to first {max_nodes} of {tdg.n_nodes} nodes')
    for v in range(n):
        label = tdg.label(v) or f"t{v}"
        color = "white"
        if parts is not None and v < len(parts):
            color = _COLORS[int(parts[v]) % len(_COLORS)]
        lines.append(f'  n{v} [label="{label}", fillcolor="{color}"];')
    for src, dst, w in tdg.edges():
        if src >= n or dst >= n:
            continue
        pen = 0.5 + 3.0 * (w / max_w)
        lines.append(f"  n{src} -> n{dst} [penwidth={pen:.2f}];")
    lines.append("}")
    return "\n".join(lines)


def write_dot(
    tdg: TaskGraph,
    path: str | Path,
    parts: np.ndarray | None = None,
    max_nodes: int = 2000,
) -> None:
    """Write :func:`to_dot` output to ``path``."""
    Path(path).write_text(to_dot(tdg, parts=parts, max_nodes=max_nodes))
