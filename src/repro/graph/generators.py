"""Synthetic DAG generators.

Used by partitioner tests (graphs with known good cuts), by property-based
tests (random DAGs), and by the synthetic-workload example.  All generators
are deterministic given their arguments (plus ``seed`` where applicable).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .tdg import TaskGraph


def chain(length: int, node_weight: float = 1.0, edge_bytes: float = 1.0) -> TaskGraph:
    """A single dependence chain of ``length`` tasks."""
    if length < 0:
        raise GraphError("length must be >= 0")
    g = TaskGraph()
    prev = None
    for _ in range(length):
        v = g.add_node(node_weight)
        if prev is not None:
            g.add_edge(prev, v, edge_bytes)
        prev = v
    return g


def independent_chains(
    n_chains: int, length: int, node_weight: float = 1.0, edge_bytes: float = 1.0
) -> TaskGraph:
    """``n_chains`` disjoint chains — the NStream-like extreme.

    The optimal k-way partition assigns whole chains to parts; any cut edge
    is pure loss, which makes this the canonical partitioner sanity check.
    """
    g = TaskGraph()
    for _ in range(n_chains):
        prev = None
        for _ in range(length):
            v = g.add_node(node_weight)
            if prev is not None:
                g.add_edge(prev, v, edge_bytes)
            prev = v
    return g


def fork_join(
    width: int, n_phases: int, node_weight: float = 1.0, edge_bytes: float = 1.0
) -> TaskGraph:
    """Repeated fork-join: source -> ``width`` parallel tasks -> sink -> ...

    Models barrier-style OpenMP programs.
    """
    g = TaskGraph()
    source = g.add_node(node_weight, "source")
    for _ in range(n_phases):
        mids = []
        for _ in range(width):
            v = g.add_node(node_weight)
            g.add_edge(source, v, edge_bytes)
            mids.append(v)
        sink = g.add_node(node_weight, "join")
        for v in mids:
            g.add_edge(v, sink, edge_bytes)
        source = sink
    return g


def stencil_2d(
    nx: int,
    ny: int,
    n_sweeps: int,
    node_weight: float = 1.0,
    edge_bytes: float = 1.0,
) -> TaskGraph:
    """Jacobi-style 2-D stencil DAG: each sweep's (i, j) block depends on the
    previous sweep's (i, j) and its 4 neighbours."""
    if nx < 1 or ny < 1 or n_sweeps < 1:
        raise GraphError("stencil dimensions must be positive")
    g = TaskGraph()
    prev: list[list[int]] = []
    for s in range(n_sweeps):
        cur: list[list[int]] = []
        for i in range(nx):
            row = []
            for j in range(ny):
                v = g.add_node(node_weight, f"s{s}_{i}_{j}")
                row.append(v)
                if s > 0:
                    g.add_edge(prev[i][j], v, edge_bytes)
                    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                        ni, nj = i + di, j + dj
                        if 0 <= ni < nx and 0 <= nj < ny:
                            g.add_edge(prev[ni][nj], v, edge_bytes / 4.0)
            cur.append(row)
        prev = cur
    return g


def binary_in_tree(depth: int, node_weight: float = 1.0, edge_bytes: float = 1.0) -> TaskGraph:
    """Reduction tree: 2^depth leaves combined pairwise down to one root."""
    if depth < 0:
        raise GraphError("depth must be >= 0")
    g = TaskGraph()
    frontier = [g.add_node(node_weight, "leaf") for _ in range(2**depth)]
    while len(frontier) > 1:
        nxt = []
        for a, b in zip(frontier[0::2], frontier[1::2]):
            v = g.add_node(node_weight, "combine")
            g.add_edge(a, v, edge_bytes)
            g.add_edge(b, v, edge_bytes)
            nxt.append(v)
        frontier = nxt
    return g


def random_layered(
    n_layers: int,
    width: int,
    edge_prob: float = 0.3,
    seed: int = 0,
    max_weight: float = 4.0,
) -> TaskGraph:
    """Random layered DAG: edges only go layer ``l`` -> ``l+1``.

    Node and edge weights are drawn uniformly; with ``edge_prob`` each
    (u, v) cross-layer pair is connected.  Isolated non-first-layer nodes
    get one incoming edge so every node past layer 0 has a parent.
    """
    if not 0.0 <= edge_prob <= 1.0:
        raise GraphError("edge_prob must be in [0, 1]")
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    layers: list[list[int]] = []
    for _ in range(n_layers):
        layers.append(
            [g.add_node(float(rng.uniform(1.0, max_weight))) for _ in range(width)]
        )
    for prev_layer, cur_layer in zip(layers, layers[1:]):
        for v in cur_layer:
            parents = [u for u in prev_layer if rng.random() < edge_prob]
            if not parents:
                parents = [prev_layer[int(rng.integers(len(prev_layer)))]]
            for u in parents:
                g.add_edge(u, v, float(rng.uniform(1.0, max_weight)))
    return g


def grid_graph(nx: int, ny: int, edge_bytes: float = 1.0) -> TaskGraph:
    """A 2-D grid with right/down edges — a planar graph whose balanced cuts
    are well understood (cut of a k-strip partition ~ ny * (k-1))."""
    if nx < 1 or ny < 1:
        raise GraphError("grid dimensions must be positive")
    g = TaskGraph()
    ids = [[g.add_node(1.0) for _ in range(ny)] for _ in range(nx)]
    for i in range(nx):
        for j in range(ny):
            if i + 1 < nx:
                g.add_edge(ids[i][j], ids[i + 1][j], edge_bytes)
            if j + 1 < ny:
                g.add_edge(ids[i][j], ids[i][j + 1], edge_bytes)
    return g
