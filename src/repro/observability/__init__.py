"""Observability: structured events, a metrics registry and trace export.

The instrumentation layer the rest of the system reports into (DESIGN.md
§8).  One :class:`Instrumentation` object bundles an event sink with a
metrics registry and rides through a run::

    from repro.observability import Instrumentation, write_chrome_trace

    obs = Instrumentation()
    result = simulate(program, topo, make_scheduler("rgp+las"),
                      instrument=obs)
    write_chrome_trace(result, "trace.json")   # open in ui.perfetto.dev

The zero-overhead contract: with ``instrument=None`` (the default) no
emit site executes at all, and with the :class:`NullSink` every emit is a
state-free no-op — either way results are byte-identical to an
uninstrumented run (tested in ``tests/test_observability_overhead.py``).
"""

from __future__ import annotations

from .events import (
    NULL_SINK,
    TAXONOMY,
    Event,
    EventSink,
    NullSink,
    RingBufferSink,
    validate_events,
)
from .export import (
    chrome_trace,
    metrics_document,
    paraver_timeline,
    render_prometheus,
    write_chrome_trace,
    write_metrics_json,
    write_paraver,
)
from .metrics import (
    DEFAULT_DURATION_BOUNDS,
    FRACTION_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_matrix,
)


class Instrumentation:
    """One run's event sink plus metrics registry.

    ``sink=None`` builds a :class:`RingBufferSink` with ``capacity``
    events; pass :data:`NULL_SINK` to keep metrics collection while
    discarding the event stream.
    """

    def __init__(
        self,
        sink: EventSink | None = None,
        registry: MetricsRegistry | None = None,
        *,
        capacity: int | None = 1 << 16,
    ) -> None:
        self.sink = RingBufferSink(capacity) if sink is None else sink
        self.registry = MetricsRegistry() if registry is None else registry

    @property
    def events_enabled(self) -> bool:
        """Whether emitting events does anything (sites may skip building
        expensive payloads when this is False)."""
        return self.sink.enabled

    def emit(self, ts: float, kind: str, **args) -> None:
        """Emit one event at simulated time ``ts`` (no-op on a null sink)."""
        if self.sink.enabled:
            self.sink.emit(Event(ts=ts, kind=kind, args=args))

    @property
    def events(self) -> list[Event]:
        """Retained events, oldest first (empty for non-buffering sinks)."""
        return getattr(self.sink, "events", [])


__all__ = [
    "DEFAULT_DURATION_BOUNDS",
    "FRACTION_BOUNDS",
    "Counter",
    "Event",
    "EventSink",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_SINK",
    "NullSink",
    "RingBufferSink",
    "TAXONOMY",
    "chrome_trace",
    "metrics_document",
    "paraver_timeline",
    "render_matrix",
    "render_prometheus",
    "validate_events",
    "write_chrome_trace",
    "write_metrics_json",
    "write_paraver",
]
