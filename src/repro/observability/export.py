"""Timeline and metrics exporters: Chrome trace JSON, Paraver text, flat JSON.

Three views of one instrumented run:

* :func:`chrome_trace` — the Trace Event Format understood by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``: one process per
  socket, one track per core carrying complete ("X") slices for task
  attempts, a synthetic *metrics* process carrying counter ("C") tracks
  built from registry gauges, and instant ("i") markers for scheduler /
  partition / fault events;
* :func:`paraver_timeline` — a Paraver-flavoured text timeline (the trace
  format of the paper's OmpSs/Extrae stack): ``1:`` state records for
  running intervals and ``2:`` punctual event records;
* :func:`write_metrics_json` — the flat registry snapshot plus run
  aggregates, for offline plotting.

Simulated time is exported in microseconds (``ts = t * 1e6``) so one
simulated time unit reads as one millisecond-scale slice in Perfetto.
All exporters are pure functions of the result: exporting never mutates
anything and can be repeated.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..runtime.result import SimulationResult
from .events import Event

#: Simulated time unit -> trace microseconds.
TIME_SCALE = 1e6

#: Paraver punctual event types (documented in the .prv header comments).
PRV_TASK_ID = 60000001       # value = tid + 1 at task start, 0 at end
PRV_EVENT_FAMILY = 60000100  # value = index into the emitted kind table


def _us(t: float) -> float:
    return t * TIME_SCALE


def _task_slices(result: SimulationResult) -> list[dict]:
    """Complete-event slices for every attempt (completed and crashed)."""
    slices = []
    for rec in result.records:
        slices.append(
            {
                "name": rec.name,
                "cat": "task",
                "ph": "X",
                "ts": _us(rec.start),
                "dur": _us(rec.finish - rec.start),
                "pid": rec.socket,
                "tid": rec.core,
                "args": {
                    "tid": rec.tid,
                    "local_bytes": rec.local_bytes,
                    "remote_bytes": rec.remote_bytes,
                    "attempt": rec.attempt,
                },
            }
        )
    for rec in result.crashed_records:
        slices.append(
            {
                "name": f"{rec.name} [crashed]",
                "cat": "crash",
                "ph": "X",
                "ts": _us(rec.start),
                "dur": _us(rec.finish - rec.start),
                "pid": rec.socket,
                "tid": rec.core,
                "args": {
                    "tid": rec.tid,
                    "outcome": rec.outcome,
                    "attempt": rec.attempt,
                },
            }
        )
    return slices


def _flow_events(result: SimulationResult, tdg) -> list[dict]:
    """Perfetto flow arrows for dependence edges between task slices.

    One flow per TDG edge whose endpoints both completed: a start step
    ("s") anchored at the producer's finishing slice and a finish step
    ("f", ``bp="e"`` = bind to enclosing slice) at the consumer's start.
    Steps pair up by ``id``; crashed attempts never anchor a flow.
    """
    rec_by_tid = {r.tid: r for r in result.records}
    flows: list[dict] = []
    for src, dst, weight in tdg.edges():
        prod, cons = rec_by_tid.get(src), rec_by_tid.get(dst)
        if prod is None or cons is None:
            continue
        flow_id = src * tdg.n_nodes + dst
        common = {
            "name": "dep",
            "cat": "dep",
            "id": flow_id,
            "args": {"src": src, "dst": dst, "bytes": weight},
        }
        flows.append({
            **common, "ph": "s",
            "ts": _us(prod.finish), "pid": prod.socket, "tid": prod.core,
        })
        flows.append({
            **common, "ph": "f", "bp": "e",
            "ts": _us(cons.start), "pid": cons.socket, "tid": cons.core,
        })
    return flows


#: Perfetto reserved colour names for critical-path segment kinds.
_PATH_COLORS = {
    "exec": "thread_state_running",
    "queue_wait": "thread_state_runnable",
    "stall": "thread_state_iowait",
    "dep_wait": "grey",
    "waste": "terrible",
}


def _critical_path_track(critical_path, pid: int) -> list[dict]:
    """One highlighted track tiling [0, makespan] with path segments."""
    slices: list[dict] = []
    for seg in critical_path.segments:
        name = seg.name if seg.kind == "exec" else f"[{seg.kind}] {seg.name}"
        slices.append({
            "name": name,
            "cat": "critical_path",
            "ph": "X",
            "ts": _us(seg.t0),
            "dur": _us(seg.t1 - seg.t0),
            "pid": pid,
            "tid": 0,
            "cname": _PATH_COLORS.get(seg.kind, "grey"),
            "args": {
                "tid": seg.tid,
                "kind": seg.kind,
                "socket": seg.socket,
                "core": seg.core,
                **{k: round(v, 9) for k, v in seg.parts.items()},
            },
        })
    return slices


def chrome_trace(
    result: SimulationResult,
    *,
    events: list[Event] | None = None,
    metrics: dict | None = None,
    tdg=None,
    critical_path=None,
) -> dict:
    """Build a Trace Event Format document from an instrumented result.

    ``events`` / ``metrics`` default to what the simulator attached to the
    result (``result.events`` / ``result.metrics``); pass them explicitly
    to export an external sink or registry snapshot.  Passing the
    program's ``tdg`` adds flow arrows (producer slice -> consumer slice)
    for every satisfied dependence edge; passing a
    :class:`~repro.profiling.ProfileReport` as ``critical_path`` adds a
    dedicated highlighted track tiling ``[0, makespan]`` with the path's
    exec/wait segments.
    """
    events = result.events if events is None else events
    metrics = result.metrics if metrics is None else metrics
    sockets = sorted(
        {r.socket for r in result.records}
        | {r.socket for r in result.crashed_records}
    )
    cores = sorted(
        {(r.socket, r.core) for r in result.records}
        | {(r.socket, r.core) for r in result.crashed_records}
    )
    metrics_pid = (max(sockets) if sockets else 0) + 1

    meta: list[dict] = []
    for s in sockets:
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": s,
                "args": {"name": f"socket {s}"},
            }
        )
        meta.append(
            {"name": "process_sort_index", "ph": "M", "pid": s,
             "args": {"sort_index": s}}
        )
    for s, c in cores:
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": s,
                "tid": c,
                "args": {"name": f"core {c}"},
            }
        )
    meta.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": metrics_pid,
            "args": {"name": "metrics"},
        }
    )

    body = _task_slices(result)

    if tdg is not None:
        body.extend(_flow_events(result, tdg))
    if critical_path is not None:
        path_pid = metrics_pid + 1
        meta.append(
            {"name": "process_name", "ph": "M", "pid": path_pid,
             "args": {"name": "critical path"}}
        )
        meta.append(
            {"name": "process_sort_index", "ph": "M", "pid": path_pid,
             "args": {"sort_index": -1}}  # pin the path above the sockets
        )
        meta.append(
            {"name": "thread_name", "ph": "M", "pid": path_pid, "tid": 0,
             "args": {"name": "makespan decomposition"}}
        )
        body.extend(_critical_path_track(critical_path, path_pid))

    # Counter tracks from gauge sample series (cumulative byte split,
    # queue depths, busy cores, partition quality ...).
    gauges = (metrics or {}).get("gauges", {})
    for name, payload in sorted(gauges.items()):
        for ts, value in payload.get("samples", []):
            body.append(
                {
                    "name": name,
                    "cat": "metrics",
                    "ph": "C",
                    "ts": _us(ts),
                    "pid": metrics_pid,
                    "args": {"value": value},
                }
            )

    # Instant markers for everything that is not already a slice.
    for ev in events or []:
        if ev.kind in ("task.start", "task.finish"):
            continue  # already visible as X slices
        pid = ev.args.get("socket", metrics_pid)
        marker = {
            "name": ev.kind,
            "cat": ev.kind.split(".", 1)[0],
            "ph": "i",
            "s": "g",
            "ts": _us(ev.ts),
            "pid": pid,
            "args": dict(ev.args),
        }
        if "core" in ev.args:
            marker["tid"] = ev.args["core"]
        body.append(marker)

    body.sort(key=lambda e: (e["ts"], e["pid"], e.get("tid", -1)))
    return {
        "traceEvents": meta + body,
        "displayTimeUnit": "ms",
        "otherData": {
            "program": result.program_name,
            "scheduler": result.scheduler_name,
            "machine": result.machine_name,
            "makespan": result.makespan,
            "seed": result.seed,
            "time_scale": TIME_SCALE,
        },
    }


def write_chrome_trace(
    result: SimulationResult,
    path: str | Path,
    *,
    events: list[Event] | None = None,
    metrics: dict | None = None,
    tdg=None,
    critical_path=None,
) -> None:
    """Write :func:`chrome_trace` output; open the file in Perfetto."""
    doc = chrome_trace(
        result, events=events, metrics=metrics, tdg=tdg,
        critical_path=critical_path,
    )
    Path(path).write_text(json.dumps(doc, indent=1))


# ----------------------------------------------------------------------
# Paraver-flavoured timeline
# ----------------------------------------------------------------------
def paraver_timeline(
    result: SimulationResult, *, events: list[Event] | None = None
) -> str:
    """Paraver-flavoured text timeline of one run.

    Record formats (times are integer microseconds of simulated time):

    * state:  ``1:cpu:appl:task:thread:begin:end:state`` with state 1 =
      running (the only state a fluid simulation distinguishes);
    * event:  ``2:cpu:appl:task:thread:time:type:value`` with type
      ``60000001`` carrying ``tid + 1`` at each task start and ``0`` at
      the finish, and ``60000100`` carrying an index into the kind table
      printed in the header for bus events.

    The header date is fixed (no wall-clock reads anywhere in the
    subsystem) so identical runs produce identical traces.
    """
    events = result.events if events is None else events
    all_recs = list(result.records) + list(result.crashed_records)
    n_cpus = (max((r.core for r in all_recs), default=0)) + 1
    ftime = int(round(_us(result.makespan)))
    kinds = sorted({ev.kind for ev in events or []})
    kind_index = {k: i + 1 for i, k in enumerate(kinds)}

    lines = [
        f"#Paraver (01/01/2018 at 00:00):{ftime}_ns:1({n_cpus}):1:1({n_cpus}:1)",
        f"# program={result.program_name} scheduler={result.scheduler_name}"
        f" machine={result.machine_name} seed={result.seed}",
        "# state 1 = task running",
        f"# event type {PRV_TASK_ID} = task id + 1 (0 at finish)",
    ]
    if kinds:
        lines.append(
            f"# event type {PRV_EVENT_FAMILY} values: "
            + ", ".join(f"{kind_index[k]}={k}" for k in kinds)
        )

    records: list[tuple[float, str]] = []
    for rec in sorted(all_recs, key=lambda r: (r.start, r.tid, r.attempt)):
        cpu = rec.core + 1
        begin, end = int(round(_us(rec.start))), int(round(_us(rec.finish)))
        records.append(
            (rec.start, f"1:{cpu}:1:1:{cpu}:{begin}:{end}:1")
        )
        records.append(
            (rec.start, f"2:{cpu}:1:1:{cpu}:{begin}:{PRV_TASK_ID}:{rec.tid + 1}")
        )
        records.append(
            (rec.finish, f"2:{cpu}:1:1:{cpu}:{end}:{PRV_TASK_ID}:0")
        )
    for ev in events or []:
        cpu = int(ev.args.get("core", 0)) + 1
        ts = int(round(_us(ev.ts)))
        records.append(
            (ev.ts,
             f"2:{cpu}:1:1:{cpu}:{ts}:{PRV_EVENT_FAMILY}:{kind_index[ev.kind]}")
        )
    records.sort(key=lambda r: r[0])
    lines.extend(text for _, text in records)
    return "\n".join(lines) + "\n"


def write_paraver(
    result: SimulationResult,
    path: str | Path,
    *,
    events: list[Event] | None = None,
) -> None:
    Path(path).write_text(paraver_timeline(result, events=events))


# ----------------------------------------------------------------------
# Flat metrics JSON
# ----------------------------------------------------------------------
def metrics_document(
    result: SimulationResult, *, metrics: dict | None = None
) -> dict:
    """Registry snapshot plus run aggregates as one flat JSON document."""
    metrics = result.metrics if metrics is None else metrics
    return {
        "program": result.program_name,
        "scheduler": result.scheduler_name,
        "machine": result.machine_name,
        "seed": result.seed,
        "makespan": result.makespan,
        "remote_fraction": result.remote_fraction,
        "local_bytes": result.local_bytes,
        "remote_bytes": result.remote_bytes,
        "steals": result.steals,
        "busy_time_per_socket": result.busy_time_per_socket.tolist(),
        "registry": metrics or {},
    }


def write_metrics_json(
    result: SimulationResult,
    path: str | Path,
    *,
    metrics: dict | None = None,
) -> None:
    Path(path).write_text(
        json.dumps(metrics_document(result, metrics=metrics), indent=1)
    )


# ----------------------------------------------------------------------
def render_prometheus(registry) -> str:
    """Prometheus text exposition of a :class:`MetricsRegistry`.

    Serves the job service's ``GET /metrics?format=prometheus``
    (DESIGN.md §12) so standard scrapers can watch queue depth, cache
    hits, retries and sheds.  Metric names are sanitised to the
    ``[a-zA-Z0-9_]`` charset (dots and dashes become underscores);
    counters export their total, gauges their last sample, histograms a
    cumulative ``_bucket`` series plus ``_sum``/``_count`` and a
    ``_summary`` quantile series (p50/p90/p99 estimated from the bucket
    upper bounds, ``+Inf`` when the quantile falls in the overflow
    bucket).
    """

    def mangle(name: str) -> str:
        return "".join(
            ch if (ch.isalnum() or ch == "_") else "_" for ch in name
        )

    def number(value: float) -> str:
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return f"{value:.10g}"

    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        metric = mangle(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counter.value:.10g}")
    for name, gauge in sorted(registry.gauges.items()):
        metric = mangle(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauge.value:.10g}")
    for name, hist in sorted(registry.histograms.items()):
        metric = mangle(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += int(count)
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {hist.sum:.10g}")
        lines.append(f"{metric}_count {hist.count}")
        lines.append(f"# TYPE {metric}_summary summary")
        for q in (0.5, 0.9, 0.99):
            lines.append(
                f'{metric}_summary{{quantile="{q:g}"}} '
                f"{number(hist.quantile(q))}"
            )
        lines.append(f"{metric}_summary_sum {hist.sum:.10g}")
        lines.append(f"{metric}_summary_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")
