"""Structured event bus: what happened, when (in simulated time), and why.

Every interesting transition in the runtime — a task starting, a scheduler
picking a socket, the RGP window partition finishing, a fault firing — is
emitted as one immutable :class:`Event` to an :class:`EventSink`.  The
design constraints mirror real tracing runtimes (Nanos++/Extrae producing
Paraver traces, TaskTorrent's built-in tracer):

* **zero overhead when off** — the simulator holds no sink at all unless
  instrumentation was requested, and every emit site is guarded by a
  single ``is not None`` check; with the :class:`NullSink` the emit is a
  no-op that touches no simulator state, so results stay byte-identical;
* **observation never perturbs** — sinks only *read* the payload; no
  emit path draws from an RNG or mutates scheduler/simulator state;
* **bounded memory** — the default :class:`RingBufferSink` keeps the most
  recent ``capacity`` events and counts what it dropped, so tracing a
  million-task run cannot exhaust memory silently.

Timestamps are *simulated* time throughout (the machine under study), not
wall clock.  The only wall-clock quantity in the subsystem is the optional
``host_us`` payload on partitioner phase events, which measures the real
cost of the partitioning computation itself.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

#: Event taxonomy: kind -> one-line meaning (DESIGN.md §8 renders this).
#: Kinds are dotted ``family.detail`` slugs; families group related kinds.
TAXONOMY: dict[str, str] = {
    # -- task lifecycle ------------------------------------------------
    "task.start": "an attempt began on a core (args: tid, name, core, "
                  "socket, local_bytes, remote_bytes, attempt)",
    "task.finish": "the completing attempt ended (args: tid, name, core, "
                   "socket, duration)",
    "task.crash": "an attempt was killed by a fault (args: tid, name, "
                  "reason, attempt)",
    # -- scheduler decisions -------------------------------------------
    "sched.choice": "policy-level decision detail (args: tid, policy, "
                    "branch, socket/core, candidates/weights when known)",
    "sched.place": "runtime-level placement outcome after fault remapping "
                   "(args: tid, target=park|core|socket, core/socket)",
    "sched.steal": "an idle socket stole queued work (args: tid, thief, "
                   "victim, distance)",
    "sched.reoffer": "parked tasks were re-offered (args: n)",
    "epoch.advance": "a barrier epoch completed (args: epoch)",
    # -- RGP window / partitioning -------------------------------------
    "rgp.window": "the initial window closed (args: cutoff, window_size)",
    "rgp.partition.begin": "a window partition started (args: window, "
                           "n_tasks)",
    "rgp.partition.end": "a window partition result became available "
                         "(args: window, n_tasks, edge_cut, delay, "
                         "host_us)",
    "rgp.partition.launch": "a later window's partition was launched as "
                            "a sim-time activity (args: window, n_tasks, "
                            "trigger = prefetch | demand)",
    "rgp.partition.timeout": "the partition result was declared lost "
                             "(args: deadline, delay; window for "
                             "pipelined later windows)",
    "rgp.window.resize": "the adaptive controller resized future windows "
                         "(args: window, old, new, throughput)",
    "partition.coarsen": "multilevel coarsening finished (args: levels, "
                         "n_fine, n_coarse, host_us)",
    "partition.initial": "initial bisection of the coarsest graph "
                         "(args: n_vertices, cut)",
    "partition.refine": "one uncoarsening refinement pass (args: level, "
                        "n_vertices, cut)",
    # -- cluster network (DESIGN.md §15) -------------------------------
    "msg.send": "an inter-box transfer started contending on the source "
                "box's NIC (args: tid, src_box, dst_box, nbytes)",
    "msg.recv": "an inter-box transfer fully drained at the reader "
                "(args: tid, src_box, dst_box, nbytes, duration)",
    # -- faults --------------------------------------------------------
    "fault.inject": "a planned fault fired (args: family, plus the "
                    "family's parameters)",
    "fault.core_failed": "a core was quarantined (args: core, socket, "
                         "transient)",
    "fault.core_restored": "a transiently failed core returned "
                           "(args: core, socket)",
}


@dataclass(frozen=True)
class Event:
    """One structured trace event.

    ``ts`` is simulated time; ``kind`` is a :data:`TAXONOMY` slug; ``args``
    holds JSON-safe scalars only (ints, floats, strs, bools, small lists),
    so every sink's contents can be exported losslessly.
    """

    ts: float
    kind: str
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"ts": self.ts, "kind": self.kind, **self.args}


class EventSink:
    """Receiver protocol: ``emit(event)`` plus an ``enabled`` flag.

    ``enabled`` lets emit sites skip building expensive payloads (weight
    vectors, candidate lists) when nobody is listening.
    """

    enabled: bool = True

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullSink(EventSink):
    """Discards everything; the no-op sink of the zero-overhead guarantee."""

    enabled = False

    def emit(self, event: Event) -> None:
        pass


#: Shared no-op sink (stateless, safe to reuse across simulators).
NULL_SINK = NullSink()


class RingBufferSink(EventSink):
    """Keeps the most recent ``capacity`` events; counts what it dropped.

    ``capacity=None`` means unbounded (use for short runs and tests).
    """

    def __init__(self, capacity: int | None = 1 << 16) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._buf: deque[Event] = deque(maxlen=capacity)
        self.capacity = capacity
        #: Total events ever emitted (including dropped ones).
        self.total = 0

    @property
    def dropped(self) -> int:
        return self.total - len(self._buf)

    def emit(self, event: Event) -> None:
        self.total += 1
        self._buf.append(event)

    @property
    def events(self) -> list[Event]:
        """Snapshot of the retained events, oldest first."""
        return list(self._buf)

    def by_kind(self, kind: str) -> list[Event]:
        return [e for e in self._buf if e.kind == kind]

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self):
        return iter(self._buf)


def validate_events(events: Iterable[Event]) -> list[str]:
    """Check every event uses a taxonomy kind and non-decreasing time.

    Test helper: returns a list of problem descriptions (empty = clean),
    catching typo'd kinds and causality violations early.
    """
    problems: list[str] = []
    last = float("-inf")
    for ev in events:
        if ev.kind not in TAXONOMY:
            problems.append(f"unknown event kind {ev.kind!r}")
        if ev.ts < last - 1e-9:
            problems.append(
                f"event {ev.kind!r} at ts={ev.ts} emitted after ts={last}"
            )
        last = max(last, ev.ts)
    return problems
