"""Metrics registry: counters, gauges, histograms and traffic matrices.

The quantitative companion of the event bus (:mod:`repro.observability.events`):
where events answer *what happened*, the registry answers *how much*.
Everything is driven by **simulated time** — no instrument in this module
ever reads a wall clock, so two runs with the same seed produce identical
registries (the property the zero-overhead and golden-trace tests rely on).

Instruments
-----------
* :class:`Counter` — monotonically increasing total (steals, bytes, ...);
* :class:`Gauge` — last-value-wins sample series ``(ts, value)``; the
  series is what Chrome counter tracks are built from;
* :class:`Histogram` — fixed explicit bucket boundaries chosen at
  creation; observation is O(#buckets) with no allocation.

The registry also holds named numpy **matrices** for the NUMA
socket-by-node traffic matrix (``bytes_by_pair``-shaped) that the paper's
locality argument is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Default histogram boundaries for task durations (simulated time units).
#: Roughly logarithmic; the last bucket is open-ended.
DEFAULT_DURATION_BOUNDS = (
    0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)

#: Default boundaries for fractions in [0, 1] (e.g. remote-byte ratios).
FRACTION_BOUNDS = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass
class Counter:
    """Monotonic total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """Sampled value over simulated time; keeps the full series."""

    name: str
    samples: list[tuple[float, float]] = field(default_factory=list)

    @property
    def value(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    def set(self, ts: float, value: float) -> None:
        # Collapse repeated samples at one instant: last write wins, which
        # keeps Chrome counter tracks strictly monotonic in ts.
        if self.samples and self.samples[-1][0] == ts:
            self.samples[-1] = (ts, float(value))
        else:
            self.samples.append((float(ts), float(value)))

    def add(self, ts: float, delta: float) -> None:
        self.set(ts, self.value + delta)


class Histogram:
    """Fixed-boundary histogram: ``len(bounds) + 1`` buckets.

    Bucket ``i`` counts observations ``<= bounds[i]``; the final bucket is
    the open overflow bucket.  Boundaries are frozen at creation so merged
    or exported histograms always line up.
    """

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = np.zeros(len(self.bounds) + 1, dtype=np.int64)
        self.sum = 0.0

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    @property
    def mean(self) -> float:
        n = self.count
        return self.sum / n if n else 0.0

    def observe(self, value: float) -> None:
        idx = int(np.searchsorted(self.bounds, value, side="left"))
        self.counts[idx] += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        n = self.count
        if n == 0:
            return 0.0
        rank = q * n
        seen = 0
        for i, c in enumerate(self.counts):
            seen += int(c)
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")  # pragma: no cover - defensive


class MetricsRegistry:
    """Named instruments, created lazily, exported as one flat snapshot."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.matrices: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_DURATION_BOUNDS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        elif h.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already exists with different bounds"
            )
        return h

    def matrix(self, name: str, shape: tuple[int, int]) -> np.ndarray:
        m = self.matrices.get(name)
        if m is None:
            m = self.matrices[name] = np.zeros(shape, dtype=np.float64)
        elif m.shape != shape:
            raise ValueError(f"matrix {name!r} already exists with shape {m.shape}")
        return m

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument (the flat metrics export)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "samples": [list(s) for s in g.samples]}
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": h.counts.tolist(),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in sorted(self.histograms.items())
            },
            "matrices": {
                n: m.tolist() for n, m in sorted(self.matrices.items())
            },
        }

    def render(self) -> str:
        """Human-readable one-screen summary (the ``repro stats`` body)."""
        lines: list[str] = []
        if self.counters:
            lines.append("counters:")
            for name, c in sorted(self.counters.items()):
                lines.append(f"  {name:<28s} {c.value:.6g}")
        if self.gauges:
            lines.append("gauges (final value, #samples):")
            for name, g in sorted(self.gauges.items()):
                lines.append(
                    f"  {name:<28s} {g.value:.6g}  ({len(g.samples)} samples)"
                )
        if self.histograms:
            lines.append("histograms:")
            for name, h in sorted(self.histograms.items()):
                lines.append(
                    f"  {name:<28s} n={h.count} mean={h.mean:.4g} "
                    f"p50<={h.quantile(0.5):.4g} p95<={h.quantile(0.95):.4g}"
                )
        for name, m in sorted(self.matrices.items()):
            lines.append(f"{name} ({m.shape[0]}x{m.shape[1]}):")
            lines.extend(render_matrix(m, indent="  ").splitlines())
        return "\n".join(lines) if lines else "(empty registry)"


def render_matrix(matrix: np.ndarray, indent: str = "") -> str:
    """Fixed-width text rendering of a traffic matrix with row/col sums."""
    m = np.asarray(matrix, dtype=np.float64)
    header = indent + "        " + " ".join(
        f"{f'n{j}':>10s}" for j in range(m.shape[1])
    ) + f" {'row sum':>10s}"
    lines = [header]
    for i in range(m.shape[0]):
        cells = " ".join(f"{v:10.4g}" for v in m[i])
        lines.append(indent + f"{f's{i}':>7s} " + cells + f" {m[i].sum():10.4g}")
    col = " ".join(f"{v:10.4g}" for v in m.sum(axis=0))
    lines.append(indent + f"{'sum':>7s} " + col + f" {m.sum():10.4g}")
    return "\n".join(lines)
