"""NUMA time-attribution model: split an execution interval into
compute, local-memory and remote-memory time.

The simulator's fluid model overlaps compute with memory streams and
applies contention, so a task record only tells us *when* it ran, not
*why it took that long*.  This module reconstructs the why from first
principles: the nominal (uncontended, single-stream) serial times of the
three demands a task places on the machine,

* ``t_c``  — compute: ``task.work`` at rate 1;
* ``t_l``  — local traffic at the local service rate ``B_s``;
* ``t_r``  — remote traffic at the remote service rate
  ``min(eff(s,n) * B_n, link_fraction * B_s, link_fraction * B_n)``,
  traffic-weighted over the remote nodes the socket actually touched
  (from ``result.bytes_by_pair``).

The interconnect's ``core_fraction`` cap is deliberately *excluded*: it
throttles local and remote streams of a task identically, so it cancels
out of the local-vs-remote ratio that attribution (and the remote-as
-local what-if) is built on — including it would make remote bytes look
no more expensive than local ones;

and then scales them proportionally so they *exactly* partition the
observed duration ``D``::

    compute = D * t_c / (t_c + t_l + t_r)
    mem_local = D * t_l / (t_c + t_l + t_r)
    mem_remote = D - compute - mem_local        # exact by construction

Proportional attribution deliberately charges contention and jitter to
all three components pro rata — the decomposition invariant (every
interval sums exactly to its duration, DESIGN.md §13) matters more than
second-order accuracy of the split.  The stored ``remote_as_local`` time
(``t_r`` rescaled to the local rate, same proportional scale) feeds the
what-if estimator: it is what the remote share *would have cost* had
every remote byte been local.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ProfilingError
from ..machine.interconnect import Interconnect


@dataclass(frozen=True)
class ExecSplit:
    """One execution interval's attributed components (sum == duration)."""

    compute: float
    mem_local: float
    mem_remote: float
    #: What ``mem_remote`` would have been at the local service rate.
    remote_as_local: float
    #: Cross-box (network) memory time; 0.0 on single-box machines.
    mem_network: float = 0.0

    @property
    def duration(self) -> float:
        return self.compute + self.mem_local + self.mem_remote + self.mem_network


class AttributionModel:
    """Per-socket nominal service rates derived from one interconnect.

    ``remote_rate(s)`` is traffic-weighted over the remote nodes socket
    ``s`` actually exchanged bytes with (``bytes_by_pair``), falling back
    to the unweighted mean over all remote nodes when the socket issued
    no remote traffic.
    """

    def __init__(
        self,
        interconnect: Interconnect,
        bytes_by_pair: np.ndarray | None = None,
    ) -> None:
        topo = interconnect.topology
        n = topo.n_sockets
        bw = np.asarray(topo.node_bandwidth, dtype=np.float64)
        link_frac = interconnect.link_fraction

        local = bw.copy()
        if np.any(local <= 0):
            raise ProfilingError("non-positive local service rate")
        self._local = local

        # Service rate of a socket->node remote transfer (no core cap —
        # see the module docstring: it cancels out of the ratio).
        pair = np.zeros((n, n), dtype=np.float64)
        for s in range(n):
            for node in range(n):
                if node == s:
                    continue
                rate = interconnect.efficiency(s, node) * bw[node]
                if link_frac is not None:
                    rate = min(rate, link_frac * bw[s], link_frac * bw[node])
                pair[s, node] = rate

        weights = None
        if bytes_by_pair is not None:
            weights = np.asarray(bytes_by_pair, dtype=np.float64)
            if weights.shape != (n, n):
                weights = None
        remote = np.zeros(n, dtype=np.float64)
        off_diag = ~np.eye(n, dtype=bool)
        for s in range(n):
            rates = pair[s][off_diag[s]]
            if len(rates) == 0:  # single-socket machine: remote is moot
                remote[s] = local[s]
                continue
            w = weights[s][off_diag[s]] if weights is not None else None
            if w is not None and w.sum() > 0:
                remote[s] = float((rates * w).sum() / w.sum())
            else:
                remote[s] = float(rates.mean())
        if np.any(remote <= 0):
            raise ProfilingError("non-positive remote service rate")
        self._remote = remote

        # Network service rate: on a cluster, a socket's cross-box bytes
        # drain through its box's NIC; single-box machines never see
        # network bytes, so the rate is moot (kept at the local rate).
        network = local.copy()
        n_boxes = getattr(topo, "n_boxes", 1)
        if n_boxes > 1:
            for s in range(n):
                nic = topo.nic_of_box(topo.box_of_socket(s))
                network[s] = float(topo.resource_bandwidth[nic])
        if np.any(network <= 0):
            raise ProfilingError("non-positive network service rate")
        self._network = network

    def local_rate(self, socket: int) -> float:
        return float(self._local[socket])

    def remote_rate(self, socket: int) -> float:
        return float(self._remote[socket])

    def network_rate(self, socket: int) -> float:
        return float(self._network[socket])

    # ------------------------------------------------------------------
    def split(
        self,
        *,
        work: float,
        local_bytes: float,
        remote_bytes: float,
        socket: int,
        duration: float,
        net_bytes: float = 0.0,
    ) -> ExecSplit:
        """Partition ``duration`` into compute/local/remote/network parts."""
        if duration < 0:
            raise ProfilingError(f"negative execution duration {duration!r}")
        t_c = max(0.0, float(work))
        t_l = max(0.0, float(local_bytes)) / self._local[socket]
        t_r = max(0.0, float(remote_bytes)) / self._remote[socket]
        t_n = max(0.0, float(net_bytes)) / self._network[socket]
        nominal = t_c + t_l + t_r + t_n
        if nominal <= 0.0:
            return ExecSplit(float(duration), 0.0, 0.0, 0.0)
        compute = float(duration * (t_c / nominal))
        mem_local = float(duration * (t_l / nominal))
        # The heaviest component absorbs the closure so the partition is
        # exact; with no network bytes this reduces bit-for-bit to the
        # pre-cluster three-way split.
        if t_n > 0.0:
            mem_network = float(duration * (t_n / nominal))
        else:
            mem_network = 0.0
        mem_remote = float(duration - compute - mem_local - mem_network)
        ratio = float(self._remote[socket] / self._local[socket])
        return ExecSplit(
            compute, mem_local, mem_remote, mem_remote * ratio, mem_network
        )
