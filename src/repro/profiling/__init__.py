"""Profiling: turn traces into explanations (DESIGN.md §13).

The analysis layer on top of the observability stack (§8): critical-path
extraction with a seven-way makespan decomposition that provably sums to
the makespan, NUMA time-attribution of every execution interval, Coz
-style what-if estimation, and differential profiling between two runs::

    from repro.profiling import diff_profiles, profile_run

    report = profile_run(program, result, topology, interconnect=ic)
    print(report.render())                    # where did the makespan go?
    print(report.whatif_remote_local())       # paper thesis, quantified
    print(diff_profiles(report_ep, report_rgp).render())
"""

from .attribution import AttributionModel, ExecSplit
from .critical_path import (
    COMPONENTS,
    EXEC_COMPONENTS,
    PathSegment,
    ProfileReport,
    profile_run,
)
from .diff import ProfileDiff, diff_profiles

__all__ = [
    "AttributionModel",
    "COMPONENTS",
    "EXEC_COMPONENTS",
    "ExecSplit",
    "PathSegment",
    "ProfileDiff",
    "ProfileReport",
    "diff_profiles",
    "profile_run",
]
