"""Critical-path extraction and makespan decomposition (DESIGN.md §13).

Walks the *executed* schedule backwards from the last task to finish,
chaining through whatever blocked each critical task from starting
earlier — its latest-finishing predecessor, or the task that held the
barrier epoch open.  The walk yields a sequence of segments that tile
``[0, makespan]`` exactly; each segment is attributed to one of seven
components:

========== ==========================================================
component  meaning
========== ==========================================================
compute    critical task executing, compute share (attribution model)
mem_local  critical task executing, local-memory share
mem_remote critical task executing, remote-memory share
mem_network critical task executing, cross-box network share (clusters)
queue_wait critical task ready (deps + epoch done) but holding no core
stall      critical task parked by the scheduler (RGP window pending)
waste      a crashed attempt of the critical task was running
dep_wait   hole in the chain (no blocker covers the interval; zero on
           healthy runs — tasks here are offered the instant their
           last dependence retires, so dependence time is carried by
           the blocking predecessor's own execution segment)
========== ==========================================================

The decomposition invariant — ``sum(totals) == makespan`` up to float
telescoping noise — is enforced with a real raise (not ``assert``; the
library must fail under ``python -O`` too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ProfilingError
from ..machine.interconnect import Interconnect
from ..runtime.result import SimulationResult, TaskRecord
from .attribution import AttributionModel

#: Every component the decomposition can produce, display order.
COMPONENTS = (
    "compute", "mem_local", "mem_remote", "mem_network",
    "queue_wait", "dep_wait", "stall", "waste",
)

#: Components that are execution time (what-if scaling targets).
EXEC_COMPONENTS = ("compute", "mem_local", "mem_remote", "mem_network")


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path; ``parts`` sums to ``t1 - t0``."""

    t0: float
    t1: float
    kind: str               # "exec" or a wait component name
    tid: int
    name: str
    socket: int
    core: int
    parts: dict[str, float] = field(default_factory=dict)
    remote_as_local: float = 0.0

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


def _zero_components() -> dict[str, float]:
    return {c: 0.0 for c in COMPONENTS}


@dataclass
class ProfileReport:
    """The full decomposition of one run's makespan."""

    program_name: str
    scheduler_name: str
    machine_name: str
    seed: int
    makespan: float
    segments: list[PathSegment]
    totals: dict[str, float]
    per_task: dict[int, dict[str, float]]
    task_names: dict[int, str]
    per_socket: dict[int, dict[str, float]]
    #: All-records view (not just the path): per-socket busy time split
    #: into compute/mem_local/mem_remote plus crashed-attempt waste.
    machine_view: dict[int, dict[str, float]]
    remote_as_local: float
    residual: float

    # ------------------------------------------------------------------
    @property
    def n_path_tasks(self) -> int:
        return len({s.tid for s in self.segments if s.kind == "exec"})

    def component_sum(self) -> float:
        return sum(self.totals.values())

    # -- what-if estimators (Coz-style virtual speedup) ----------------
    def whatif(self, component: str, scale: float = 0.0) -> float:
        """Estimated makespan if ``component`` time on the critical path
        were multiplied by ``scale`` (0 = removed entirely).

        Optimistic bound: waits are held fixed and the path is assumed
        not to switch to a different chain (DESIGN.md §13).
        """
        if component not in COMPONENTS:
            raise ProfilingError(
                f"unknown component {component!r}; known: {COMPONENTS}"
            )
        if scale < 0:
            raise ProfilingError(f"scale must be >= 0, got {scale!r}")
        return self.makespan - self.totals[component] * (1.0 - scale)

    def whatif_remote_local(self) -> float:
        """Estimated makespan had every remote access been local: the
        path's remote-memory time replayed at the local service rate."""
        return self.makespan - (self.totals["mem_remote"] - self.remote_as_local)

    # ------------------------------------------------------------------
    def machine_totals(self) -> dict[str, float]:
        """Machine view summed over sockets (busy-time attribution)."""
        out = {"compute": 0.0, "mem_local": 0.0, "mem_remote": 0.0,
               "mem_network": 0.0, "waste": 0.0}
        for parts in self.machine_view.values():
            for key in out:
                out[key] += parts.get(key, 0.0)
        return out

    def to_dict(self, *, compact: bool = False) -> dict[str, Any]:
        """JSON-safe dump (plain Python scalars only).

        ``compact=True`` drops the segment list and per-task map — the
        form attached to service job results.
        """
        out: dict[str, Any] = {
            "program": self.program_name,
            "scheduler": self.scheduler_name,
            "machine": self.machine_name,
            "seed": int(self.seed),
            "makespan": float(self.makespan),
            "components": {k: float(v) for k, v in self.totals.items()},
            "residual": float(self.residual),
            "n_path_tasks": int(self.n_path_tasks),
            "whatif_remote_local": float(self.whatif_remote_local()),
            "machine_view": {
                str(s): {k: float(v) for k, v in parts.items()}
                for s, parts in sorted(self.machine_view.items())
            },
        }
        if not compact:
            out["per_socket"] = {
                str(s): {k: float(v) for k, v in parts.items()}
                for s, parts in sorted(self.per_socket.items())
            }
            out["per_task"] = {
                str(t): {k: float(v) for k, v in parts.items()}
                for t, parts in sorted(self.per_task.items())
            }
            out["task_names"] = {
                str(t): n for t, n in sorted(self.task_names.items())
            }
            out["segments"] = [
                {
                    "t0": float(s.t0), "t1": float(s.t1), "kind": s.kind,
                    "tid": int(s.tid), "name": s.name,
                    "socket": int(s.socket), "core": int(s.core),
                    "parts": {k: float(v) for k, v in s.parts.items()},
                }
                for s in self.segments
            ]
        return out

    def render(self, top: int = 5) -> str:
        """Human-readable profile (the ``repro profile`` body)."""
        lines = [
            f"critical-path profile — {self.program_name} / "
            f"{self.scheduler_name} @ {self.machine_name} (seed {self.seed})",
            f"makespan {self.makespan:.6g}, {self.n_path_tasks} tasks on the "
            f"critical path (residual {self.residual:.1e})",
        ]
        span = self.makespan or 1.0
        for comp in COMPONENTS:
            value = self.totals[comp]
            bar = "#" * int(round(40 * value / span))
            lines.append(f"  {comp:<11s} {value:10.4g}  {value / span:6.1%} {bar}")
        lines.append(
            "what-if remote=local: makespan "
            f"{self.whatif_remote_local():.6g} "
            f"({(self.whatif_remote_local() - self.makespan) / span:+.1%})"
        )
        movers = sorted(
            self.per_task.items(),
            key=lambda kv: -sum(kv[1].values()),
        )[:top]
        if movers:
            lines.append("top critical-path tasks:")
            for tid, parts in movers:
                total = sum(parts.values())
                main = max(parts, key=lambda k: parts[k])
                lines.append(
                    f"  #{tid:<6d} {self.task_names.get(tid, '?'):<24s} "
                    f"{total:10.4g}  (mostly {main})"
                )
        busy = self.machine_totals()
        lines.append(
            "machine view (all records): "
            + " ".join(f"{k}={busy[k]:.4g}" for k in busy)
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# construction


def _park_intervals(
    events, rec_by_tid: dict[int, TaskRecord]
) -> dict[int, list[tuple[float, float]]]:
    """Per-task parked intervals from ``sched.place`` events.

    A park interval opens at a ``target="park"`` placement and closes at
    the task's next placement event (the re-offer); if no later placement
    survived in the ring buffer, it closes at the task's start.
    """
    placements: dict[int, list[tuple[float, str]]] = {}
    for ev in events or []:
        if ev.kind != "sched.place":
            continue
        tid = ev.args.get("tid")
        if tid is None:
            continue
        placements.setdefault(int(tid), []).append(
            (ev.ts, ev.args.get("target", ""))
        )
    intervals: dict[int, list[tuple[float, float]]] = {}
    for tid, seq in placements.items():
        for i, (ts, target) in enumerate(seq):
            if target != "park":
                continue
            if i + 1 < len(seq):
                end = seq[i + 1][0]
            elif tid in rec_by_tid:
                end = rec_by_tid[tid].start
            else:
                continue
            if end > ts:
                intervals.setdefault(tid, []).append((ts, end))
    return intervals


def _classify_gap(
    lo: float,
    hi: float,
    waste: list[tuple[float, float]],
    stall: list[tuple[float, float]],
) -> list[tuple[float, float, str]]:
    """Tile ``[lo, hi]`` with labelled intervals (waste > stall > queue).

    The boundary points of all clipped intervals cut ``[lo, hi]`` into
    elementary pieces; each piece takes the highest-priority label that
    covers it, so overlapping sources never double-count and the pieces
    sum exactly to ``hi - lo``.
    """
    clip = lambda iv: [  # noqa: E731 - tiny local helper
        (max(lo, a), min(hi, b)) for a, b in iv if min(hi, b) > max(lo, a)
    ]
    waste = clip(waste)
    stall = clip(stall)
    points = sorted({lo, hi, *(p for iv in (waste, stall) for ab in iv for p in ab)})
    out: list[tuple[float, float, str]] = []
    for a, b in zip(points, points[1:]):
        if b <= a:
            continue
        mid = 0.5 * (a + b)
        if any(x <= mid < y for x, y in waste):
            label = "waste"
        elif any(x <= mid < y for x, y in stall):
            label = "stall"
        else:
            label = "queue_wait"
        if out and out[-1][2] == label and out[-1][1] == a:
            out[-1] = (out[-1][0], b, label)
        else:
            out.append((a, b, label))
    return out


def profile_run(
    program,
    result: SimulationResult,
    topology,
    *,
    interconnect: Interconnect | None = None,
    events=None,
    tol: float = 1e-6,
) -> ProfileReport:
    """Decompose one run's makespan along its executed critical path.

    ``events`` defaults to ``result.events`` (populated on instrumented
    runs); without events the stall component degrades into queue wait —
    parked intervals are only recoverable from ``sched.place`` events.
    Raises :class:`~repro.errors.ProfilingError` if the decomposition
    does not sum to the makespan within ``tol * max(1, makespan)``.
    """
    interconnect = interconnect or Interconnect(topology)
    events = result.events if events is None else events
    model = AttributionModel(interconnect, result.bytes_by_pair)

    rec_by_tid = {r.tid: r for r in result.records}
    crashed_by_tid: dict[int, list[tuple[float, float]]] = {}
    for rec in result.crashed_records:
        crashed_by_tid.setdefault(rec.tid, []).append((rec.start, rec.finish))
    parked = _park_intervals(events, rec_by_tid)

    # Barrier bookkeeping: when does each epoch open, and which task of
    # the earlier epochs finished last (the "epoch blocker")?
    n_epochs = max((program.tasks[t].epoch for t in rec_by_tid), default=0) + 1
    epoch_max = [0.0] * n_epochs
    epoch_arg = [-1] * n_epochs
    for tid, rec in rec_by_tid.items():
        e = program.tasks[tid].epoch
        if rec.finish > epoch_max[e] or (
            rec.finish == epoch_max[e] and (epoch_arg[e] < 0 or tid < epoch_arg[e])
        ):
            epoch_max[e], epoch_arg[e] = rec.finish, tid
    ready_before = [0.0] * (n_epochs + 1)
    blocker_before = [-1] * (n_epochs + 1)
    for e in range(n_epochs):
        ready_before[e + 1] = ready_before[e]
        blocker_before[e + 1] = blocker_before[e]
        if epoch_max[e] > ready_before[e + 1]:
            ready_before[e + 1] = epoch_max[e]
            blocker_before[e + 1] = epoch_arg[e]

    segments: list[PathSegment] = []
    makespan = result.makespan

    def wait_seg(t0: float, t1: float, kind: str, rec: TaskRecord) -> None:
        segments.append(PathSegment(
            t0=t0, t1=t1, kind=kind, tid=rec.tid, name=rec.name,
            socket=rec.socket, core=rec.core, parts={kind: t1 - t0},
        ))

    if rec_by_tid:
        eps = 1e-12 * max(1.0, makespan)
        rec = max(result.records, key=lambda r: (r.finish, -r.tid))
        cursor = makespan
        if rec.finish < cursor - eps:
            wait_seg(rec.finish, cursor, "dep_wait", rec)
            cursor = rec.finish
        visited: set[int] = set()
        budget = len(result.records) + len(result.crashed_records) + 16
        while True:
            budget -= 1
            if budget < 0 or rec.tid in visited:
                # Defensive: a cycle or runaway chain would break the
                # tiling; close it as one dep_wait hole instead.
                if cursor > 0:
                    wait_seg(0.0, cursor, "dep_wait", rec)
                break
            visited.add(rec.tid)
            start = min(rec.start, cursor)
            if cursor > start:
                split = model.split(
                    work=program.tasks[rec.tid].work,
                    local_bytes=rec.local_bytes,
                    remote_bytes=rec.remote_bytes,
                    socket=rec.socket,
                    duration=cursor - start,
                    net_bytes=rec.net_bytes,
                )
                segments.append(PathSegment(
                    t0=start, t1=cursor, kind="exec", tid=rec.tid,
                    name=rec.name, socket=rec.socket, core=rec.core,
                    parts={
                        "compute": split.compute,
                        "mem_local": split.mem_local,
                        "mem_remote": split.mem_remote,
                        "mem_network": split.mem_network,
                    },
                    remote_as_local=split.remote_as_local,
                ))
            cursor = start
            task = program.tasks[rec.tid]
            preds = program.tdg.predecessors(rec.tid)
            dep_ready = max(
                (rec_by_tid[p].finish for p in preds if p in rec_by_tid),
                default=0.0,
            )
            epoch_ready = ready_before[min(task.epoch, n_epochs)]
            ready = min(max(dep_ready, epoch_ready), cursor)
            if cursor - ready > eps:
                for a, b, label in _classify_gap(
                    ready, cursor,
                    crashed_by_tid.get(rec.tid, []),
                    parked.get(rec.tid, []),
                ):
                    wait_seg(a, b, label, rec)
            cursor = ready
            if cursor <= eps:
                break
            if preds and dep_ready >= epoch_ready:
                btid = max(
                    (p for p in preds if p in rec_by_tid),
                    key=lambda p: (rec_by_tid[p].finish, -p),
                )
            elif blocker_before[min(task.epoch, n_epochs)] >= 0:
                btid = blocker_before[min(task.epoch, n_epochs)]
            else:
                wait_seg(0.0, cursor, "dep_wait", rec)
                break
            nxt = rec_by_tid[btid]
            if nxt.finish < cursor - eps:
                wait_seg(nxt.finish, cursor, "dep_wait", rec)
                cursor = nxt.finish
            rec = nxt

    segments.reverse()

    totals = _zero_components()
    per_task: dict[int, dict[str, float]] = {}
    per_socket: dict[int, dict[str, float]] = {}
    task_names: dict[int, str] = {}
    remote_as_local = 0.0
    for seg in segments:
        task_names[seg.tid] = seg.name
        t_acc = per_task.setdefault(seg.tid, _zero_components())
        s_acc = per_socket.setdefault(seg.socket, _zero_components())
        for comp, value in seg.parts.items():
            totals[comp] += value
            t_acc[comp] += value
            s_acc[comp] += value
        remote_as_local += seg.remote_as_local

    machine_view: dict[int, dict[str, float]] = {
        int(s): {"compute": 0.0, "mem_local": 0.0, "mem_remote": 0.0,
                 "mem_network": 0.0, "waste": 0.0}
        for s in range(topology.n_sockets)
    }
    for rec in result.records:
        split = model.split(
            work=program.tasks[rec.tid].work,
            local_bytes=rec.local_bytes,
            remote_bytes=rec.remote_bytes,
            socket=rec.socket,
            duration=rec.duration,
            net_bytes=rec.net_bytes,
        )
        view = machine_view[rec.socket]
        view["compute"] += split.compute
        view["mem_local"] += split.mem_local
        view["mem_remote"] += split.mem_remote
        view["mem_network"] += split.mem_network
    for rec in result.crashed_records:
        machine_view[rec.socket]["waste"] += rec.duration

    residual = makespan - sum(totals.values())
    if abs(residual) > tol * max(1.0, makespan):
        raise ProfilingError(
            f"decomposition does not sum to makespan: residual {residual!r} "
            f"over makespan {makespan!r} ({len(segments)} segments)"
        )

    return ProfileReport(
        program_name=result.program_name,
        scheduler_name=result.scheduler_name,
        machine_name=result.machine_name,
        seed=result.seed,
        makespan=makespan,
        segments=segments,
        totals=totals,
        per_task=per_task,
        task_names=task_names,
        per_socket=per_socket,
        machine_view=machine_view,
        remote_as_local=remote_as_local,
        residual=residual,
    )
