"""Differential profiling: where did the time go between two runs?

Aligns two :class:`~repro.profiling.critical_path.ProfileReport` objects
of the *same program* (task ids align by construction — the TDG is
deterministic for a given app/size) and decomposes the makespan delta by
component.  Because each report's components sum to its own makespan,
the component deltas sum exactly to the makespan delta — the diff
inherits the decomposition invariant.

Two lenses are reported side by side (DESIGN.md §13):

* **critical path** — where the *binding chain* spent its time; answers
  "what limited this run";
* **machine view** — busy-time attribution over every record; answers
  "what did the machine as a whole spend its cycles on".  The paper's
  thesis (RGP+LAS wins by converting remote accesses into local ones)
  shows up here as a dominant ``mem_remote`` reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ProfilingError
from .critical_path import COMPONENTS, ProfileReport


@dataclass
class ProfileDiff:
    """Attributed difference between run ``a`` (baseline) and ``b``."""

    a: ProfileReport
    b: ProfileReport
    delta_makespan: float
    #: Critical-path component deltas, ``a - b`` (positive = run b saved
    #: time on that component); sums to ``delta_makespan`` - residual drift.
    delta_components: dict[str, float]
    #: Machine-view busy-time deltas (compute/mem_local/mem_remote/waste).
    delta_machine: dict[str, float]
    #: Per-task critical-path deltas, largest first: (tid, name, delta).
    task_moves: list[tuple[int, str, float]]

    # ------------------------------------------------------------------
    def dominant_component(self) -> str:
        """Critical-path component with the largest absolute delta."""
        return max(self.delta_components, key=lambda c: abs(self.delta_components[c]))

    def dominant_machine_component(self) -> str:
        """Machine-view busy-time component with the largest |delta|."""
        return max(self.delta_machine, key=lambda c: abs(self.delta_machine[c]))

    def to_dict(self) -> dict[str, Any]:
        return {
            "a": {"scheduler": self.a.scheduler_name,
                  "makespan": float(self.a.makespan)},
            "b": {"scheduler": self.b.scheduler_name,
                  "makespan": float(self.b.makespan)},
            "delta_makespan": float(self.delta_makespan),
            "delta_components": {
                k: float(v) for k, v in self.delta_components.items()
            },
            "delta_machine": {
                k: float(v) for k, v in self.delta_machine.items()
            },
            "dominant_component": self.dominant_component(),
            "dominant_machine_component": self.dominant_machine_component(),
            "task_moves": [
                {"tid": int(t), "name": n, "delta": float(d)}
                for t, n, d in self.task_moves
            ],
        }

    def render(self, top: int = 8) -> str:
        a, b = self.a, self.b
        lines = [
            f"profile diff — {a.program_name} @ {a.machine_name} "
            f"(seed {a.seed})",
            f"  a: {a.scheduler_name:<16s} makespan {a.makespan:.6g}",
            f"  b: {b.scheduler_name:<16s} makespan {b.makespan:.6g}",
            f"  delta (a - b): {self.delta_makespan:+.6g} "
            f"({self.delta_makespan / (a.makespan or 1.0):+.1%} of a)",
            "critical-path component deltas (positive = b saved time):",
        ]
        for comp in COMPONENTS:
            value = self.delta_components[comp]
            lines.append(f"  {comp:<11s} {value:+10.4g}")
        lines.append("machine-view busy-time deltas:")
        for comp, value in self.delta_machine.items():
            lines.append(f"  {comp:<11s} {value:+10.4g}")
        lines.append(
            f"dominant source: {self.dominant_component()} on the critical "
            f"path, {self.dominant_machine_component()} machine-wide"
        )
        what_if = a.whatif_remote_local()
        lines.append(
            f"what-if on a (remote=local): {what_if:.6g} "
            f"({(what_if - a.makespan) / (a.makespan or 1.0):+.1%})"
        )
        moves = self.task_moves[:top]
        if moves:
            lines.append("largest per-task critical-path moves (a - b):")
            for tid, name, delta in moves:
                lines.append(f"  #{tid:<6d} {name:<24s} {delta:+10.4g}")
        return "\n".join(lines)


def diff_profiles(a: ProfileReport, b: ProfileReport) -> ProfileDiff:
    """Diff two profiles of the same program (align by task id)."""
    if a.program_name != b.program_name:
        raise ProfilingError(
            f"cannot align different programs: {a.program_name!r} vs "
            f"{b.program_name!r}"
        )
    if a.machine_name != b.machine_name:
        raise ProfilingError(
            f"cannot align different machines: {a.machine_name!r} vs "
            f"{b.machine_name!r}"
        )
    delta_components = {
        comp: a.totals[comp] - b.totals[comp] for comp in COMPONENTS
    }
    am, bm = a.machine_totals(), b.machine_totals()
    delta_machine = {comp: am[comp] - bm[comp] for comp in am}

    tids = set(a.per_task) | set(b.per_task)
    moves = []
    for tid in tids:
        da = sum(a.per_task.get(tid, {}).values())
        db = sum(b.per_task.get(tid, {}).values())
        name = a.task_names.get(tid) or b.task_names.get(tid) or f"task-{tid}"
        moves.append((tid, name, da - db))
    moves.sort(key=lambda m: (-abs(m[2]), m[0]))

    return ProfileDiff(
        a=a,
        b=b,
        delta_makespan=a.makespan - b.makespan,
        delta_components=delta_components,
        delta_machine=delta_machine,
        task_moves=moves,
    )
