"""Scheduling hot-path benchmark: decisions/sec and end-to-end sim speed.

The scheduling hot path is one query — "how many of this task's bytes are
bound to each NUMA node?" (:func:`repro.runtime.cost.allocated_bytes_per_node`).
Every LAS decision asks it, the simulator asks it again at task start, and
RGP's propagation inherits it.  This harness measures that query two ways,
with the :class:`~repro.machine.memory.MemoryManager` placement cache on
and off:

* **decision rate** — replay the LAS decision query over every task of a
  bound placement, the steady-state cost of one scheduling decision;
* **end-to-end** — wall-clock of a complete simulation, where the query
  is interleaved with first-touch binding (the adversarial case for the
  cache: every producer invalidates its output object).

Entries follow the fixed schema ``{name, n_tasks, policy, wall_s,
decisions_per_s}`` and are written to ``BENCH_hotpath.json``; cached and
uncached runs of the same workload sit side by side so the speedup is
recorded in the file, and :func:`check_cache_equivalence` proves (under
``REPRO_CHECK_CACHE`` oracle semantics) that the cache never changes a
schedule.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from ..apps import make_app
from ..errors import BenchmarkError
from ..machine import presets
from ..machine.memory import MemoryManager
from ..runtime.cost import allocated_bytes_per_node
from ..runtime.program import TaskProgram
from ..runtime.simulator import Simulator
from ..schedulers import make_scheduler

#: Required schema of one ``BENCH_hotpath.json`` entry (extra keys allowed).
BENCH_SCHEMA_KEYS: dict[str, type] = {
    "name": str,
    "n_tasks": int,
    "policy": str,
    "wall_s": float,
    "decisions_per_s": float,
}

#: Default task-count targets (the large one satisfies the >= 10k-task
#: acceptance bar for the cache speedup measurement).
FULL_SIZES = (1_000, 4_000, 10_000)
QUICK_SIZES = (300, 1_200)

#: Policies timed end-to-end (the decision bench is LAS by definition).
E2E_POLICIES = ("las", "rgp+las")


def build_bench_program(n_tasks: int, n_sockets: int) -> TaskProgram:
    """A stencil task program with at least ``n_tasks`` tasks.

    The 2-D stencil is the cache's worst realistic workload: every task
    reads five neighbour tiles (high range-sharing across consumers) while
    sweeps keep first-touching fresh output objects (steady invalidation).
    """
    if n_tasks < 3:
        raise BenchmarkError(f"need at least 3 tasks, got {n_tasks}")
    # SyntheticApp stencil builds 3 sweeps of a scale x scale grid.
    scale = 1
    while 3 * scale * scale < n_tasks:
        scale += 1
    app = make_app("synthetic", kind="stencil", scale=scale)
    return app.build(n_sockets)


def _timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def bench_decision_rate(
    program: TaskProgram,
    topology,
    *,
    cache: bool,
    reps: int = 3,
    label: str | None = None,
) -> dict[str, Any]:
    """Time the LAS decision query over a fully bound placement.

    Pages are bound round-robin (tid mod node) before timing, modelling
    the steady state where producers have run and the scheduler weighs
    settled data — exactly what LAS does for every ready task.
    """
    memory = MemoryManager(topology.n_nodes, cache=cache)
    for obj in program.objects:
        memory.register(obj.key, obj.size_bytes)
    for task in program.tasks:
        node = task.tid % topology.n_nodes
        for access in task.accesses:
            memory.touch(access.obj.key, node, access.offset, access.length)

    def replay() -> None:
        for _ in range(reps):
            for task in program.tasks:
                allocated_bytes_per_node(task, memory)

    _, wall = _timed(replay)
    n_decisions = reps * program.n_tasks
    return {
        "name": label or f"decision/{program.name}-{program.n_tasks}/"
        f"{'cached' if cache else 'uncached'}",
        "n_tasks": program.n_tasks,
        "policy": "las",
        "wall_s": wall,
        "decisions_per_s": n_decisions / wall if wall > 0 else float("inf"),
    }


def bench_end_to_end(
    program: TaskProgram,
    topology,
    policy: str,
    *,
    cache: bool,
    seed: int = 0,
    label: str | None = None,
) -> dict[str, Any]:
    """Wall-clock one full simulation; decisions/sec = tasks placed / wall."""
    sim = Simulator(
        program, topology, make_scheduler(policy),
        seed=seed, placement_cache=cache,
    )
    _, wall = _timed(sim.run)
    return {
        "name": label or f"e2e/{program.name}-{program.n_tasks}/{policy}/"
        f"{'cached' if cache else 'uncached'}",
        "n_tasks": program.n_tasks,
        "policy": policy,
        "wall_s": wall,
        "decisions_per_s": program.n_tasks / wall if wall > 0 else float("inf"),
    }


def check_cache_equivalence(
    program: TaskProgram, topology, policy: str, seed: int = 0
) -> None:
    """Prove cached and uncached runs produce byte-identical schedules.

    The cached run executes with the oracle enabled (the in-process
    equivalent of ``REPRO_CHECK_CACHE=1``): every cache hit is cross
    -checked against a fresh recompute, and the resulting schedules must
    match record for record.
    """
    cached_sim = Simulator(
        program, topology, make_scheduler(policy), seed=seed,
        placement_cache=True,
    )
    cached_sim.memory.check_cache = True  # REPRO_CHECK_CACHE oracle mode
    cached = cached_sim.run()
    uncached = Simulator(
        program, topology, make_scheduler(policy), seed=seed,
        placement_cache=False,
    ).run()
    if cached.makespan != uncached.makespan or len(cached.records) != len(
        uncached.records
    ):
        raise BenchmarkError(
            f"cache changed the {policy} schedule: makespan "
            f"{cached.makespan} vs {uncached.makespan}"
        )
    for a, b in zip(cached.records, uncached.records):
        if (
            a.tid != b.tid or a.core != b.core or a.socket != b.socket
            or a.start != b.start or a.finish != b.finish
            or a.local_bytes != b.local_bytes
            or a.remote_bytes != b.remote_bytes
        ):
            raise BenchmarkError(
                f"cache changed the {policy} schedule at task {a.tid}: "
                f"{a} vs {b}"
            )


def validate_entries(entries: Any) -> None:
    """Enforce the ``BENCH_hotpath.json`` schema; raise on any violation."""
    if not isinstance(entries, list) or not entries:
        raise BenchmarkError("bench output must be a non-empty list of entries")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BenchmarkError(f"entry {i} is not an object: {entry!r}")
        for key, typ in BENCH_SCHEMA_KEYS.items():
            if key not in entry:
                raise BenchmarkError(f"entry {i} missing key {key!r}: {entry}")
            value = entry[key]
            if typ is float:
                ok = isinstance(value, (int, float)) and not isinstance(
                    value, bool
                )
            elif typ is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, typ)
            if not ok:
                raise BenchmarkError(
                    f"entry {i} key {key!r} must be {typ.__name__}, "
                    f"got {value!r}"
                )
        if entry["wall_s"] < 0 or entry["decisions_per_s"] < 0:
            raise BenchmarkError(f"entry {i} has negative measurements: {entry}")
        if entry["n_tasks"] < 1:
            raise BenchmarkError(f"entry {i} has no tasks: {entry}")


def write_entries(entries: list[dict[str, Any]], path: str | Path) -> None:
    """Validate and write the bench entries as ``BENCH_hotpath.json``."""
    validate_entries(entries)
    Path(path).write_text(json.dumps(entries, indent=2) + "\n")


def run_hotpath_bench(
    *,
    quick: bool = False,
    sizes: tuple[int, ...] | None = None,
    machine: str = "four-socket",
    reps: int = 3,
    seed: int = 0,
    verify: bool = True,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, Any]]:
    """The full hot-path suite: decision rates + end-to-end, cached/uncached.

    Returns schema-valid entries; the largest size carries the headline
    cached-vs-uncached decision-rate comparison.  ``verify=True`` also
    runs the oracle equivalence check (cached vs uncached schedules must
    be byte-identical) on the smallest size for every end-to-end policy.
    """
    say = progress or (lambda _msg: None)
    topology = presets.by_name(machine)
    sizes = tuple(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    entries: list[dict[str, Any]] = []
    programs = {}
    for n in sizes:
        say(f"building ~{n}-task stencil program")
        programs[n] = build_bench_program(n, topology.n_sockets)

    if verify:
        smallest = programs[min(sizes)]
        for policy in E2E_POLICIES:
            say(
                f"oracle check ({policy}, {smallest.n_tasks} tasks): "
                "cached vs uncached schedules"
            )
            check_cache_equivalence(smallest, topology, policy, seed=seed)
        say("oracle check passed: schedules byte-identical")

    for n in sizes:
        program = programs[n]
        for cache in (False, True):
            entry = bench_decision_rate(
                program, topology, cache=cache, reps=reps
            )
            entries.append(entry)
            say(
                f"{entry['name']}: {entry['decisions_per_s']:,.0f} "
                f"decisions/s ({entry['wall_s']:.3f}s)"
            )
    # End-to-end at the smaller sizes only: the uncached simulator at the
    # largest size is exactly the bottleneck this cache removes.
    e2e_sizes = sizes[:-1] if len(sizes) > 1 else sizes
    for n in e2e_sizes:
        program = programs[n]
        for policy in E2E_POLICIES:
            for cache in (False, True):
                entry = bench_end_to_end(
                    program, topology, policy, cache=cache, seed=seed,
                    label=(
                        f"e2e/{program.name}-{program.n_tasks}/{policy}/"
                        f"{'cached' if cache else 'uncached'}"
                    ),
                )
                entries.append(entry)
                say(
                    f"{entry['name']}: {entry['wall_s']:.3f}s wall, "
                    f"{entry['decisions_per_s']:,.0f} tasks/s"
                )
    validate_entries(entries)
    return entries


def headline_speedup(entries: list[dict[str, Any]]) -> float | None:
    """Cached/uncached decision-rate ratio at the largest benched size."""
    best: dict[int, dict[str, float]] = {}
    for entry in entries:
        if not entry["name"].startswith("decision/"):
            continue
        mode = entry["name"].rsplit("/", 1)[-1]
        best.setdefault(entry["n_tasks"], {})[mode] = entry["decisions_per_s"]
    for n in sorted(best, reverse=True):
        modes = best[n]
        if "cached" in modes and "uncached" in modes and modes["uncached"] > 0:
            return modes["cached"] / modes["uncached"]
    return None
