"""End-to-end engine benchmark: flat vs object simulation wall-clock.

PR 8 rewrote the simulator hot loop onto struct-of-arrays state (the
*flat* engine, :class:`repro.runtime.engines.FlatEngine`), keeping the
per-event object engine as a bit-identical oracle twin.  This harness
measures what that bought end to end: wall-clock of complete simulations
of the stencil bench program under both engines, at several sizes and
policies, written to ``BENCH_e2e.json``.

Three engine labels appear in the output:

* ``object`` / ``flat`` — both measured live, in this process, on this
  machine.  Their ratio (``wall_object / wall_flat``) is the
  machine-portable metric the perf observatory gates CI on.
* ``before`` — **frozen** wall-clock numbers measured at commit
  ``fa211d0`` (the tree immediately before the flat-engine PR), on the
  development machine.  They document the headline end-to-end speedup of
  the whole PR (engine rewrite + solver + memory-path work) and are
  deliberately *excluded* from the ratio metrics CI compares: a frozen
  dev-machine wall divided by a live CI wall is not a portable number.

Walls are the **min over ``reps`` runs** (each rep builds a fresh
scheduler and :class:`~repro.runtime.simulator.Simulator`): the minimum
is the standard noise-robust estimator for a deterministic workload.
``verify=True`` additionally proves flat and object produce bit-identical
schedules on the smallest benched size for every policy.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from ..errors import BenchmarkError
from ..machine import presets
from ..runtime.simulator import Simulator
from ..schedulers import make_scheduler
from .hotpath import FULL_SIZES, QUICK_SIZES, build_bench_program

#: Required schema of one ``BENCH_e2e.json`` entry (extra keys allowed;
#: live entries also carry ``makespan``, which frozen ``before`` rows
#: predate).
E2E_SCHEMA_KEYS: dict[str, type] = {
    "name": str,
    "n_tasks": int,
    "policy": str,
    "engine": str,
    "wall_s": float,
    "tasks_per_s": float,
}

#: Policies timed end to end (mirrors the hotpath bench).
E2E_POLICIES = ("las", "rgp+las")

#: Engines measured live.
ENGINES = ("object", "flat")

#: Commit the ``before`` walls were measured at (pre-flat-engine tree).
BEFORE_COMMIT = "fa211d0"

#: Frozen pre-PR walls: ``(case, policy) -> wall seconds`` measured at
#: :data:`BEFORE_COMMIT` on the development machine (four-socket preset,
#: seed 0, single run).  Never remeasured — the old hot loop no longer
#: exists in this tree.
BEFORE_WALLS: dict[tuple[str, str], float] = {
    ("synthetic-stencil-1083", "las"): 0.9490008050006509,
    ("synthetic-stencil-1083", "rgp+las"): 0.701877049000359,
    ("synthetic-stencil-4107", "las"): 3.2332056329996703,
    ("synthetic-stencil-4107", "rgp+las"): 3.1805794229994717,
    ("synthetic-stencil-10092", "las"): 7.927745519999917,
    ("synthetic-stencil-10092", "rgp+las"): 8.140505693000705,
}


def bench_engine_e2e(
    program,
    topology,
    policy: str,
    engine: str,
    *,
    reps: int = 3,
    seed: int = 0,
    label: str | None = None,
) -> dict[str, Any]:
    """Wall-clock ``reps`` full simulations under ``engine``; keep the min.

    Every rep builds a fresh scheduler and simulator (schedulers are
    stateful).  The recorded makespan must be identical across reps —
    the simulation is deterministic, so a flicker here means the engine
    leaked state between runs.
    """
    if reps < 1:
        raise BenchmarkError(f"need at least 1 rep, got {reps}")
    walls: list[float] = []
    makespan: float | None = None
    for _ in range(reps):
        sim = Simulator(
            program, topology, make_scheduler(policy), seed=seed,
            engine=engine,
        )
        t0 = time.perf_counter()
        result = sim.run()
        walls.append(time.perf_counter() - t0)
        if makespan is None:
            makespan = result.makespan
        elif result.makespan != makespan:
            raise BenchmarkError(
                f"non-deterministic rep: {policy}/{engine} makespan "
                f"{result.makespan!r} != {makespan!r}"
            )
    wall = min(walls)
    return {
        "name": label
        or f"e2e/{program.name}-{program.n_tasks}/{policy}/{engine}",
        "n_tasks": program.n_tasks,
        "policy": policy,
        "engine": engine,
        "wall_s": wall,
        "tasks_per_s": program.n_tasks / wall if wall > 0 else float("inf"),
        "makespan": makespan,
    }


def before_entry(case: str, n_tasks: int, policy: str) -> dict[str, Any]:
    """The frozen pre-PR entry for ``(case, policy)``; see :data:`BEFORE_WALLS`."""
    wall = BEFORE_WALLS[(case, policy)]
    return {
        "name": f"e2e/{case}/{policy}/before",
        "n_tasks": n_tasks,
        "policy": policy,
        "engine": "before",
        "wall_s": wall,
        "tasks_per_s": n_tasks / wall,
        "measured_at_commit": BEFORE_COMMIT,
    }


def check_engine_equivalence(
    program, topology, policy: str, seed: int = 0
) -> None:
    """Prove flat and object engines produce bit-identical schedules.

    Exact ``==`` on every record field — no tolerance.  The flat engine's
    correctness contract is bit-identity with the object oracle, and the
    bench refuses to publish numbers for an engine that breaks it.
    """
    results = {}
    for engine in ENGINES:
        sim = Simulator(
            program, topology, make_scheduler(policy), seed=seed,
            engine=engine,
        )
        results[engine] = sim.run()
    obj, flat = results["object"], results["flat"]
    if obj.makespan != flat.makespan or len(obj.records) != len(flat.records):
        raise BenchmarkError(
            f"engines diverge on {policy}: makespan {obj.makespan!r} "
            f"(object) vs {flat.makespan!r} (flat)"
        )
    for a, b in zip(obj.records, flat.records):
        if (
            a.tid != b.tid or a.core != b.core or a.socket != b.socket
            or a.start != b.start or a.finish != b.finish
            or a.local_bytes != b.local_bytes
            or a.remote_bytes != b.remote_bytes
        ):
            raise BenchmarkError(
                f"engines diverge on {policy} at task {a.tid}: "
                f"{a} (object) vs {b} (flat)"
            )


def validate_e2e_entries(entries: Any) -> None:
    """Enforce the ``BENCH_e2e.json`` schema; raise on any violation."""
    if not isinstance(entries, list) or not entries:
        raise BenchmarkError("bench output must be a non-empty list of entries")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BenchmarkError(f"entry {i} is not an object: {entry!r}")
        for key, typ in E2E_SCHEMA_KEYS.items():
            if key not in entry:
                raise BenchmarkError(f"entry {i} missing key {key!r}: {entry}")
            value = entry[key]
            if typ is float:
                ok = isinstance(value, (int, float)) and not isinstance(
                    value, bool
                )
            elif typ is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, typ)
            if not ok:
                raise BenchmarkError(
                    f"entry {i} key {key!r} must be {typ.__name__}, "
                    f"got {value!r}"
                )
        if entry["engine"] not in ("object", "flat", "before"):
            raise BenchmarkError(
                f"entry {i} has unknown engine {entry['engine']!r}"
            )
        if entry["wall_s"] < 0 or entry["tasks_per_s"] < 0:
            raise BenchmarkError(f"entry {i} has negative measurements: {entry}")
        if entry["n_tasks"] < 1:
            raise BenchmarkError(f"entry {i} has no tasks: {entry}")


def write_e2e_entries(entries: list[dict[str, Any]], path: str | Path) -> None:
    """Validate and write the bench entries as ``BENCH_e2e.json``."""
    validate_e2e_entries(entries)
    Path(path).write_text(json.dumps(entries, indent=2) + "\n")


def run_e2e_bench(
    *,
    quick: bool = False,
    sizes: tuple[int, ...] | None = None,
    machine: str = "four-socket",
    reps: int = 3,
    seed: int = 0,
    verify: bool = True,
    include_before: bool = True,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, Any]]:
    """The full engine suite: flat vs object end to end at every size.

    Returns schema-valid entries.  ``verify=True`` proves bit-identity of
    the two engines on the smallest size for every policy before any
    timing runs.  ``include_before=True`` adds the frozen pre-PR walls
    for whichever benched cases have one (see :data:`BEFORE_WALLS`).
    """
    say = progress or (lambda _msg: None)
    topology = presets.by_name(machine)
    sizes = tuple(sizes) if sizes else (QUICK_SIZES if quick else FULL_SIZES)
    programs = {}
    for n in sizes:
        say(f"building ~{n}-task stencil program")
        programs[n] = build_bench_program(n, topology.n_sockets)

    if verify:
        smallest = programs[min(sizes)]
        for policy in E2E_POLICIES:
            say(
                f"engine oracle check ({policy}, {smallest.n_tasks} tasks): "
                "flat vs object schedules"
            )
            check_engine_equivalence(smallest, topology, policy, seed=seed)
        say("engine oracle check passed: schedules bit-identical")

    entries: list[dict[str, Any]] = []
    for n in sizes:
        program = programs[n]
        case = f"{program.name}-{program.n_tasks}"
        for policy in E2E_POLICIES:
            if include_before and (case, policy) in BEFORE_WALLS:
                entry = before_entry(case, program.n_tasks, policy)
                entries.append(entry)
                say(
                    f"{entry['name']}: {entry['wall_s']:.3f}s wall "
                    f"(frozen, commit {BEFORE_COMMIT})"
                )
            for engine in ENGINES:
                entry = bench_engine_e2e(
                    program, topology, policy, engine,
                    reps=reps, seed=seed,
                )
                entries.append(entry)
                say(
                    f"{entry['name']}: {entry['wall_s']:.3f}s wall "
                    f"(min of {reps}), {entry['tasks_per_s']:,.0f} tasks/s"
                )
    validate_e2e_entries(entries)
    return entries


def headline_e2e_speedup(entries: list[dict[str, Any]]) -> float | None:
    """Before/flat wall ratio at the largest benched size with both.

    Prefers ``rgp+las`` (the paper's policy); falls back to any policy
    that has both a frozen ``before`` wall and a live ``flat`` wall.
    """
    cases: dict[tuple[int, str], dict[str, float]] = {}
    for entry in entries:
        parts = entry["name"].split("/")
        if len(parts) == 4 and parts[0] == "e2e":
            key = (entry["n_tasks"], parts[2])
            cases.setdefault(key, {})[parts[3]] = entry["wall_s"]
    for n, policy in sorted(
        cases, key=lambda k: (k[0], k[1] == "rgp+las"), reverse=True
    ):
        walls = cases[(n, policy)]
        if "before" in walls and "flat" in walls and walls["flat"] > 0:
            return walls["before"] / walls["flat"]
    return None
