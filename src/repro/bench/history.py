"""Perf-regression observatory: bench history and noise-aware comparison.

Two pieces (DESIGN.md §13):

* **History** — every real bench run appends one JSONL record to
  ``BENCH_history.jsonl`` (append-only; one line per run, never
  rewritten), so the perf trajectory of the reproduction is a queryable
  artifact rather than a pile of overwritten JSON files.

* **Comparison** — :func:`compare_bench_files` diffs two schema-validated
  bench files (hotpath or service, auto-detected) with noise-aware
  thresholds and returns a :class:`CompareReport`; the CLI maps a failed
  report to :class:`~repro.errors.BenchmarkError` (exit code 6) so CI can
  gate on it.

Wall-clock benchmarks are noisy and machine-dependent, so the *default*
comparison mode is **ratio mode**: instead of comparing raw
``decisions_per_s`` / ``jobs_per_s`` across files (meaningless between a
laptop and a CI runner), it derives machine-portable ratios —
cached-vs-uncached decision speedup, end-to-end caching speedup, service
warm-vs-cold speedup, cache hit rates, lost-result counts — and compares
*those*.  ``absolute=True`` opts into raw-throughput comparison for
same-machine A/B runs, with a wider default tolerance.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import BenchmarkError
from .e2e import validate_e2e_entries
from .hotpath import validate_entries as validate_hotpath_entries

__all__ = [
    "CompareReport",
    "MetricRow",
    "append_history",
    "compare_bench_files",
    "derive_metrics",
    "load_bench_file",
    "load_history",
]

HISTORY_FILE = "BENCH_history.jsonl"

#: Default relative tolerance per (kind, mode).  Ratio metrics are far
#: more stable than raw throughput, hence the tighter default.
DEFAULT_TOLERANCE = {
    ("ratio", False): 0.30,
    ("absolute", False): 0.50,
}


# ---------------------------------------------------------------------------
# Loading / kind detection


def load_bench_file(path: str | Path) -> tuple[str, list[dict[str, Any]]]:
    """Load + schema-validate a bench file; return ``(kind, entries)``.

    Kind is auto-detected from the entry schema: ``engine`` marks an
    e2e engine-bench file (checked first — its entries also carry
    ``policy``), ``decisions_per_s`` / ``policy`` a hotpath file,
    ``jobs_per_s`` a service file.  Raises :class:`BenchmarkError` on
    unreadable, unparsable or schema-violating input — the comparison
    must never run on garbage.
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise BenchmarkError(f"cannot read bench file {path}: {exc}") from exc
    try:
        entries = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(entries, list) or not entries:
        raise BenchmarkError(f"{path}: bench file must be a non-empty list")
    first = entries[0]
    if not isinstance(first, dict):
        raise BenchmarkError(f"{path}: entry 0 is not an object")
    if "engine" in first:
        validate_e2e_entries(entries)
        return "e2e", entries
    if "decisions_per_s" in first or "policy" in first:
        validate_hotpath_entries(entries)
        return "hotpath", entries
    if "jobs_per_s" in first:
        from ..service.loadgen import validate_service_entries

        validate_service_entries(entries)
        return "service", entries
    raise BenchmarkError(
        f"{path}: cannot detect bench kind from entry keys "
        f"{sorted(first)!r}"
    )


# ---------------------------------------------------------------------------
# Derived metrics


@dataclass(frozen=True)
class _Metric:
    value: float
    higher_is_better: bool


def _hotpath_ratio_metrics(entries: list[dict[str, Any]]) -> dict[str, _Metric]:
    """Machine-portable ratios derived from a hotpath bench file."""
    decision: dict[str, dict[str, float]] = {}
    e2e: dict[str, dict[str, float]] = {}
    for entry in entries:
        parts = entry["name"].split("/")
        if parts[0] == "decision" and len(parts) == 3:
            decision.setdefault(parts[1], {})[parts[2]] = entry["decisions_per_s"]
        elif parts[0] == "e2e" and len(parts) == 4:
            e2e.setdefault(f"{parts[1]}/{parts[2]}", {})[parts[3]] = entry["wall_s"]
    metrics: dict[str, _Metric] = {}
    for case, modes in sorted(decision.items()):
        if "cached" in modes and "uncached" in modes and modes["uncached"] > 0:
            metrics[f"decision-speedup/{case}"] = _Metric(
                modes["cached"] / modes["uncached"], True
            )
    for case, modes in sorted(e2e.items()):
        if "cached" in modes and "uncached" in modes and modes["cached"] > 0:
            metrics[f"e2e-speedup/{case}"] = _Metric(
                modes["uncached"] / modes["cached"], True
            )
    return metrics


def _hotpath_absolute_metrics(entries: list[dict[str, Any]]) -> dict[str, _Metric]:
    return {
        entry["name"]: _Metric(entry["decisions_per_s"], True)
        for entry in entries
    }


def _e2e_ratio_metrics(entries: list[dict[str, Any]]) -> dict[str, _Metric]:
    """Machine-portable ratios derived from an e2e engine-bench file.

    Only the two *live* engines enter the ratio: ``wall_object /
    wall_flat`` is measured in one process on one machine and travels.
    Frozen ``before`` rows are documentation (walls from another commit
    on another machine) and deriving a ratio against a live wall would
    make the CI gate machine-dependent.
    """
    cases: dict[str, dict[str, float]] = {}
    for entry in entries:
        parts = entry["name"].split("/")
        if parts[0] == "e2e" and len(parts) == 4:
            cases.setdefault(f"{parts[1]}/{parts[2]}", {})[parts[3]] = entry[
                "wall_s"
            ]
    metrics: dict[str, _Metric] = {}
    for case, engines in sorted(cases.items()):
        if "object" in engines and "flat" in engines and engines["flat"] > 0:
            metrics[f"engine-speedup/{case}"] = _Metric(
                engines["object"] / engines["flat"], True
            )
    return metrics


def _e2e_absolute_metrics(entries: list[dict[str, Any]]) -> dict[str, _Metric]:
    return {
        entry["name"]: _Metric(entry["tasks_per_s"], True)
        for entry in entries
        if entry["engine"] != "before"  # frozen rows never regress or improve
    }


def _service_by_name(entries: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    return {entry["name"]: entry for entry in entries}


def _service_ratio_metrics(entries: list[dict[str, Any]]) -> dict[str, _Metric]:
    by_name = _service_by_name(entries)
    metrics: dict[str, _Metric] = {}
    cold = by_name.get("service/cold")
    warm = by_name.get("service/warm")
    if cold and warm and cold["jobs_per_s"] > 0:
        metrics["service/warm-speedup"] = _Metric(
            warm["jobs_per_s"] / cold["jobs_per_s"], True
        )
        metrics["service/warm-hit-rate"] = _Metric(warm["cache_hit_rate"], True)
    for phase, entry in sorted(by_name.items()):
        if "lost_results" in entry:
            metrics[f"{phase}/lost-results"] = _Metric(
                float(entry["lost_results"]), False
            )
        if "quarantined" in entry:
            metrics[f"{phase}/quarantined"] = _Metric(
                float(entry["quarantined"]), False
            )
    return metrics


def _service_absolute_metrics(entries: list[dict[str, Any]]) -> dict[str, _Metric]:
    metrics: dict[str, _Metric] = {}
    for entry in entries:
        metrics[f"{entry['name']}/jobs_per_s"] = _Metric(entry["jobs_per_s"], True)
        metrics[f"{entry['name']}/p99_ms"] = _Metric(entry["p99_ms"], False)
    return metrics


def derive_metrics(
    kind: str, entries: list[dict[str, Any]], *, absolute: bool = False
) -> dict[str, Any]:
    """Comparable metrics for a bench file; see the module docstring."""
    if kind == "hotpath":
        fn = _hotpath_absolute_metrics if absolute else _hotpath_ratio_metrics
    elif kind == "e2e":
        fn = _e2e_absolute_metrics if absolute else _e2e_ratio_metrics
    elif kind == "service":
        fn = _service_absolute_metrics if absolute else _service_ratio_metrics
    else:
        raise BenchmarkError(f"unknown bench kind {kind!r}")
    return fn(entries)


# ---------------------------------------------------------------------------
# Comparison


@dataclass(frozen=True)
class MetricRow:
    """One compared metric: baseline vs current and the verdict."""

    name: str
    baseline: float
    current: float
    higher_is_better: bool
    #: "ok" | "regression" | "improvement"
    status: str

    @property
    def change(self) -> float:
        """Signed relative change of ``current`` vs ``baseline``."""
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return self.current / self.baseline - 1.0


@dataclass
class CompareReport:
    """Outcome of a noise-aware baseline-vs-current bench comparison."""

    kind: str
    mode: str  # "ratio" | "absolute"
    tolerance: float
    baseline_path: str
    current_path: str
    rows: list[MetricRow] = field(default_factory=list)
    #: Metrics present in only one file (never a failure: bench shape may
    #: legitimately grow; it is surfaced so silent coverage loss is visible).
    only_baseline: list[str] = field(default_factory=list)
    only_current: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricRow]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "mode": self.mode,
            "tolerance": self.tolerance,
            "baseline": self.baseline_path,
            "current": self.current_path,
            "ok": self.ok,
            "rows": [
                {
                    "name": r.name,
                    "baseline": r.baseline,
                    "current": r.current,
                    "higher_is_better": r.higher_is_better,
                    "status": r.status,
                }
                for r in self.rows
            ],
            "only_baseline": list(self.only_baseline),
            "only_current": list(self.only_current),
        }

    def render(self) -> str:
        lines = [
            f"bench compare [{self.kind}, {self.mode} mode, "
            f"tolerance {self.tolerance:.0%}]",
            f"  baseline: {self.baseline_path}",
            f"  current:  {self.current_path}",
        ]
        arrow = {"regression": "!!", "improvement": "++", "ok": "  "}
        for row in self.rows:
            change = row.change
            pct = "n/a" if change == float("inf") else f"{change:+.1%}"
            lines.append(
                f"  {arrow[row.status]} {row.name:<40s} "
                f"{row.baseline:>12.4g} -> {row.current:>12.4g}  ({pct})"
            )
        for name in self.only_baseline:
            lines.append(f"  ?? {name:<40s} missing from current run")
        for name in self.only_current:
            lines.append(f"  ++ {name:<40s} new in current run")
        n_reg = len(self.regressions)
        lines.append(
            "PASS: no regressions" if self.ok
            else f"FAIL: {n_reg} regression{'s' if n_reg != 1 else ''}"
        )
        return "\n".join(lines)


def _judge(base: _Metric, cur: _Metric, tolerance: float) -> str:
    """Verdict for one metric under a relative tolerance band.

    Lower-is-better metrics with a zero baseline (e.g. ``lost_results``)
    have no meaningful relative band: any nonzero current value is a
    regression outright.
    """
    if base.higher_is_better:
        if cur.value < base.value * (1.0 - tolerance):
            return "regression"
        if cur.value > base.value * (1.0 + tolerance):
            return "improvement"
        return "ok"
    if base.value == 0.0:
        return "ok" if cur.value == 0.0 else "regression"
    if cur.value > base.value * (1.0 + tolerance):
        return "regression"
    if cur.value < base.value * (1.0 - tolerance):
        return "improvement"
    return "ok"


def compare_bench_files(
    baseline: str | Path,
    current: str | Path,
    *,
    tolerance: float | None = None,
    absolute: bool = False,
) -> CompareReport:
    """Compare two bench files of the same kind; never raises on a mere
    regression (inspect ``report.ok``) but does raise
    :class:`BenchmarkError` on malformed input or mismatched kinds."""
    kind_b, entries_b = load_bench_file(baseline)
    kind_c, entries_c = load_bench_file(current)
    if kind_b != kind_c:
        raise BenchmarkError(
            f"cannot compare {kind_b} bench {baseline} against "
            f"{kind_c} bench {current}"
        )
    mode = "absolute" if absolute else "ratio"
    if tolerance is None:
        tolerance = DEFAULT_TOLERANCE[(mode, False)]
    if tolerance < 0:
        raise BenchmarkError(f"negative tolerance {tolerance!r}")

    base = derive_metrics(kind_b, entries_b, absolute=absolute)
    cur = derive_metrics(kind_c, entries_c, absolute=absolute)
    report = CompareReport(
        kind=kind_b,
        mode=mode,
        tolerance=tolerance,
        baseline_path=str(baseline),
        current_path=str(current),
    )
    for name in sorted(base):
        if name not in cur:
            report.only_baseline.append(name)
            continue
        status = _judge(base[name], cur[name], tolerance)
        report.rows.append(
            MetricRow(
                name=name,
                baseline=base[name].value,
                current=cur[name].value,
                higher_is_better=base[name].higher_is_better,
                status=status,
            )
        )
    report.only_current = sorted(set(cur) - set(base))
    return report


# ---------------------------------------------------------------------------
# History


def append_history(
    path: str | Path,
    kind: str,
    entries: list[dict[str, Any]],
    *,
    headline: dict[str, Any] | None = None,
    written_at: float | None = None,
) -> dict[str, Any]:
    """Append one run record to the append-only JSONL bench history.

    The record carries the full entry list plus the derived ratio metrics
    (so trend queries never need to re-derive them) and a wall-clock
    timestamp.  Returns the record written.
    """
    record = {
        "schema": 1,
        "kind": kind,
        "written_at": float(written_at if written_at is not None else time.time()),
        "metrics": {
            name: metric.value
            for name, metric in derive_metrics(kind, entries).items()
        },
        "entries": entries,
    }
    if headline:
        record["headline"] = headline
    line = json.dumps(record, sort_keys=True)
    with open(path, "a") as fh:
        fh.write(line + "\n")
    return record


def load_history(path: str | Path) -> list[dict[str, Any]]:
    """Load all records from a JSONL bench history (oldest first)."""
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise BenchmarkError(f"cannot read bench history {path}: {exc}") from exc
    records = []
    for i, line in enumerate(raw.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BenchmarkError(
                f"{path} line {i + 1} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict) or "kind" not in record:
            raise BenchmarkError(f"{path} line {i + 1}: malformed record")
        records.append(record)
    return records
