"""Benchmark harnesses measuring the simulator itself (DESIGN.md §9).

Unlike :mod:`repro.experiments` (which measures *simulated* makespans),
this package measures *host wall-clock* performance of the reproduction's
hot paths — scheduler decisions per second and end-to-end simulation
throughput — and emits the machine-readable ``BENCH_hotpath.json`` the
perf trajectory is tracked with.
"""

from .hotpath import (
    BENCH_SCHEMA_KEYS,
    bench_decision_rate,
    bench_end_to_end,
    build_bench_program,
    check_cache_equivalence,
    headline_speedup,
    run_hotpath_bench,
    validate_entries,
    write_entries,
)

__all__ = [
    "BENCH_SCHEMA_KEYS",
    "bench_decision_rate",
    "bench_end_to_end",
    "build_bench_program",
    "check_cache_equivalence",
    "headline_speedup",
    "run_hotpath_bench",
    "validate_entries",
    "write_entries",
]
