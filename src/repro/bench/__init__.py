"""Benchmark harnesses measuring the simulator itself (DESIGN.md §9).

Unlike :mod:`repro.experiments` (which measures *simulated* makespans),
this package measures *host wall-clock* performance of the reproduction's
hot paths — scheduler decisions per second and end-to-end simulation
throughput — and emits the machine-readable ``BENCH_hotpath.json`` the
perf trajectory is tracked with.
"""

from .e2e import (
    BEFORE_COMMIT,
    BEFORE_WALLS,
    E2E_SCHEMA_KEYS,
    bench_engine_e2e,
    check_engine_equivalence,
    headline_e2e_speedup,
    run_e2e_bench,
    validate_e2e_entries,
    write_e2e_entries,
)
from .history import (
    CompareReport,
    MetricRow,
    append_history,
    compare_bench_files,
    derive_metrics,
    load_bench_file,
    load_history,
)
from .hotpath import (
    BENCH_SCHEMA_KEYS,
    bench_decision_rate,
    bench_end_to_end,
    build_bench_program,
    check_cache_equivalence,
    headline_speedup,
    run_hotpath_bench,
    validate_entries,
    write_entries,
)

__all__ = [
    "BEFORE_COMMIT",
    "BEFORE_WALLS",
    "BENCH_SCHEMA_KEYS",
    "CompareReport",
    "E2E_SCHEMA_KEYS",
    "bench_engine_e2e",
    "check_engine_equivalence",
    "headline_e2e_speedup",
    "run_e2e_bench",
    "validate_e2e_entries",
    "write_e2e_entries",
    "MetricRow",
    "append_history",
    "bench_decision_rate",
    "bench_end_to_end",
    "build_bench_program",
    "check_cache_equivalence",
    "compare_bench_files",
    "derive_metrics",
    "headline_speedup",
    "load_bench_file",
    "load_history",
    "run_hotpath_bench",
    "validate_entries",
    "write_entries",
]
