"""ASCII rendering of Figure 1 — bar chart with the paper's clipped axis.

The published figure plots speedup bars in a 0.7-1.3 band and annotates
values that fall outside it (e.g. NStream's 1.75, Jacobi-DFIFO's 0.42).
:func:`render_figure` mimics that: one group of bars per application,
values outside the axis clipped and printed next to the bar.
"""

from __future__ import annotations

from .report import SpeedupTable

#: Paper axis band.
AXIS_LO = 0.7
AXIS_HI = 1.3

_BAR_CHARS = {0: "#", 1: "@", 2: "%", 3: "+"}


def render_figure(
    table: SpeedupTable,
    width: int = 24,
    lo: float = AXIS_LO,
    hi: float = AXIS_HI,
) -> str:
    """Render the speedup table as horizontal bars, paper style.

    One row per (application, policy); bar length is linear in the speedup
    clipped to ``[lo, hi]``; out-of-band values get a ``*`` marker and the
    numeric annotation the poster uses.  The baseline (1.0) column is
    marked with ``|``.
    """
    lines = []
    name_w = max(
        [len(a) for a in table.apps] + [len(p) for p in table.policies] + [7]
    )
    base_col = int(round((1.0 - lo) / (hi - lo) * width))
    header = (
        " " * (name_w + 10)
        + f"{lo:.1f}"
        + " " * (base_col - 3)
        + "1.0"
        + " " * (width - base_col - 3)
        + f"{hi:.1f}"
    )
    lines.append(header)
    for app in table.apps:
        lines.append(f"{app}:")
        for i, policy in enumerate(table.policies):
            cell = table.cells.get((app, policy))
            if cell is None:
                continue
            lines.append(_bar_line(policy, cell.speedup, i, name_w, width,
                                   lo, hi, base_col))
        lines.append("")
    # Geomean group.
    lines.append("geomean:")
    for i, policy in enumerate(table.policies):
        try:
            gm = table.geomean(policy)
        except Exception:
            continue
        lines.append(_bar_line(policy, gm, i, name_w, width, lo, hi, base_col))
    return "\n".join(lines)


def _bar_line(
    policy: str, value: float, style: int, name_w: int, width: int,
    lo: float, hi: float, base_col: int,
) -> str:
    clipped = min(max(value, lo), hi)
    n = int(round((clipped - lo) / (hi - lo) * width))
    ch = _BAR_CHARS.get(style % len(_BAR_CHARS), "#")
    bar = list(" " * width)
    for j in range(n):
        bar[j] = ch
    if base_col < width:
        if bar[base_col] == " ":
            bar[base_col] = "|"
    marker = " "
    annotation = f" {value:5.2f}"
    if value < lo or value > hi:
        marker = "*"  # clipped, value annotated (as in the poster)
    return f"  {policy:<{name_w}} {marker} [{''.join(bar)}]{annotation}"
