"""Run statistics, speedup tables and trace export."""

from .analysis import (
    ScheduleEfficiency,
    idle_gaps_per_socket,
    node_pressure,
    phase_profile,
    schedule_report,
    schedule_efficiency,
    utilization_timeline,
)
from .figure import render_figure
from .report import SpeedupCell, SpeedupTable, geometric_mean
from .resilience import ResilienceReport, resilience_report
from .trace import gantt_ascii, to_rows, write_csv, write_json

__all__ = [
    "ResilienceReport",
    "ScheduleEfficiency",
    "SpeedupCell",
    "SpeedupTable",
    "gantt_ascii",
    "geometric_mean",
    "idle_gaps_per_socket",
    "node_pressure",
    "phase_profile",
    "render_figure",
    "resilience_report",
    "schedule_report",
    "schedule_efficiency",
    "to_rows",
    "utilization_timeline",
    "write_csv",
    "write_json",
]
