"""Post-mortem analysis of a simulated schedule.

Answers the questions a scheduling researcher asks after a run:

* **Utilisation timeline** — how many cores were busy at each instant;
* **Schedule efficiency** — busy time vs (makespan x cores), and the gap
  to the two lower bounds (critical path, total-work/cores);
* **Per-socket pressure** — traffic each memory node served vs its share;
* **Phase profile** — per-task-name-prefix aggregate times (init vs sweep
  vs reduce...), which is how imbalance hides inside "balanced" runs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..graph.analysis import critical_path_weight
from ..runtime.program import TaskProgram
from ..runtime.result import SimulationResult


def utilization_timeline(
    result: SimulationResult, n_points: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """(times, busy core counts) sampled at ``n_points`` instants."""
    if not result.records or result.makespan <= 0:
        return np.zeros(0), np.zeros(0)
    times = np.linspace(0.0, result.makespan, n_points)
    starts = np.array([r.start for r in result.records])
    finishes = np.array([r.finish for r in result.records])
    busy = (
        (starts[None, :] <= times[:, None]) & (finishes[None, :] > times[:, None])
    ).sum(axis=1)
    return times, busy.astype(np.int64)


@dataclass(frozen=True)
class ScheduleEfficiency:
    """How close the schedule is to its lower bounds."""

    makespan: float
    core_utilization: float  # busy / (makespan * cores)
    critical_path_bound: float  # cp / makespan  (1.0 = cp-limited)
    throughput_bound: float  # (work / cores) / makespan

    @property
    def dominant_limit(self) -> str:
        return (
            "critical-path"
            if self.critical_path_bound >= self.throughput_bound
            else "throughput"
        )


def schedule_efficiency(
    program: TaskProgram, result: SimulationResult, n_cores: int
) -> ScheduleEfficiency:
    """Compare the makespan against the classic two lower bounds.

    Bounds use pure compute work (memory time depends on placement, which
    is the quantity under study), so they are loose but placement-free.
    """
    busy = float(result.busy_time_per_socket.sum())
    cp = critical_path_weight(program.tdg)
    work = program.total_work()
    makespan = result.makespan or 1e-12
    return ScheduleEfficiency(
        makespan=result.makespan,
        core_utilization=busy / (makespan * n_cores),
        critical_path_bound=cp / makespan,
        throughput_bound=(work / n_cores) / makespan,
    )


def node_pressure(result: SimulationResult) -> np.ndarray:
    """Each node's share of total served traffic (sums to 1)."""
    served = result.bytes_by_pair.sum(axis=0)
    total = served.sum()
    if total == 0:
        return np.zeros_like(served)
    return served / total


def phase_profile(result: SimulationResult) -> dict[str, dict[str, float]]:
    """Aggregate per task-name prefix (text before ``(`` / digits).

    Returns ``{prefix: {"count", "total_time", "mean_time", "max_time"}}``.
    """
    groups: dict[str, list[float]] = defaultdict(list)
    for rec in result.records:
        prefix = rec.name.split("(")[0].rstrip("0123456789_")
        groups[prefix].append(rec.duration)
    out = {}
    for prefix, durations in sorted(groups.items()):
        arr = np.asarray(durations)
        out[prefix] = {
            "count": float(len(arr)),
            "total_time": float(arr.sum()),
            "mean_time": float(arr.mean()),
            "max_time": float(arr.max()),
        }
    return out


def idle_gaps_per_socket(
    result: SimulationResult, n_sockets: int, cores_per_socket: int
) -> np.ndarray:
    """Idle core-time per socket = capacity - busy (absolute units)."""
    capacity = result.makespan * cores_per_socket
    return np.maximum(0.0, capacity - result.busy_time_per_socket)


def schedule_report(program: TaskProgram, result: SimulationResult,
           topology) -> str:
    """Human-readable one-screen schedule report.

    When the run was instrumented (``result.metrics`` holds a registry
    snapshot, see :mod:`repro.observability`), the remote-byte ratio and
    per-socket idle times are read from the registry's gauges; otherwise
    they are recomputed from the result's aggregates — same numbers,
    different provenance.
    """
    eff = schedule_efficiency(program, result, topology.n_cores)
    pressure = node_pressure(result)
    gauges = (result.metrics or {}).get("gauges", {})

    def _gauge(name: str) -> float | None:
        payload = gauges.get(name)
        return None if payload is None else float(payload["value"])

    local = _gauge("bytes.local")
    remote = _gauge("bytes.remote")
    if local is None or remote is None:
        local, remote = float(result.local_bytes), float(result.remote_bytes)
        source = "result"
    else:
        source = "registry"
    total_bytes = local + remote
    remote_ratio = remote / total_bytes if total_bytes else 0.0

    idle = [
        _gauge(f"socket.idle.s{s}") for s in range(topology.n_sockets)
    ]
    if any(v is None for v in idle):
        idle = idle_gaps_per_socket(
            result, topology.n_sockets, topology.cores_per_socket
        ).tolist()

    lines = [
        result.summary(),
        f"core utilization    {eff.core_utilization:6.1%}",
        f"critical-path bound {eff.critical_path_bound:6.1%}  "
        f"throughput bound {eff.throughput_bound:6.1%}  "
        f"(limit: {eff.dominant_limit})",
        f"remote-byte ratio   {remote_ratio:6.1%}  "
        f"({remote:.3g} of {total_bytes:.3g} bytes, {source})",
        "idle time / socket  "
        + " ".join(f"{v:8.2f}" for v in idle),
        "node traffic share  "
        + " ".join(f"{p:5.1%}" for p in pressure),
    ]
    profile = phase_profile(result)
    lines.append("phases:")
    for prefix, stats in profile.items():
        lines.append(
            f"  {prefix:<12s} n={int(stats['count']):5d} "
            f"total={stats['total_time']:9.2f} mean={stats['mean_time']:7.4f}"
        )
    return "\n".join(lines)
