"""Resilience report: what fault injection cost a run (DESIGN.md §7).

Quantifies recovery overhead from one faulted
:class:`~repro.runtime.result.SimulationResult`, optionally against a
fault-free run of the same (program, policy, machine, seed):

* **re-executions** — crashed attempts that had to be retried;
* **wasted work** — core-time burned by attempts that never completed;
* **degradation factor** — faulted / fault-free makespan (≥ 1 when faults
  actually hurt; the fleet-level SLO number for resilience experiments).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..errors import ExperimentError
from ..runtime.result import SimulationResult


@dataclass(frozen=True)
class ResilienceReport:
    """Recovery-cost summary of one (possibly faulted) run."""

    program_name: str
    scheduler_name: str
    completed_tasks: int
    reexecutions: int
    crash_causes: dict[str, int]
    wasted_work: float
    busy_work: float
    cores_failed: int
    faults_injected: int
    makespan: float
    fault_free_makespan: float | None = None

    @property
    def degradation_factor(self) -> float | None:
        """Faulted / fault-free makespan; None without a baseline."""
        if self.fault_free_makespan is None or self.fault_free_makespan <= 0:
            return None
        return self.makespan / self.fault_free_makespan

    @property
    def wasted_fraction(self) -> float:
        """Share of all core-busy time burned by crashed attempts."""
        return self.wasted_work / self.busy_work if self.busy_work > 0 else 0.0

    def render(self) -> str:
        lines = [
            f"resilience report — {self.program_name} / {self.scheduler_name}",
            f"  tasks completed    {self.completed_tasks}",
            f"  faults injected    {self.faults_injected}",
            f"  cores failed       {self.cores_failed}",
            f"  re-executions      {self.reexecutions}"
            + (
                " ("
                + ", ".join(
                    f"{cause}: {n}" for cause, n in sorted(self.crash_causes.items())
                )
                + ")"
                if self.crash_causes
                else ""
            ),
            f"  wasted work        {self.wasted_work:.4g} "
            f"({self.wasted_fraction:.1%} of busy time)",
            f"  makespan           {self.makespan:.4g}",
        ]
        if self.fault_free_makespan is not None:
            lines.append(
                f"  fault-free         {self.fault_free_makespan:.4g}"
            )
            lines.append(
                f"  degradation        {self.degradation_factor:.3f}x"
            )
        return "\n".join(lines)


def resilience_report(
    result: SimulationResult,
    fault_free: SimulationResult | None = None,
) -> ResilienceReport:
    """Build a :class:`ResilienceReport`; ``fault_free`` enables the
    degradation factor and must describe the same program and policy."""
    if fault_free is not None:
        if (
            fault_free.program_name != result.program_name
            or fault_free.scheduler_name != result.scheduler_name
        ):
            raise ExperimentError(
                "fault-free baseline must come from the same program and "
                f"policy (got {fault_free.program_name!r}/"
                f"{fault_free.scheduler_name!r} vs {result.program_name!r}/"
                f"{result.scheduler_name!r})"
            )
        if fault_free.reexecutions or fault_free.cores_failed:
            raise ExperimentError(
                "the supplied fault-free baseline itself saw faults"
            )
    causes = Counter(rec.outcome for rec in result.crashed_records)
    return ResilienceReport(
        program_name=result.program_name,
        scheduler_name=result.scheduler_name,
        completed_tasks=len(result.records),
        reexecutions=result.reexecutions,
        crash_causes=dict(causes),
        wasted_work=result.wasted_work,
        busy_work=float(result.busy_time_per_socket.sum()),
        cores_failed=result.cores_failed,
        faults_injected=result.faults_injected,
        makespan=result.makespan,
        fault_free_makespan=(
            fault_free.makespan if fault_free is not None else None
        ),
    )
