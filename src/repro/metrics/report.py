"""Speedup tables and the geometric mean — Figure 1's arithmetic."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ExperimentError


def geometric_mean(values) -> float:
    """Geometric mean of positive values (the paper's aggregate metric)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ExperimentError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ExperimentError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


@dataclass
class SpeedupCell:
    """One (application, policy) measurement aggregated over seeds."""

    speedup: float
    speedup_std: float
    makespan_mean: float
    remote_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.speedup:.2f}±{self.speedup_std:.2f}"


@dataclass
class SpeedupTable:
    """Apps x policies speedups, normalised to a baseline policy."""

    baseline: str
    policies: list[str]
    apps: list[str] = field(default_factory=list)
    cells: dict[tuple[str, str], SpeedupCell] = field(default_factory=dict)

    def add(self, app: str, policy: str, cell: SpeedupCell) -> None:
        if app not in self.apps:
            self.apps.append(app)
        self.cells[(app, policy)] = cell

    def speedup(self, app: str, policy: str) -> float:
        try:
            return self.cells[(app, policy)].speedup
        except KeyError:
            raise ExperimentError(f"no measurement for ({app}, {policy})") from None

    def geomean(self, policy: str) -> float:
        """Geometric-mean speedup of a policy across all apps."""
        return geometric_mean(self.speedup(app, policy) for app in self.apps)

    def rows(self) -> list[list[str]]:
        """Table rows (apps + geomean) for text rendering."""
        out = []
        for app in self.apps:
            row = [app]
            for pol in self.policies:
                cell = self.cells.get((app, pol))
                row.append(f"{cell.speedup:.2f}" if cell else "-")
            out.append(row)
        gm_row = ["geomean"]
        for pol in self.policies:
            try:
                gm_row.append(f"{self.geomean(pol):.2f}")
            except ExperimentError:
                gm_row.append("-")
        out.append(gm_row)
        return out

    def render(self, title: str = "") -> str:
        """Fixed-width text table (the shape of Figure 1)."""
        header = ["application"] + list(self.policies)
        rows = [header] + self.rows()
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = []
        if title:
            lines.append(title)
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
            )
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)
