"""Trace export: per-task execution records as CSV/JSON rows.

The real system would produce Paraver traces; we export the same content
(task, core, socket, start, end) in portable formats for offline analysis.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..runtime.result import SimulationResult

_FIELDS = ("tid", "name", "socket", "core", "start", "finish",
           "local_bytes", "remote_bytes")


def to_rows(result: SimulationResult) -> list[dict]:
    """Records as plain dicts in a **total** deterministic order.

    Sort key is ``(start, tid, attempt, core)``: start time first (the
    natural reading order of a timeline), then task id, then attempt and
    core so that re-executed attempts of the same task — which share a
    tid and may share a start time — still order identically on every
    platform.  No tie is left to the input order.
    """
    return [
        {f: getattr(r, f) for f in _FIELDS}
        for r in sorted(
            result.records,
            key=lambda r: (r.start, r.tid, r.attempt, r.core),
        )
    ]


def write_csv(result: SimulationResult, path: str | Path) -> None:
    """Write the task trace as CSV.

    Uses :class:`csv.DictWriter` with the default (minimal-quoting)
    dialect, so task names containing commas, quotes or newlines are
    quoted/escaped per RFC 4180 and round-trip through ``csv.DictReader``.
    """
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        writer.writerows(to_rows(result))


def write_json(result: SimulationResult, path: str | Path) -> None:
    """Write the full result (trace + aggregates) as JSON."""
    doc = {
        "program": result.program_name,
        "scheduler": result.scheduler_name,
        "machine": result.machine_name,
        "makespan": result.makespan,
        "remote_fraction": result.remote_fraction,
        "steals": result.steals,
        "seed": result.seed,
        "tasks": to_rows(result),
        "bytes_by_pair": result.bytes_by_pair.tolist(),
        "busy_time_per_socket": result.busy_time_per_socket.tolist(),
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def gantt_ascii(result: SimulationResult, width: int = 78, max_cores: int = 64) -> str:
    """Tiny ASCII Gantt chart (one row per core) for quick inspection."""
    if not result.records:
        return "(empty trace)"
    makespan = result.makespan or 1.0
    cores = sorted({r.core for r in result.records})[:max_cores]
    lines = []
    for core in cores:
        row = [" "] * width
        for rec in result.records:
            if rec.core != core:
                continue
            lo = int(rec.start / makespan * (width - 1))
            hi = max(lo + 1, int(rec.finish / makespan * (width - 1)))
            for i in range(lo, min(hi, width)):
                row[i] = "#"
        lines.append(f"core {core:3d} |{''.join(row)}|")
    return "\n".join(lines)
