"""Trivial partitioners: random and block/cyclic — ablation floors.

Any serious partitioner must beat these; the ablation benchmark
(`benchmarks/test_ablation_partitioner.py`) reports them as the floor.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .interface import (
    Partitioner,
    PartitionResult,
    TargetArchitecture,
)


class RandomPartitioner(Partitioner):
    """Weight-balanced random assignment (shuffle + greedy bin fill)."""

    name = "random"

    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        self._check_k(graph, k)
        capacities = self._capacities(k, target)
        rng = np.random.default_rng(seed)
        n = graph.n_vertices
        parts = np.zeros(n, dtype=np.int64)
        fill = np.zeros(k, dtype=np.float64)
        norm_cap = capacities / capacities.sum()
        for v in rng.permutation(n):
            # Least-filled part relative to its capacity share.
            p = int(np.argmin(fill / norm_cap))
            parts[v] = p
            fill[p] += graph.vwgt[v]
        return PartitionResult(parts=parts, k=k)


class CyclicPartitioner(Partitioner):
    """Round-robin by vertex id — mirrors DFIFO's cyclic placement."""

    name = "cyclic"

    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        self._check_k(graph, k)
        parts = np.arange(graph.n_vertices, dtype=np.int64) % k
        return PartitionResult(parts=parts, k=k)


class BlockPartitioner(Partitioner):
    """Contiguous equal-weight blocks in vertex-id (creation) order.

    Surprisingly strong on TDGs whose creation order follows data layout —
    essentially what an expert programmer's block distribution does.
    """

    name = "block"

    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        self._check_k(graph, k)
        capacities = self._capacities(k, target)
        total = graph.vwgt.sum()
        bounds = np.cumsum(capacities) / capacities.sum() * total
        parts = np.zeros(graph.n_vertices, dtype=np.int64)
        acc = 0.0
        p = 0
        for v in range(graph.n_vertices):
            acc += graph.vwgt[v]
            parts[v] = p
            if acc >= bounds[p] and p < k - 1:
                p += 1
        return PartitionResult(parts=parts, k=k)
