"""Common interface of all graph partitioners.

A partitioner maps each vertex of a :class:`~repro.graph.csr.CSRGraph` to a
part id in ``[0, k)`` subject to a balance constraint on vertex weight.  For
*architecture-aware* partitioners (SCOTCH-style static mapping) the target
is not just ``k`` anonymous parts but ``k`` sockets with a distance matrix;
:class:`TargetArchitecture` carries that.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph

#: Default allowed imbalance: heaviest part may exceed its ideal share by 5 %.
DEFAULT_TOLERANCE = 0.05


@dataclass(frozen=True, eq=False)
class TargetArchitecture:
    """The machine the parts map onto: ``k`` sockets and their distances.

    ``capacity`` allows heterogeneous targets (more cores on one socket);
    the paper's machine is homogeneous so it defaults to uniform.
    """

    distance: np.ndarray
    capacity: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        dist = np.asarray(self.distance, dtype=np.float64)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise PartitionError("architecture distance matrix must be square")
        if not np.allclose(dist, dist.T):
            raise PartitionError("architecture distance matrix must be symmetric")
        object.__setattr__(self, "distance", dist)
        cap = self.capacity
        if cap is None:
            cap = np.ones(dist.shape[0], dtype=np.float64)
        cap = np.asarray(cap, dtype=np.float64)
        if cap.shape != (dist.shape[0],) or np.any(cap <= 0):
            raise PartitionError("capacity must be positive, one entry per part")
        object.__setattr__(self, "capacity", cap)

    @property
    def k(self) -> int:
        return self.distance.shape[0]

    @classmethod
    def from_topology(cls, topology) -> "TargetArchitecture":
        """Build from a :class:`~repro.machine.topology.NumaTopology`."""
        return cls(
            distance=np.asarray(topology.distance, dtype=np.float64),
            capacity=np.full(topology.n_sockets, float(topology.cores_per_socket)),
        )

    @classmethod
    def uniform(cls, k: int) -> "TargetArchitecture":
        """Anonymous k-part target (all parts equidistant)."""
        dist = np.ones((k, k)) * 2.0
        np.fill_diagonal(dist, 1.0)
        return cls(distance=dist)


@dataclass(frozen=True, eq=False)
class PartitionResult:
    """Outcome of a partitioning call."""

    parts: np.ndarray  # shape (n,), int64 in [0, k)
    k: int

    def __post_init__(self) -> None:
        parts = np.asarray(self.parts, dtype=np.int64)
        if len(parts) and (parts.min() < 0 or parts.max() >= self.k):
            raise PartitionError("part ids out of range")
        object.__setattr__(self, "parts", parts)

    def part_weights(self, vwgt: np.ndarray) -> np.ndarray:
        """Total vertex weight per part."""
        return np.bincount(self.parts, weights=vwgt, minlength=self.k)

    def __len__(self) -> int:
        return len(self.parts)


class Partitioner(ABC):
    """Base class: map graph vertices onto ``k`` (possibly weighted) parts."""

    #: short name used by registries/CLI
    name: str = "abstract"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        if tolerance < 0:
            raise PartitionError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = float(tolerance)
        #: Optional phase observer ``observer(kind, **args)`` — called with
        #: ``"coarsen"`` / ``"initial"`` / ``"refine"`` progress payloads
        #: by multilevel partitioners.  ``None`` (the default) skips all
        #: phase bookkeeping; observers must never mutate the graph or
        #: draw randomness (observation must not change the partition).
        self.observer = None

    @abstractmethod
    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        """Partition ``graph`` into ``k`` parts.

        ``target`` optionally supplies socket distances/capacities for
        architecture-aware methods; distance-oblivious methods ignore it
        except for capacities.
        """

    # ------------------------------------------------------------------
    def _check_k(self, graph: CSRGraph, k: int) -> None:
        if k < 1:
            raise PartitionError(f"k must be >= 1, got {k}")

    def _capacities(
        self, k: int, target: TargetArchitecture | None
    ) -> np.ndarray:
        if target is None:
            return np.ones(k, dtype=np.float64)
        if target.k != k:
            raise PartitionError(
                f"target architecture has {target.k} parts, requested {k}"
            )
        return target.capacity
