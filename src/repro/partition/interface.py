"""Common interface of all graph partitioners.

A partitioner maps each vertex of a :class:`~repro.graph.csr.CSRGraph` to a
part id in ``[0, k)`` subject to a balance constraint on vertex weight.  For
*architecture-aware* partitioners (SCOTCH-style static mapping) the target
is not just ``k`` anonymous parts but ``k`` sockets with a distance matrix;
:class:`TargetArchitecture` carries that.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph

#: Default allowed imbalance: heaviest part may exceed its ideal share by 5 %.
DEFAULT_TOLERANCE = 0.05


@dataclass(frozen=True, eq=False)
class TargetArchitecture:
    """The machine the parts map onto: ``k`` sockets and their distances.

    ``capacity`` allows heterogeneous targets (more cores on one socket);
    the paper's machine is homogeneous so it defaults to uniform.
    """

    distance: np.ndarray
    capacity: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        dist = np.asarray(self.distance, dtype=np.float64)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise PartitionError("architecture distance matrix must be square")
        if not np.allclose(dist, dist.T):
            raise PartitionError("architecture distance matrix must be symmetric")
        object.__setattr__(self, "distance", dist)
        cap = self.capacity
        if cap is None:
            cap = np.ones(dist.shape[0], dtype=np.float64)
        cap = np.asarray(cap, dtype=np.float64)
        if cap.shape != (dist.shape[0],) or np.any(cap <= 0):
            raise PartitionError("capacity must be positive, one entry per part")
        object.__setattr__(self, "capacity", cap)

    @property
    def k(self) -> int:
        return self.distance.shape[0]

    @classmethod
    def from_topology(cls, topology) -> "TargetArchitecture":
        """Build from a :class:`~repro.machine.topology.NumaTopology`."""
        return cls(
            distance=np.asarray(topology.distance, dtype=np.float64),
            capacity=np.full(topology.n_sockets, float(topology.cores_per_socket)),
        )

    @classmethod
    def uniform(cls, k: int) -> "TargetArchitecture":
        """Anonymous k-part target (all parts equidistant)."""
        dist = np.ones((k, k)) * 2.0
        np.fill_diagonal(dist, 1.0)
        return cls(distance=dist)


@dataclass(frozen=True, eq=False)
class PartitionResult:
    """Outcome of a partitioning call.

    ``meta`` carries backend-specific provenance (the exact backend uses
    it to say whether optimality was proven or the budget fallback fired);
    it never participates in equality or the validity contract.
    """

    parts: np.ndarray  # shape (n,), int64 in [0, k)
    k: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise PartitionError(f"k must be >= 1, got {self.k}")
        parts = np.asarray(self.parts, dtype=np.int64)
        if len(parts) and (parts.min() < 0 or parts.max() >= self.k):
            raise PartitionError("part ids out of range")
        object.__setattr__(self, "parts", parts)

    def part_weights(self, vwgt: np.ndarray) -> np.ndarray:
        """Total vertex weight per part."""
        return np.bincount(self.parts, weights=vwgt, minlength=self.k)

    def __len__(self) -> int:
        return len(self.parts)


class Partitioner(ABC):
    """Base class: map graph vertices onto ``k`` (possibly weighted) parts."""

    #: short name used by registries/CLI
    name: str = "abstract"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        if tolerance < 0:
            raise PartitionError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = float(tolerance)
        #: Optional phase observer ``observer(kind, **args)`` — called with
        #: ``"coarsen"`` / ``"initial"`` / ``"refine"`` progress payloads
        #: by multilevel partitioners.  ``None`` (the default) skips all
        #: phase bookkeeping; observers must never mutate the graph or
        #: draw randomness (observation must not change the partition).
        self.observer = None

    @abstractmethod
    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        """Partition ``graph`` into ``k`` parts.

        ``target`` optionally supplies socket distances/capacities for
        architecture-aware methods; distance-oblivious methods ignore it
        except for capacities.
        """

    # ------------------------------------------------------------------
    def _check_k(self, graph: CSRGraph, k: int) -> None:
        if k < 1:
            raise PartitionError(f"k must be >= 1, got {k}")
        if k > graph.n_vertices:
            # More parts than vertices: there is no partition with every
            # part id meaningfully populated, and backends used to emit
            # empty parts in mutually inconsistent ways.  Callers that can
            # legitimately see tiny graphs (small RGP windows on big
            # machines) go through :func:`partition_onto`.
            raise PartitionError(
                f"cannot partition {graph.n_vertices} vertices into {k} "
                f"parts; use partition_onto() for graceful spreading"
            )

    def _capacities(
        self, k: int, target: TargetArchitecture | None
    ) -> np.ndarray:
        if target is None:
            return np.ones(k, dtype=np.float64)
        if target.k != k:
            raise PartitionError(
                f"target architecture has {target.k} parts, requested {k}"
            )
        return target.capacity


def partition_onto(
    partitioner: Partitioner,
    graph: CSRGraph,
    k: int,
    *,
    target: TargetArchitecture | None = None,
    seed: int = 0,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` parts, tolerating ``k > n_vertices``.

    Backends reject more parts than vertices (``_check_k``), but RGP
    windows can legitimately be smaller than the machine (a 5-task first
    window on an 8-socket box).  With fewer vertices than parts the
    balance constraint ``(1 + tol) * total / k`` already forces (near-)
    singleton parts, so the backend has nothing to optimise: this helper
    spreads the vertices injectively — heaviest vertex onto the roomiest
    part (ties to the lowest id) — and returns a full-``k`` result with
    the remaining parts empty.  Graphs with ``n >= k`` go straight to the
    backend.
    """
    n = graph.n_vertices
    if k <= n:
        return partitioner.partition(graph, k, target=target, seed=seed)
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if target is not None and target.k != k:
        raise PartitionError(
            f"target architecture has {target.k} parts, requested {k}"
        )
    capacity = target.capacity if target is not None else np.ones(k)
    order = np.argsort(-graph.vwgt.astype(np.float64), kind="stable")
    roomiest = np.argsort(-np.asarray(capacity, dtype=np.float64),
                          kind="stable")[:n]
    parts = np.zeros(n, dtype=np.int64)
    parts[order] = roomiest
    return PartitionResult(parts=parts, k=k, meta={"spread": True})
