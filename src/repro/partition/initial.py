"""Initial bisection of a (coarse) graph.

At the bottom of the multilevel V-cycle the graph is small; we bisect it
with *greedy graph growing* (GGG): grow part 0 from a seed vertex, always
absorbing the frontier vertex whose move is cheapest (max gain), until part
0 reaches its target weight.  Several random seeds are tried and the best
cut kept.  A weight-balanced random bisection serves as baseline and as a
fallback for degenerate graphs.

GGG has a blind spot on disconnected graphs: it absorbs whole components
one at a time but stops the instant part 0 reaches its target weight —
mid-component — cutting through the final component even when a zero-cut
packing of whole components exists within tolerance.  TDG windows hit this
constantly (independent iteration chains linked only by zero-byte ordering
edges), so :func:`component_packing_bisection` packs the components of the
*positive-weight* subgraph onto the two sides directly; the multilevel
driver offers it as a second initial candidate next to GGG.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph


def random_bisection(
    graph: CSRGraph, f0: float, rng: np.random.Generator
) -> np.ndarray:
    """Shuffle vertices and fill part 0 up to its target weight."""
    _check_fraction(f0)
    n = graph.n_vertices
    parts = np.ones(n, dtype=np.int64)
    target0 = f0 * graph.vwgt.sum()
    w0 = 0.0
    for v in rng.permutation(n):
        if w0 >= target0:
            break
        parts[v] = 0
        w0 += graph.vwgt[v]
    return parts


def greedy_graph_growing(
    graph: CSRGraph,
    f0: float,
    rng: np.random.Generator,
    n_trials: int = 4,
) -> np.ndarray:
    """Best-of-``n_trials`` greedy graph growing bisection."""
    _check_fraction(f0)
    n = graph.n_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    best_parts: np.ndarray | None = None
    best_cut = np.inf
    for _ in range(max(1, n_trials)):
        parts = _ggg_once(graph, f0, rng)
        cut = _quick_cut(graph, parts)
        if cut < best_cut:
            best_cut, best_parts = cut, parts
    assert best_parts is not None
    return best_parts


def _ggg_once(graph: CSRGraph, f0: float, rng: np.random.Generator) -> np.ndarray:
    n = graph.n_vertices
    parts = np.ones(n, dtype=np.int64)
    total = graph.vwgt.sum()
    target0 = f0 * total
    w0 = 0.0

    in_part0 = np.zeros(n, dtype=bool)
    # gain of moving v into part 0 = (edges to part 0) - (edges to part 1);
    # stored lazily in a heap keyed by -gain.
    gain = np.zeros(n, dtype=np.float64)
    for v in range(n):
        gain[v] = -graph.neighbor_weights(v).sum()
    stamp = np.zeros(n, dtype=np.int64)
    heap: list[tuple[float, int, int]] = []

    def push(v: int) -> None:
        heapq.heappush(heap, (-gain[v], int(stamp[v]), int(v)))

    while w0 < target0:
        # (Re)seed when the frontier is exhausted — disconnected graphs.
        if not heap:
            remaining = np.flatnonzero(~in_part0)
            if len(remaining) == 0:
                break
            seed = int(rng.choice(remaining))
            stamp[seed] += 1
            push(seed)
        neg_g, st, v = heapq.heappop(heap)
        if in_part0[v] or st != stamp[v]:
            continue  # stale entry
        in_part0[v] = True
        parts[v] = 0
        w0 += graph.vwgt[v]
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            if not in_part0[u]:
                gain[u] += 2.0 * w  # u gained a part-0 neighbour
                stamp[u] += 1
                push(int(u))
    return parts


def positive_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex, ignoring zero-weight edges.

    Zero-weight edges (pure ordering dependences) are free to cut, so for
    packing purposes two vertices belong together only if a positive-weight
    path connects them.
    """
    n = graph.n_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    src = np.repeat(np.arange(n), np.diff(graph.xadj))
    for u, v, w in zip(src, graph.adjncy, graph.adjwgt):
        if u < v and w > 0.0:
            a, b = find(int(u)), find(int(v))
            if a != b:
                parent[a] = b
    roots = np.fromiter((find(v) for v in range(n)), dtype=np.int64, count=n)
    _, labels = np.unique(roots, return_inverse=True)
    return labels


def component_packing_bisection(
    graph: CSRGraph, f0: float
) -> np.ndarray | None:
    """Bisect by packing whole positive-weight components onto two sides.

    Returns ``None`` when the positive-weight subgraph is connected (packing
    degenerates to all-or-nothing).  Otherwise packs components greedily by
    descending weight onto the side with more remaining headroom, then runs
    a deterministic local search (single-component moves, then pair swaps)
    minimising the deviation of side 0 from its target weight.  The cut of
    the result only crosses zero-weight edges.
    """
    _check_fraction(f0)
    n = graph.n_vertices
    if n == 0:
        return None
    labels = positive_components(graph)
    ncomp = int(labels.max()) + 1
    if ncomp < 2:
        return None
    cw = np.bincount(labels, weights=graph.vwgt, minlength=ncomp)
    target0 = f0 * float(graph.vwgt.sum())

    side = np.ones(ncomp, dtype=np.int64)
    w0 = 0.0
    for c in np.argsort(-cw, kind="stable"):
        if w0 + cw[c] <= target0 or w0 < target0 - (w0 + cw[c] - target0):
            side[c] = 0
            w0 += cw[c]

    def dev(w: float) -> float:
        return abs(w - target0)

    improved = True
    while improved:
        improved = False
        # Single-component moves.
        for c in range(ncomp):
            delta = -cw[c] if side[c] == 0 else cw[c]
            if dev(w0 + delta) < dev(w0) - 1e-12:
                side[c] = 1 - side[c]
                w0 += delta
                improved = True
        # Pair swaps across sides.
        zeros = np.flatnonzero(side == 0)
        ones = np.flatnonzero(side == 1)
        for a in zeros:
            for b in ones:
                delta = cw[b] - cw[a]
                if dev(w0 + delta) < dev(w0) - 1e-12:
                    side[a], side[b] = 1, 0
                    w0 += delta
                    improved = True
                    break
            else:
                continue
            break
    return side[labels]


def _quick_cut(graph: CSRGraph, parts: np.ndarray) -> float:
    src = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
    mask = (src < graph.adjncy) & (parts[src] != parts[graph.adjncy])
    return float(graph.adjwgt[mask].sum())


def _check_fraction(f0: float) -> None:
    if not 0.0 < f0 < 1.0:
        raise PartitionError(f"part-0 fraction must be in (0, 1), got {f0}")
