"""Initial bisection of a (coarse) graph.

At the bottom of the multilevel V-cycle the graph is small; we bisect it
with *greedy graph growing* (GGG): grow part 0 from a seed vertex, always
absorbing the frontier vertex whose move is cheapest (max gain), until part
0 reaches its target weight.  Several random seeds are tried and the best
cut kept.  A weight-balanced random bisection serves as baseline and as a
fallback for degenerate graphs.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph


def random_bisection(
    graph: CSRGraph, f0: float, rng: np.random.Generator
) -> np.ndarray:
    """Shuffle vertices and fill part 0 up to its target weight."""
    _check_fraction(f0)
    n = graph.n_vertices
    parts = np.ones(n, dtype=np.int64)
    target0 = f0 * graph.vwgt.sum()
    w0 = 0.0
    for v in rng.permutation(n):
        if w0 >= target0:
            break
        parts[v] = 0
        w0 += graph.vwgt[v]
    return parts


def greedy_graph_growing(
    graph: CSRGraph,
    f0: float,
    rng: np.random.Generator,
    n_trials: int = 4,
) -> np.ndarray:
    """Best-of-``n_trials`` greedy graph growing bisection."""
    _check_fraction(f0)
    n = graph.n_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    best_parts: np.ndarray | None = None
    best_cut = np.inf
    for _ in range(max(1, n_trials)):
        parts = _ggg_once(graph, f0, rng)
        cut = _quick_cut(graph, parts)
        if cut < best_cut:
            best_cut, best_parts = cut, parts
    assert best_parts is not None
    return best_parts


def _ggg_once(graph: CSRGraph, f0: float, rng: np.random.Generator) -> np.ndarray:
    n = graph.n_vertices
    parts = np.ones(n, dtype=np.int64)
    total = graph.vwgt.sum()
    target0 = f0 * total
    w0 = 0.0

    in_part0 = np.zeros(n, dtype=bool)
    # gain of moving v into part 0 = (edges to part 0) - (edges to part 1);
    # stored lazily in a heap keyed by -gain.
    gain = np.zeros(n, dtype=np.float64)
    for v in range(n):
        gain[v] = -graph.neighbor_weights(v).sum()
    stamp = np.zeros(n, dtype=np.int64)
    heap: list[tuple[float, int, int]] = []

    def push(v: int) -> None:
        heapq.heappush(heap, (-gain[v], int(stamp[v]), int(v)))

    while w0 < target0:
        # (Re)seed when the frontier is exhausted — disconnected graphs.
        if not heap:
            remaining = np.flatnonzero(~in_part0)
            if len(remaining) == 0:
                break
            seed = int(rng.choice(remaining))
            stamp[seed] += 1
            push(seed)
        neg_g, st, v = heapq.heappop(heap)
        if in_part0[v] or st != stamp[v]:
            continue  # stale entry
        in_part0[v] = True
        parts[v] = 0
        w0 += graph.vwgt[v]
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            if not in_part0[u]:
                gain[u] += 2.0 * w  # u gained a part-0 neighbour
                stamp[u] += 1
                push(int(u))
    return parts


def _quick_cut(graph: CSRGraph, parts: np.ndarray) -> float:
    src = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
    mask = (src < graph.adjncy) & (parts[src] != parts[graph.adjncy])
    return float(graph.adjwgt[mask].sum())


def _check_fraction(f0: float) -> None:
    if not 0.0 < f0 < 1.0:
        raise PartitionError(f"part-0 fraction must be in (0, 1), got {f0}")
