"""Kernighan–Lin bisection refinement (pairwise swaps).

The historical ancestor of FM: instead of single moves, KL swaps *pairs*
of vertices (one from each side), which keeps the balance exactly
invariant — useful when the bisection must not drift at all (e.g. equal
halves of unit-weight graphs).  Kept as an alternative refiner and an
ablation subject; FM remains the default (faster, handles weights).

This implementation is the textbook O(passes * n^2)-ish variant with the
usual gain bookkeeping, adequate for the window sizes RGP partitions.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .multilevel import MultilevelKWay


def _d_values(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    """D[v] = external - internal edge weight of v (move desirability)."""
    d = np.zeros(graph.n_vertices)
    for v in range(graph.n_vertices):
        nbrs = graph.neighbors(v)
        w = graph.neighbor_weights(v)
        same = parts[nbrs] == parts[v]
        d[v] = float(w[~same].sum() - w[same].sum())
    return d


def _edge_weight(graph: CSRGraph, u: int, v: int) -> float:
    nbrs = graph.neighbors(u)
    idx = np.flatnonzero(nbrs == v)
    if len(idx) == 0:
        return 0.0
    return float(graph.neighbor_weights(u)[idx[0]])


def kl_bisection_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    max_passes: int = 4,
    max_swaps_per_pass: int | None = None,
) -> np.ndarray:
    """Refine a bisection by greedy pair swaps with best-prefix rollback."""
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n_vertices
    if n < 2:
        return parts
    limit = max_swaps_per_pass or min(n // 2, 64)

    for _ in range(max_passes):
        d = _d_values(graph, parts)
        locked = np.zeros(n, dtype=bool)
        swaps: list[tuple[int, int]] = []
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        for _ in range(limit):
            side0 = np.flatnonzero((parts == 0) & ~locked)
            side1 = np.flatnonzero((parts == 1) & ~locked)
            if len(side0) == 0 or len(side1) == 0:
                break
            # Best pair by g = D[a] + D[b] - 2 w(a,b); restrict to the top
            # few candidates per side to stay subquadratic in practice.
            top0 = side0[np.argsort(d[side0])[::-1][:8]]
            top1 = side1[np.argsort(d[side1])[::-1][:8]]
            best_pair, best_gain = None, -np.inf
            for a in top0:
                for b in top1:
                    g = d[a] + d[b] - 2.0 * _edge_weight(graph, int(a), int(b))
                    if g > best_gain:
                        best_gain, best_pair = g, (int(a), int(b))
            if best_pair is None:
                break
            a, b = best_pair
            parts[a], parts[b] = 1, 0
            locked[a] = locked[b] = True
            swaps.append((a, b))
            cum += best_gain
            if cum > best_cum + 1e-12:
                best_cum, best_len = cum, len(swaps)
            # Update D for unlocked neighbours of a and b.
            for moved in (a, b):
                for u, w in zip(graph.neighbors(moved),
                                graph.neighbor_weights(moved)):
                    if locked[u]:
                        continue
                    if parts[u] == parts[moved]:
                        d[u] -= 2.0 * w
                    else:
                        d[u] += 2.0 * w
        # Roll back swaps past the best prefix.
        for a, b in swaps[best_len:]:
            parts[a], parts[b] = 0, 1
        if best_cum <= 1e-12:
            break
    return parts


class MultilevelKWayKL(MultilevelKWay):
    """Multilevel k-way using KL pair swaps instead of FM at each level.

    Registered as ``"multilevel-kl"`` — an ablation subject; balance is
    inherited exactly from the initial bisection (KL never changes it).
    """

    name = "multilevel-kl"

    def bisect(self, graph: CSRGraph, f0: float, rng) -> np.ndarray:
        from .coarsen import coarsen_to
        from .initial import greedy_graph_growing

        n = graph.n_vertices
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        hierarchy = coarsen_to(graph, max_vertices=self.coarse_size, rng=rng)
        graphs = [graph] + [lvl.graph for lvl in hierarchy]
        parts = greedy_graph_growing(
            graphs[-1], f0, rng, n_trials=self.n_initial_trials
        )
        parts = kl_bisection_refine(graphs[-1], parts)
        for level_idx in range(len(hierarchy) - 1, -1, -1):
            level = hierarchy[level_idx]
            parts = parts[level.fine_to_coarse]
            parts = kl_bisection_refine(graphs[level_idx], parts)
        return parts
