"""Kernighan–Lin bisection refinement (pairwise swaps).

The historical ancestor of FM: instead of single moves, KL swaps *pairs*
of vertices (one from each side), which keeps the balance exactly
invariant on *unit-weight* graphs.  With weighted vertices a swap shifts
``vwgt[b] - vwgt[a]`` across the cut, so unconstrained swapping drifts
arbitrarily far from balance; pass ``f0``/``tolerance`` to cap the drift
(swaps that would push a side past its weight cap are skipped).  Kept as
an alternative refiner and an ablation subject; FM remains the default
(faster, restores balance rather than merely preserving it).

This implementation is the textbook O(passes * n^2)-ish variant with the
usual gain bookkeeping, adequate for the window sizes RGP partitions.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .multilevel import MultilevelKWay


def _d_values(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    """D[v] = external - internal edge weight of v (move desirability)."""
    d = np.zeros(graph.n_vertices)
    for v in range(graph.n_vertices):
        nbrs = graph.neighbors(v)
        w = graph.neighbor_weights(v)
        same = parts[nbrs] == parts[v]
        d[v] = float(w[~same].sum() - w[same].sum())
    return d


def _edge_weight(graph: CSRGraph, u: int, v: int) -> float:
    nbrs = graph.neighbors(u)
    idx = np.flatnonzero(nbrs == v)
    if len(idx) == 0:
        return 0.0
    return float(graph.neighbor_weights(u)[idx[0]])


def kl_bisection_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    max_passes: int = 4,
    max_swaps_per_pass: int | None = None,
    f0: float | None = None,
    tolerance: float = 0.0,
) -> np.ndarray:
    """Refine a bisection by greedy pair swaps with best-prefix rollback.

    With ``f0`` set, swaps are constrained to keep both side weights within
    ``f0``/``1-f0`` of the total (plus ``tolerance`` and single-vertex
    granularity slack); without it swaps are unconstrained, which is only
    balance-preserving on unit vertex weights.
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n_vertices
    if n < 2:
        return parts
    limit = max_swaps_per_pass or min(n // 2, 64)
    vwgt = graph.vwgt
    if f0 is not None:
        total = float(vwgt.sum())
        cap = np.array([
            f0 * total * (1.0 + tolerance),
            (1.0 - f0) * total * (1.0 + tolerance),
        ])
        cap = np.maximum(cap, float(vwgt.max()))
    else:
        cap = None

    for _ in range(max_passes):
        d = _d_values(graph, parts)
        weights = np.bincount(parts, weights=vwgt, minlength=2).astype(
            np.float64
        )
        locked = np.zeros(n, dtype=bool)
        swaps: list[tuple[int, int]] = []
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        for _ in range(limit):
            side0 = np.flatnonzero((parts == 0) & ~locked)
            side1 = np.flatnonzero((parts == 1) & ~locked)
            if len(side0) == 0 or len(side1) == 0:
                break
            # Best pair by g = D[a] + D[b] - 2 w(a,b); restrict to the top
            # few candidates per side to stay subquadratic in practice.
            top0 = side0[np.argsort(d[side0])[::-1][:8]]
            top1 = side1[np.argsort(d[side1])[::-1][:8]]
            best_pair, best_gain = None, -np.inf
            for a in top0:
                for b in top1:
                    if cap is not None:
                        shift = float(vwgt[b] - vwgt[a])  # into side 0
                        if (
                            weights[0] + shift > cap[0]
                            or weights[1] - shift > cap[1]
                        ):
                            continue
                    g = d[a] + d[b] - 2.0 * _edge_weight(graph, int(a), int(b))
                    if g > best_gain:
                        best_gain, best_pair = g, (int(a), int(b))
            if best_pair is None:
                break
            a, b = best_pair
            parts[a], parts[b] = 1, 0
            shift = float(vwgt[b] - vwgt[a])
            weights[0] += shift
            weights[1] -= shift
            locked[a] = locked[b] = True
            swaps.append((a, b))
            cum += best_gain
            if cum > best_cum + 1e-12:
                best_cum, best_len = cum, len(swaps)
            # Update D for unlocked neighbours of a and b.
            for moved in (a, b):
                for u, w in zip(graph.neighbors(moved),
                                graph.neighbor_weights(moved)):
                    if locked[u]:
                        continue
                    if parts[u] == parts[moved]:
                        d[u] -= 2.0 * w
                    else:
                        d[u] += 2.0 * w
        # Roll back swaps past the best prefix.
        for a, b in swaps[best_len:]:
            parts[a], parts[b] = 0, 1
        if best_cum <= 1e-12:
            break
    return parts


class MultilevelKWayKL(MultilevelKWay):
    """Multilevel k-way using KL pair swaps instead of FM at each level.

    Registered as ``"multilevel-kl"`` — an ablation subject.  Swaps are
    weight-constrained to the per-level tolerance, so balance tracks the
    initial bisection instead of drifting with every uneven swap.
    """

    name = "multilevel-kl"

    def bisect(self, graph: CSRGraph, f0: float, rng) -> np.ndarray:
        from .coarsen import coarsen_to
        from .initial import component_packing_bisection, greedy_graph_growing
        from .multilevel import _bisection_key

        n = graph.n_vertices
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        tol = self._level_tol if self._level_tol is not None else self.tolerance
        hierarchy = coarsen_to(graph, max_vertices=self.coarse_size, rng=rng)
        graphs = [graph] + [lvl.graph for lvl in hierarchy]
        coarsest = graphs[-1]
        parts = greedy_graph_growing(
            coarsest, f0, rng, n_trials=self.n_initial_trials
        )
        parts = kl_bisection_refine(coarsest, parts, f0=f0, tolerance=tol)
        packed = component_packing_bisection(coarsest, f0)
        if packed is not None:
            packed = kl_bisection_refine(coarsest, packed, f0=f0, tolerance=tol)
            if _bisection_key(coarsest, packed, f0, tol) < _bisection_key(
                coarsest, parts, f0, tol
            ):
                parts = packed
        for level_idx in range(len(hierarchy) - 1, -1, -1):
            level = hierarchy[level_idx]
            parts = parts[level.fine_to_coarse]
            parts = kl_bisection_refine(
                graphs[level_idx], parts, f0=f0, tolerance=tol
            )
        return parts
