"""Graph partitioning substrate — our from-scratch SCOTCH replacement.

The paper partitions the TDG window with SCOTCH (dual recursive
bipartitioning mapped onto the machine's sockets, edge weights = dependence
bytes, accounting for memory latencies).  This package implements that
family from scratch (DESIGN.md §2/§3):

* :class:`DualRecursiveBipartitioner` — architecture-aware multilevel DRB,
  the default used by RGP;
* :class:`MultilevelKWay` — METIS-style recursive bisection (edge cut only);
* :class:`SpectralPartitioner` — Fiedler-vector bisection baseline;
* :class:`RandomPartitioner` / :class:`CyclicPartitioner` /
  :class:`BlockPartitioner` — ablation floors.
"""

from .anchored import partition_with_anchors
from .baselines import BlockPartitioner, CyclicPartitioner, RandomPartitioner
from .coarsen import CoarseningLevel, coarsen_once, coarsen_to, heavy_edge_matching
from .exact import DEFAULT_EXACT_BUDGET, ExactPartitioner
from .hierarchical import HierarchicalPartitioner, topology_groups
from .initial import greedy_graph_growing, random_bisection
from .interface import (
    DEFAULT_TOLERANCE,
    Partitioner,
    PartitionResult,
    TargetArchitecture,
    partition_onto,
)
from .kl import MultilevelKWayKL, kl_bisection_refine
from .metrics import (
    communication_volume,
    edge_cut,
    imbalance,
    mapping_cost,
    part_sizes,
)
from .multilevel import MultilevelKWay
from .recursive import DualRecursiveBipartitioner, split_architecture
from .refine import fm_bisection_refine, greedy_kway_refine
from .spectral import SpectralPartitioner, fiedler_vector

PARTITIONERS: dict[str, type[Partitioner]] = {
    cls.name: cls
    for cls in (
        DualRecursiveBipartitioner,
        MultilevelKWay,
        MultilevelKWayKL,
        SpectralPartitioner,
        ExactPartitioner,
        RandomPartitioner,
        CyclicPartitioner,
        BlockPartitioner,
    )
}


def by_name(name: str, **kwargs) -> Partitioner:
    """Instantiate a partitioner by registry name."""
    try:
        cls = PARTITIONERS[name]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {name!r}; known: {sorted(PARTITIONERS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "DEFAULT_EXACT_BUDGET",
    "DEFAULT_TOLERANCE",
    "PARTITIONERS",
    "BlockPartitioner",
    "CoarseningLevel",
    "CyclicPartitioner",
    "DualRecursiveBipartitioner",
    "ExactPartitioner",
    "HierarchicalPartitioner",
    "MultilevelKWay",
    "MultilevelKWayKL",
    "Partitioner",
    "PartitionResult",
    "RandomPartitioner",
    "SpectralPartitioner",
    "TargetArchitecture",
    "by_name",
    "coarsen_once",
    "coarsen_to",
    "communication_volume",
    "edge_cut",
    "fiedler_vector",
    "fm_bisection_refine",
    "greedy_graph_growing",
    "greedy_kway_refine",
    "heavy_edge_matching",
    "imbalance",
    "kl_bisection_refine",
    "mapping_cost",
    "part_sizes",
    "partition_onto",
    "partition_with_anchors",
    "random_bisection",
    "split_architecture",
    "topology_groups",
]
