"""Exact branch-and-bound partitioning: the oracle backend.

Every heuristic in this package (multilevel, DRB, KL, spectral,
hierarchical) answers "here is a good partition"; none can answer "how
good?".  :class:`ExactPartitioner` can: it enumerates the assignment tree
vertex by vertex and provably minimises the weighted edge cut — or, given
a ``target=``, the SCOTCH-style mapping cost ``sum w(u,v) *
dist(part(u), part(v))`` — subject to the balance tolerance.  That turns
the heuristics' quality from folklore into a machine-checked contract
(``tests/test_partition_exact.py``) and powers the optimality-gap
ablation (``repro ablation gap``).

Pruning machinery (DESIGN.md §16):

* **cheapest-attachment bound** — partial cost plus, for every unassigned
  vertex, the cheapest feasible attachment to the already-assigned
  region.  Edges between two unassigned vertices are handled by the
  residual bound below; counting them at their global floor keeps the
  bound admissible.
* **sorted-residual-edge bound** — a connected component of the
  *unassigned* subgraph whose weight exceeds the largest remaining part
  headroom must split into ``g`` groups, cutting at least ``g - 1`` of
  its edges; the cheapest possible such cut is the sum of its ``g - 1``
  smallest edge weights (spanning-tree argument), so that sum is an
  admissible increment.
* **balance-infeasibility pruning** — a branch dies as soon as any
  unassigned vertex no longer fits in any part, or the remaining weight
  exceeds the total remaining headroom.
* **memoized symmetry breaking** — part-equivalence classes (identical
  capacity and distance rows) are computed once per call; among currently
  *empty* parts of one class only the lowest id is ever branched on,
  collapsing the ``k!`` relabelling symmetry of anonymous targets.

Search order is deterministic (max-connectivity vertex order, part
candidates by ascending attachment cost, ties by id); ``seed`` only seeds
the multilevel heuristic that provides the initial incumbent, so equal
seeds give bit-equal results.

The ``budget=`` escape hatch bounds the number of branch-and-bound nodes:
when it runs out the backend degrades to the best solution seen so far
(at worst the multilevel answer) with ``meta["budget_exhausted"]`` set —
or raises :class:`~repro.errors.ExactBudgetExceeded` when constructed
with ``on_budget="raise"`` — rather than hanging on a window it cannot
prove optimal.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..errors import ExactBudgetExceeded, PartitionError
from ..graph.csr import CSRGraph
from .interface import (
    DEFAULT_TOLERANCE,
    Partitioner,
    PartitionResult,
    TargetArchitecture,
)
from .multilevel import MultilevelKWay

#: Default branch-and-bound node budget.  Enough to prove optimality on
#: the oracle-suite sizes (n <= 24) and on most quick-ablation windows
#: (n <= 64, k <= 4); big windows degrade to the heuristic answer.
DEFAULT_EXACT_BUDGET = 200_000


class _BudgetHit(Exception):
    """Internal: unwinds the search when the node budget runs out."""


class ExactPartitioner(Partitioner):
    """Provably optimal k-way partitioner (branch and bound).

    ``budget`` caps the number of search-tree nodes; ``on_budget``
    selects what happens when it is hit: ``"fallback"`` (default)
    returns the best incumbent with ``meta["exact"] = False``,
    ``"raise"`` raises :class:`ExactBudgetExceeded`.  ``fallback``
    overrides the heuristic used for the initial incumbent (default: a
    fresh :class:`MultilevelKWay` at the same tolerance).
    """

    name = "exact"

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        budget: int = DEFAULT_EXACT_BUDGET,
        on_budget: str = "fallback",
        fallback: Partitioner | None = None,
    ) -> None:
        super().__init__(tolerance=tolerance)
        if budget < 1:
            raise PartitionError(f"budget must be >= 1, got {budget}")
        if on_budget not in ("fallback", "raise"):
            raise PartitionError(
                f"on_budget must be 'fallback' or 'raise', got {on_budget!r}"
            )
        self.budget = int(budget)
        self.on_budget = on_budget
        self.fallback = fallback or MultilevelKWay(tolerance=tolerance)

    # ------------------------------------------------------------------
    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        self._check_k(graph, k)
        capacities = self._capacities(k, target)
        n = graph.n_vertices

        if k == 1:
            return PartitionResult(
                parts=np.zeros(n, dtype=np.int64), k=1,
                meta={"exact": True, "nodes": 0, "objective": 0.0},
            )

        # Objective matrix: cost of an edge between parts p and q.  With
        # no target this is the 0/1 cut indicator, making the objective
        # exactly the weighted edge cut.
        if target is None:
            dist = np.ones((k, k), dtype=np.float64)
            np.fill_diagonal(dist, 0.0)
        else:
            dist = np.asarray(target.distance, dtype=np.float64)

        vwgt = graph.vwgt.astype(np.float64)
        total_w = float(vwgt.sum())
        caps = (1.0 + self.tolerance) * total_w * (
            np.asarray(capacities, dtype=np.float64) / float(capacities.sum())
        )
        eps = 1e-9 * max(total_w, 1.0)

        # Heuristic incumbent (also the degradation answer).
        heur = self.fallback.partition(graph, k, target=target, seed=seed)
        heur_parts = np.asarray(heur.parts, dtype=np.int64)
        heur_cost = _objective(graph, heur_parts, dist)
        heur_feasible = bool(
            np.all(np.bincount(heur_parts, weights=vwgt, minlength=k)
                   <= caps + eps)
        )

        state = _Search(graph, k, dist, caps, eps, self.budget)
        if heur_feasible:
            state.offer(heur_parts, heur_cost)

        relaxed = False
        try:
            state.run()
            if state.best_parts is None:
                # No partition satisfies the strict tolerance (e.g. one
                # vertex outweighs every part's allowance).  Relax the
                # caps to an LPT load profile — which is feasible by
                # construction — and search again under the loosened
                # constraint, flagging the relaxation.
                relaxed = True
                state.caps = np.maximum(caps, _lpt_loads(vwgt, caps) + eps)
                if heur_feasible or bool(
                    np.all(np.bincount(heur_parts, weights=vwgt, minlength=k)
                           <= state.caps + eps)
                ):
                    state.offer(heur_parts, heur_cost)
                state.run()
        except _BudgetHit:
            if self.on_budget == "raise":
                raise ExactBudgetExceeded(
                    f"exact partitioner exhausted its {self.budget}-node "
                    f"budget on a {n}-vertex / {k}-part instance"
                ) from None
            parts = state.best_parts if state.best_parts is not None else heur_parts
            return PartitionResult(
                parts=parts, k=k,
                meta={
                    "exact": False, "budget_exhausted": True,
                    "nodes": state.nodes,
                    "objective": _objective(graph, parts, dist),
                    "tolerance_relaxed": relaxed,
                },
            )

        parts = state.best_parts
        if parts is None:  # pragma: no cover - LPT retry always succeeds
            raise PartitionError(
                f"no feasible {k}-way partition found for {n} vertices"
            )
        return PartitionResult(
            parts=parts, k=k,
            meta={
                "exact": True, "nodes": state.nodes,
                "objective": float(state.best_cost),
                "tolerance_relaxed": relaxed,
            },
        )


def _objective(graph: CSRGraph, parts: np.ndarray, dist: np.ndarray) -> float:
    """Sum of ``w(u,v) * dist[part(u), part(v)]`` over undirected edges."""
    total = 0.0
    for v in range(graph.n_vertices):
        pv = parts[v]
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            if u > v:
                total += float(w) * float(dist[pv, parts[u]])
    return total


def _lpt_loads(vwgt: np.ndarray, caps: np.ndarray) -> np.ndarray:
    """Longest-processing-time load profile: the relaxation anchor."""
    loads = np.zeros(len(caps), dtype=np.float64)
    for v in np.argsort(-vwgt, kind="stable"):
        # Fill the part with the most remaining headroom (ties: lowest id).
        loads[int(np.argmax(caps - loads))] += float(vwgt[v])
    return loads


class _Search:
    """One branch-and-bound run over a fixed graph/objective/capacity."""

    def __init__(
        self,
        graph: CSRGraph,
        k: int,
        dist: np.ndarray,
        caps: np.ndarray,
        eps: float,
        budget: int,
    ) -> None:
        self.graph = graph
        self.k = k
        self.dist = dist
        self.caps = np.asarray(caps, dtype=np.float64).copy()
        self.eps = eps
        self.budget = budget
        self.nodes = 0
        self.best_cost = np.inf
        self.best_parts: np.ndarray | None = None

        n = graph.n_vertices
        self.n = n
        self.vwgt = graph.vwgt.astype(np.float64)
        self.nbrs = [
            list(zip(graph.neighbors(v).tolist(),
                     graph.neighbor_weights(v).astype(np.float64).tolist()))
            for v in range(n)
        ]
        self.order = self._connectivity_order()
        pos = np.empty(n, dtype=np.int64)
        pos[self.order] = np.arange(n)
        self.pos = pos

        # Edges sorted by the earlier endpoint's position in the search
        # order: the residual (both-endpoints-unassigned) edge set at
        # depth d is exactly the tail with min-position > d.
        edges = []
        for v in range(n):
            for u, w in self.nbrs[v]:
                if u > v:
                    edges.append(
                        (min(int(pos[v]), int(pos[u])), int(v), int(u), w)
                    )
        edges.sort()
        self.edges_by_minpos = edges
        self.edge_minpos = [e[0] for e in edges]

        off = dist[~np.eye(self.k, dtype=bool)]
        self.dist_floor = float(dist.min())
        self.cut_floor = float(off.min()) if len(off) else 0.0

    # -- static precomputation -----------------------------------------
    def _connectivity_order(self) -> np.ndarray:
        """Max-connectivity-first vertex order (deterministic).

        Keeping each new vertex heavily connected to the assigned prefix
        makes the attachment bound bite early; ties fall back to heavier
        vertices, then lower ids.
        """
        n = self.n
        wdeg = np.array(
            [sum(w for _, w in self.nbrs[v]) for v in range(n)]
        )
        seen = np.zeros(n, dtype=bool)
        link = np.zeros(n, dtype=np.float64)  # weight to ordered set
        order = np.empty(n, dtype=np.int64)
        for i in range(n):
            best, best_key = -1, None
            for v in range(n):
                if seen[v]:
                    continue
                key = (link[v], wdeg[v], self.vwgt[v], -v)
                if best_key is None or key > best_key:
                    best, best_key = v, key
            order[i] = best
            seen[best] = True
            for u, w in self.nbrs[best]:
                if not seen[u]:
                    link[u] += w
        return order

    def _part_classes(self) -> np.ndarray:
        """Equivalence-class id per part (the symmetry-breaking memo).

        Parts p and q are interchangeable when they have equal capacity
        and their distance rows agree once p/q themselves are swapped.
        """
        k, dist, caps = self.k, self.dist, self.caps
        classes = np.full(k, -1, dtype=np.int64)
        next_id = 0
        for p in range(k):
            if classes[p] >= 0:
                continue
            classes[p] = next_id
            for q in range(p + 1, k):
                if classes[q] >= 0 or abs(caps[p] - caps[q]) > 1e-12:
                    continue
                if abs(dist[p, p] - dist[q, q]) > 1e-12:
                    continue
                rows_match = all(
                    abs(dist[p, r] - dist[q, r]) <= 1e-12
                    for r in range(k) if r != p and r != q
                )
                if rows_match:
                    classes[q] = next_id
            next_id += 1
        return classes

    # -- incumbent ------------------------------------------------------
    def offer(self, parts: np.ndarray, cost: float) -> None:
        """Install an external feasible solution as the incumbent."""
        if cost < self.best_cost - 1e-12:
            self.best_cost = cost
            self.best_parts = np.asarray(parts, dtype=np.int64).copy()

    # -- search ---------------------------------------------------------
    def run(self) -> None:
        n, k = self.n, self.k
        # Re-derived per run: a capacity relaxation between runs can
        # split a previously interchangeable pair of parts.
        self.classes = self._part_classes()
        self.parts = np.full(n, -1, dtype=np.int64)
        self.loads = np.zeros(k, dtype=np.float64)
        self.count = np.zeros(k, dtype=np.int64)
        self.attach = np.zeros((n, k), dtype=np.float64)
        self.suffix_w = np.zeros(n + 1, dtype=np.float64)
        for i in range(n - 1, -1, -1):
            self.suffix_w[i] = self.suffix_w[i + 1] + self.vwgt[self.order[i]]
        self._dfs(0, 0.0)

    def _bound(self, depth: int, cost: float) -> float:
        """Admissible lower bound for completing ``order[depth:]``."""
        if depth == self.n:
            return cost
        rest = self.order[depth:]
        headroom = self.caps - self.loads
        if self.suffix_w[depth] > float(headroom.sum()) + self.eps:
            return np.inf  # balance-infeasible: total weight cannot fit
        feas = self.vwgt[rest, None] <= headroom[None, :] + self.eps
        cheapest = np.where(feas, self.attach[rest], np.inf).min(axis=1)
        if not np.isfinite(cheapest).all():
            return np.inf  # some vertex fits nowhere: balance-infeasible
        lb = cost + float(cheapest.sum())
        if lb >= self.best_cost - 1e-12:
            return lb  # already pruned; skip the residual-edge work
        return lb + self._residual_bound(depth, float(headroom.max()))

    def _residual_bound(self, depth: int, max_headroom: float) -> float:
        """Sorted-residual-edge bound over the unassigned subgraph."""
        lo = bisect_right(self.edge_minpos, depth - 1)
        edges = self.edges_by_minpos[lo:]
        extra = 0.0
        if self.dist_floor > 0.0:
            # Every residual edge costs at least the distance floor
            # (uniform targets have dist[p,p] = 1: intra-part traffic
            # still pays local latency).
            extra += self.dist_floor * sum(e[3] for e in edges)
        upgrade = self.cut_floor - self.dist_floor
        if upgrade <= 0.0 or not edges or max_headroom <= 0.0:
            return extra

        parent: dict[int, int] = {}

        def find(v: int) -> int:
            root = v
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(v, v) != root:
                parent[v], v = root, parent[v]
            return root

        comp_edges: dict[int, list[float]] = {}
        for _, v, u, w in edges:
            a, b = find(v), find(u)
            if a != b:
                parent[b] = a
                ea = comp_edges.pop(a, [])
                ea.extend(comp_edges.pop(b, []))
                ea.append(w)
                comp_edges[a] = ea
            else:
                comp_edges.setdefault(a, []).append(w)

        for root, wlist in comp_edges.items():
            comp_w = 0.0
            for i in range(depth, self.n):
                v = int(self.order[i])
                if find(v) == root:
                    comp_w += self.vwgt[v]
            groups = int(np.ceil(comp_w / max_headroom - 1e-12))
            if groups >= 2:
                wlist.sort()
                extra += upgrade * sum(wlist[: groups - 1])
        return extra

    def _dfs(self, depth: int, cost: float) -> None:
        if depth == self.n:
            if cost < self.best_cost - 1e-12:
                self.best_cost = cost
                self.best_parts = self.parts.copy()
            return
        v = int(self.order[depth])
        vw = self.vwgt[v]

        candidates = []
        seen_empty_class: set[int] = set()
        for p in range(self.k):
            if self.loads[p] + vw > self.caps[p] + self.eps:
                continue
            if self.count[p] == 0:
                cls = int(self.classes[p])
                if cls in seen_empty_class:
                    continue  # symmetric to an empty part already tried
                seen_empty_class.add(cls)
            candidates.append((float(self.attach[v, p]), p))
        candidates.sort()

        for inc, p in candidates:
            self.nodes += 1
            if self.nodes > self.budget:
                raise _BudgetHit
            new_cost = cost + inc
            if new_cost >= self.best_cost - 1e-12:
                break  # candidates are sorted: the rest are no better
            self.parts[v] = p
            self.loads[p] += vw
            self.count[p] += 1
            dcol = self.dist[:, p]
            touched = []
            for u, w in self.nbrs[v]:
                if self.parts[u] < 0:
                    self.attach[u] += w * dcol
                    touched.append((u, w))
            if self._bound(depth + 1, new_cost) < self.best_cost - 1e-12:
                self._dfs(depth + 1, new_cost)
            for u, w in touched:
                self.attach[u] -= w * dcol
            self.count[p] -= 1
            self.loads[p] -= vw
            self.parts[v] = -1
