"""Spectral partitioning baseline (Fiedler-vector recursive bisection).

Classic alternative to multilevel combinatorial methods: sort vertices by
the second eigenvector of the weighted graph Laplacian and cut at the
weight-balanced split point.  Included as an ablation baseline — it ignores
architecture distances and tends to produce smoother but sometimes worse
cuts than FM-refined multilevel partitions on irregular TDGs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..graph.csr import CSRGraph
from .interface import (
    DEFAULT_TOLERANCE,
    Partitioner,
    PartitionResult,
    TargetArchitecture,
)
from .multilevel import _extract_subgraph
from .refine import fm_bisection_refine, greedy_kway_refine


def fiedler_vector(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Second-smallest eigenvector of the weighted Laplacian.

    Uses dense ``eigh`` below 200 vertices (more robust), LOBPCG-backed
    ``eigsh`` with shift-invert otherwise.  Disconnected graphs are fine:
    any eigenvector orthogonal to the constant still induces a split.
    """
    n = graph.n_vertices
    if n <= 2:
        return np.arange(n, dtype=np.float64)
    src = np.repeat(np.arange(n), np.diff(graph.xadj))
    adj = sp.csr_matrix(
        (graph.adjwgt, (src, graph.adjncy)), shape=(n, n)
    )
    lap = sp.csgraph.laplacian(adj)
    if n < 200:
        vals, vecs = np.linalg.eigh(lap.toarray())
        return vecs[:, 1]
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    try:
        _, vecs = spla.eigsh(lap.asfptype(), k=2, sigma=-1e-3, which="LM", v0=v0)
        return vecs[:, 1]
    except Exception:
        # Shift-invert can fail on singular structures; fall back to dense.
        vals, vecs = np.linalg.eigh(lap.toarray())
        return vecs[:, 1]


class SpectralPartitioner(Partitioner):
    """Recursive spectral bisection with FM polishing."""

    name = "spectral"

    def __init__(
        self, tolerance: float = DEFAULT_TOLERANCE, fm_polish: bool = True
    ) -> None:
        super().__init__(tolerance)
        self.fm_polish = bool(fm_polish)

    def bisect(
        self, graph: CSRGraph, f0: float, seed: int
    ) -> np.ndarray:
        n = graph.n_vertices
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        fied = fiedler_vector(graph, seed=seed)
        order = np.argsort(fied, kind="stable")
        target0 = f0 * graph.vwgt.sum()
        parts = np.ones(n, dtype=np.int64)
        w0 = 0.0
        for v in order:
            if w0 >= target0:
                break
            parts[v] = 0
            w0 += graph.vwgt[v]
        if self.fm_polish:
            parts = fm_bisection_refine(graph, parts, f0, self.tolerance)
        return parts

    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        self._check_k(graph, k)
        capacities = self._capacities(k, target)
        parts = np.zeros(graph.n_vertices, dtype=np.int64)
        self._recurse(graph, np.arange(graph.n_vertices), list(range(k)),
                      capacities, parts, seed)
        if k > 1:
            parts = greedy_kway_refine(
                graph, parts, k, capacities, self.tolerance,
                arch_distance=target.distance if target is not None else None,
            )
        return PartitionResult(parts=parts, k=k)

    def _recurse(
        self,
        graph: CSRGraph,
        vertex_ids: np.ndarray,
        part_ids: list[int],
        capacities: np.ndarray,
        out_parts: np.ndarray,
        seed: int,
    ) -> None:
        if len(part_ids) == 1:
            out_parts[vertex_ids] = part_ids[0]
            return
        mid = (len(part_ids) + 1) // 2
        half = (part_ids[:mid], part_ids[mid:])
        cap0 = capacities[half[0]].sum()
        cap1 = capacities[half[1]].sum()
        sides = self.bisect(graph, cap0 / (cap0 + cap1), seed)
        for side, ids in enumerate(half):
            mask = sides == side
            sub = _extract_subgraph(graph, mask)
            self._recurse(sub, vertex_ids[mask], ids, capacities, out_parts,
                          seed + 1)
