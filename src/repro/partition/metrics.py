"""Partition quality metrics: edge cut, imbalance, mapping cost.

These are the objective functions of the partitioners and the quantities
the ablation benchmarks report.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph


def edge_cut(graph: CSRGraph, parts: np.ndarray) -> float:
    """Total weight of edges whose endpoints are in different parts."""
    parts = np.asarray(parts)
    if len(parts) != graph.n_vertices:
        raise PartitionError("parts length must equal vertex count")
    # Each undirected edge appears twice in CSR; sum once via u < v filter.
    src = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
    dst = graph.adjncy
    mask = (src < dst) & (parts[src] != parts[dst])
    return float(graph.adjwgt[mask].sum())


def internal_external_weights(
    graph: CSRGraph, parts: np.ndarray, v: int
) -> tuple[float, float]:
    """(same-part, other-part) adjacent edge weight of vertex ``v``."""
    nbrs = graph.neighbors(v)
    wgts = graph.neighbor_weights(v)
    same = parts[nbrs] == parts[v]
    return float(wgts[same].sum()), float(wgts[~same].sum())


def imbalance(
    graph: CSRGraph, parts: np.ndarray, k: int, capacities: np.ndarray | None = None
) -> float:
    """Max over parts of (weight / ideal share) − 1.

    0 means perfect balance; ``tolerance`` is the allowed upper bound.
    """
    parts = np.asarray(parts)
    if capacities is None:
        capacities = np.ones(k, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    total = graph.vwgt.sum()
    if total == 0:
        return 0.0
    weights = np.bincount(parts, weights=graph.vwgt, minlength=k)
    ideal = total * capacities / capacities.sum()
    # A part with zero ideal share and nonzero weight is infinitely imbalanced.
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(ideal > 0, weights / ideal, np.where(weights > 0, np.inf, 1.0))
    return float(ratio.max() - 1.0)


def mapping_cost(
    graph: CSRGraph, parts: np.ndarray, arch_distance: np.ndarray
) -> float:
    """SCOTCH static-mapping objective: Σ w(u,v) · dist(part(u), part(v)).

    Unlike plain edge cut, keeping heavy edges on *nearby* sockets is
    rewarded; this is the objective that makes the partitioner NUMA-aware.
    """
    parts = np.asarray(parts)
    arch = np.asarray(arch_distance, dtype=np.float64)
    src = np.repeat(np.arange(graph.n_vertices), np.diff(graph.xadj))
    dst = graph.adjncy
    mask = src < dst
    return float(
        (graph.adjwgt[mask] * arch[parts[src[mask]], parts[dst[mask]]]).sum()
    )


def communication_volume(graph: CSRGraph, parts: np.ndarray, k: int) -> float:
    """Σ over vertices of (number of *other* parts adjacent) · vertex degree
    weight proxy — the standard comm-volume metric: for each vertex, count
    distinct foreign parts among neighbours."""
    parts = np.asarray(parts)
    vol = 0
    for v in range(graph.n_vertices):
        nbr_parts = np.unique(parts[graph.neighbors(v)])
        vol += int((nbr_parts != parts[v]).sum())
    return float(vol)


def part_sizes(parts: np.ndarray, k: int) -> np.ndarray:
    """Vertex count per part."""
    return np.bincount(np.asarray(parts), minlength=k)
