"""SCOTCH-style dual recursive bipartitioning (static mapping).

Pellegrini's dual recursive bipartitioning (DRB) — the algorithm behind
SCOTCH's static mapping, which the paper uses — recursively bisects *both*
the task graph and the target architecture: at each level the socket set is
split into two internally-close halves (so far-apart sockets end up in
different recursion branches), and the task graph is bisected with target
fractions proportional to each half's core capacity.  Heavily-communicating
task groups therefore land on nearby sockets, minimising the *mapping cost*
Σ w(u,v)·dist(part(u), part(v)) rather than the flat edge cut.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from .interface import (
    DEFAULT_TOLERANCE,
    PartitionResult,
    TargetArchitecture,
)
from .multilevel import MultilevelKWay
from .refine import kway_refine


def split_architecture(
    part_ids: list[int], distance: np.ndarray
) -> tuple[list[int], list[int]]:
    """Split a socket set into two internally-close halves.

    Seeds are the two most distant sockets; remaining sockets join the half
    whose members they are closest to (average distance), with half sizes
    capped at ``ceil(n/2)``.  Deterministic: ties break on socket id.
    """
    if len(part_ids) < 2:
        raise PartitionError("cannot split fewer than two parts")
    ids = list(part_ids)
    if len(ids) == 2:
        return [ids[0]], [ids[1]]

    # Most distant pair as seeds.
    best = (ids[0], ids[1])
    best_d = -1.0
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            d = float(distance[a, b])
            if d > best_d:
                best_d, best = d, (a, b)
    half_a, half_b = [best[0]], [best[1]]
    cap = (len(ids) + 1) // 2
    remaining = [s for s in ids if s not in best]
    # Closest-first assignment keeps modules together on hierarchical
    # matrices (a socket's sibling is processed while both halves are open).
    remaining.sort(
        key=lambda s: (
            min(min(distance[s, t] for t in half_a), min(distance[s, t] for t in half_b)),
            s,
        )
    )
    for s in remaining:
        da = float(np.mean([distance[s, t] for t in half_a]))
        db = float(np.mean([distance[s, t] for t in half_b]))
        if len(half_a) >= cap:
            half_b.append(s)
        elif len(half_b) >= cap:
            half_a.append(s)
        elif da <= db:
            half_a.append(s)
        else:
            half_b.append(s)
    return sorted(half_a), sorted(half_b)


class DualRecursiveBipartitioner(MultilevelKWay):
    """Architecture-aware multilevel partitioner (our SCOTCH stand-in).

    Reuses the multilevel bisection machinery of :class:`MultilevelKWay`
    but (a) splits the socket set by distance clustering instead of by id
    order and (b) finishes with a mapping-cost k-way refinement pass.
    """

    name = "drb"

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        coarse_size: int = 64,
        n_initial_trials: int = 4,
    ) -> None:
        super().__init__(
            tolerance=tolerance,
            coarse_size=coarse_size,
            n_initial_trials=n_initial_trials,
            arch_refine=True,
        )
        self._current_distance: np.ndarray | None = None

    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        self._check_k(graph, k)
        if target is None:
            target = TargetArchitecture.uniform(k)
        if target.k != k:
            raise PartitionError(
                f"target architecture has {target.k} parts, requested {k}"
            )
        self._current_distance = target.distance
        try:
            capacities = target.capacity
            rng = np.random.default_rng(seed)
            parts = np.zeros(graph.n_vertices, dtype=np.int64)
            self._level_tol = self._level_tolerance(k)
            self._recurse(
                graph, np.arange(graph.n_vertices), list(range(k)),
                capacities, parts, rng,
            )
            if k > 1:
                parts = kway_refine(
                    graph, parts, k, capacities, self.tolerance,
                    arch_distance=target.distance,
                )
            return PartitionResult(parts=parts, k=k)
        finally:
            self._current_distance = None

    def _split_parts(self, part_ids: list[int]) -> tuple[list[int], list[int]]:
        assert self._current_distance is not None
        return split_architecture(part_ids, self._current_distance)
