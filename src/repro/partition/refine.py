"""Partition refinement: Fiduccia–Mattheyses for bisections, greedy k-way.

The FM pass moves one vertex at a time, always the highest-gain *feasible*
move, allowing negative-gain moves (hill climbing) and rolling back to the
best prefix at the end of the pass.  Feasible means the receiving part stays
under its weight cap — unless the partition is currently unbalanced, in
which case only moves out of the overweight part are allowed (balance
restoration takes priority, as in METIS).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from .metrics import edge_cut


def fm_bisection_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    f0: float,
    tolerance: float,
    max_passes: int = 8,
    max_moves_per_pass: int | None = None,
) -> np.ndarray:
    """Refine a bisection in place-ish (returns the refined copy)."""
    if not 0.0 < f0 < 1.0:
        raise PartitionError(f"part-0 fraction must be in (0, 1), got {f0}")
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n_vertices
    if n == 0:
        return parts
    total = float(graph.vwgt.sum())
    cap = np.array(
        [f0 * total * (1.0 + tolerance), (1.0 - f0) * total * (1.0 + tolerance)]
    )
    # Caps must admit at least the heaviest single vertex, or nothing can move.
    cap = np.maximum(cap, float(graph.vwgt.max()))
    limit = max_moves_per_pass if max_moves_per_pass is not None else n

    for _ in range(max_passes):
        improved = _fm_pass(graph, parts, cap, limit)
        if not improved:
            break
    return parts


def _fm_pass(
    graph: CSRGraph, parts: np.ndarray, cap: np.ndarray, limit: int
) -> bool:
    n = graph.n_vertices
    vwgt = graph.vwgt
    weights = np.bincount(parts, weights=vwgt, minlength=2).astype(np.float64)

    # gain[v]: cut reduction if v switches sides = ext(v) - int(v).
    gain = np.zeros(n, dtype=np.float64)
    for v in range(n):
        nbrs = graph.neighbors(v)
        w = graph.neighbor_weights(v)
        same = parts[nbrs] == parts[v]
        gain[v] = float(w[~same].sum() - w[same].sum())

    stamp = np.zeros(n, dtype=np.int64)
    moved = np.zeros(n, dtype=bool)
    heaps: list[list[tuple[float, int, int]]] = [[], []]  # per source side

    def push(v: int) -> None:
        heapq.heappush(heaps[parts[v]], (-gain[v], int(stamp[v]), int(v)))

    for v in range(n):
        push(v)

    def pop_feasible() -> int | None:
        """Best feasible move across both heaps (lazy invalidation)."""
        overweight = [weights[s] > cap[s] for s in (0, 1)]
        must_drain = 0 if overweight[0] else 1 if overweight[1] else None
        if must_drain is not None:
            # Balance restoration.  The highest-gain vertex may be heavy
            # enough to jump clean over the feasible band (src under cap but
            # dest now over), so prefer the best-gain move that *fits* the
            # destination; fall back to the overall best to keep progress.
            side = must_drain
            dest = 1 - side
            h = heaps[side]
            stash: list[tuple[float, int, int]] = []
            fallback: tuple[float, int, int] | None = None
            chosen: tuple[float, int, int] | None = None
            while h:
                neg_g, st, v = heapq.heappop(h)
                if moved[v] or st != stamp[v] or parts[v] != side:
                    continue
                if weights[dest] + vwgt[v] <= cap[dest]:
                    chosen = (neg_g, st, v)
                    break
                if fallback is None:
                    fallback = (neg_g, st, v)
                stash.append((neg_g, st, v))
            if chosen is None:
                chosen = fallback
            for entry in stash:
                if entry is not chosen:
                    heapq.heappush(h, entry)
            return None if chosen is None else chosen[2]
        candidates: list[tuple[float, int]] = []  # (neg_gain, side)
        for side in (0, 1):
            h = heaps[side]
            while h:
                neg_g, st, v = h[0]
                if moved[v] or st != stamp[v] or parts[v] != side:
                    heapq.heappop(h)
                    continue
                dest = 1 - side
                if weights[dest] + vwgt[v] > cap[dest]:
                    # Infeasible right now; skip this side this round (it
                    # will retry after weights change).
                    break
                candidates.append((neg_g, side))
                break
        if not candidates:
            return None
        neg_g, side = min(candidates)
        _, _, v = heapq.heappop(heaps[side])
        return v

    def violation() -> float:
        return max(0.0, weights[0] - cap[0]) + max(0.0, weights[1] - cap[1])

    def feasible() -> bool:
        return weights[0] <= cap[0] and weights[1] <= cap[1]

    seq: list[int] = []
    cum = 0.0
    # Best prefix: smallest cap violation first, then cut gain.  Ranking by
    # the violation *amount* (not a feasible/infeasible bit) keeps partial
    # balance-restoration progress even when the feasible band is narrower
    # than the vertices being moved, so repeated passes converge.
    initial_violation = violation()
    best_viol, best_cum = initial_violation, 0.0
    best_len = 0
    for _ in range(limit):
        v = pop_feasible()
        if v is None:
            break
        src = int(parts[v])
        dst = 1 - src
        cum += gain[v]
        moved[v] = True
        parts[v] = dst
        weights[src] -= vwgt[v]
        weights[dst] += vwgt[v]
        seq.append(v)
        # Update neighbour gains: edge (v,u) changed sides relative to u.
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            if moved[u]:
                continue
            if parts[u] == dst:
                gain[u] -= 2.0 * w
            else:
                gain[u] += 2.0 * w
            stamp[u] += 1
            push(int(u))
        viol = violation()
        if viol < best_viol - 1e-12 or (
            viol < best_viol + 1e-12 and cum > best_cum + 1e-12
        ):
            best_viol, best_cum = viol, cum
            best_len = len(seq)

    # Roll back moves past the best prefix.
    for v in seq[best_len:]:
        w = vwgt[v]
        weights[parts[v]] -= w
        parts[v] = 1 - parts[v]
        weights[parts[v]] += w
    return best_cum > 1e-12 or best_viol < initial_violation - 1e-12


def greedy_kway_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    capacities: np.ndarray | None = None,
    tolerance: float = 0.05,
    arch_distance: np.ndarray | None = None,
    passes: int = 4,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy boundary refinement for k-way partitions.

    Each pass scans boundary vertices and applies the single best
    feasible relocation per vertex.  With ``arch_distance`` the gain is the
    *mapping cost* reduction (NUMA-aware); otherwise plain edge cut.
    Vertices flagged in ``fixed`` never move (anchored repartitioning).
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n_vertices
    if n == 0 or k == 1:
        return parts
    vwgt = graph.vwgt
    total = float(vwgt.sum())
    if capacities is None:
        capacities = np.ones(k, dtype=np.float64)
    cap = total * capacities / capacities.sum() * (1.0 + tolerance)
    cap = np.maximum(cap, float(vwgt.max()) if n else 0.0)
    weights = np.bincount(parts, weights=vwgt, minlength=k).astype(np.float64)

    if arch_distance is None:
        arch = np.ones((k, k), dtype=np.float64)
        np.fill_diagonal(arch, 0.0)
    else:
        # SLIT-style matrix: diagonal (local) is the cheapest, so keeping an
        # edge internal is always preferred, weighted by socket proximity.
        arch = np.asarray(arch_distance, dtype=np.float64)

    if fixed is None:
        fixed = np.zeros(n, dtype=bool)

    for _ in range(max(1, passes)):
        any_move = False
        for v in range(n):
            if fixed[v]:
                continue
            nbrs = graph.neighbors(v)
            if len(nbrs) == 0:
                continue
            wgts = graph.neighbor_weights(v)
            p = int(parts[v])
            nbr_parts = parts[nbrs]
            if np.all(nbr_parts == p):
                continue  # interior vertex
            # Connectivity of v to each part.
            conn = np.zeros(k, dtype=np.float64)
            np.add.at(conn, nbr_parts, wgts)
            # Current cost contribution of v's edges.
            cur_cost = float((wgts * arch[p, nbr_parts]).sum())
            best_part, best_cost = p, cur_cost
            for q in np.unique(nbr_parts):
                q = int(q)
                if q == p:
                    continue
                if weights[q] + vwgt[v] > cap[q]:
                    continue
                cost = float((wgts * arch[q, nbr_parts]).sum())
                if cost < best_cost - 1e-12:
                    best_cost, best_part = cost, q
            if best_part != p:
                parts[v] = best_part
                weights[p] -= vwgt[v]
                weights[best_part] += vwgt[v]
                any_move = True
        if not any_move:
            break
    return parts


def kway_swap_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    capacities: np.ndarray | None = None,
    tolerance: float = 0.05,
    arch_distance: np.ndarray | None = None,
    max_rounds: int = 64,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """KL-style pairwise exchange refinement for k-way partitions.

    Single-vertex relocation (``greedy_kway_refine``) stalls when every
    profitable move is blocked by the weight caps — common under tight
    tolerance, where parts sit near capacity and nothing may move anywhere.
    Exchanging a *pair* across two parts shifts only the weight difference,
    so it threads through caps that block both individual moves.  Gains use
    the mapping-cost objective when ``arch_distance`` is given (for a swap
    the u-v edge itself never changes cost, hence the ``-2 w(u,v) d(p,q)``
    correction), plain edge cut otherwise.

    Each round evaluates, fully vectorised, the best feasible positive-gain
    exchange for every ordered part pair and applies them greedily
    (recomputing connectivity after each applied swap); rounds repeat until
    no exchange improves or ``max_rounds`` is hit.
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n_vertices
    if n == 0 or k < 2:
        return parts
    vwgt = graph.vwgt
    total = float(vwgt.sum())
    if capacities is None:
        capacities = np.ones(k, dtype=np.float64)
    cap = total * capacities / capacities.sum() * (1.0 + tolerance)
    cap = np.maximum(cap, float(vwgt.max()))
    if arch_distance is None:
        dist = np.ones((k, k), dtype=np.float64)
        np.fill_diagonal(dist, 0.0)
    else:
        dist = np.asarray(arch_distance, dtype=np.float64)
    if fixed is None:
        fixed = np.zeros(n, dtype=bool)

    from scipy.sparse import csr_matrix

    src = np.repeat(np.arange(n), np.diff(graph.xadj))
    adj = csr_matrix(
        (graph.adjwgt, graph.adjncy, graph.xadj), shape=(n, n)
    )

    def connectivity() -> np.ndarray:
        conn = np.zeros((n, k), dtype=np.float64)
        np.add.at(conn, (src, parts[graph.adjncy]), graph.adjwgt)
        return conn

    conn = connectivity()
    weights = np.bincount(parts, weights=vwgt, minlength=k).astype(np.float64)

    def update_after(v: int) -> None:
        """Refresh connectivity rows of v's neighbours (v changed part)."""
        nbrs = graph.neighbors(v)
        conn[nbrs] = 0.0
        for u in nbrs:
            lo, hi = graph.xadj[u], graph.xadj[u + 1]
            np.add.at(
                conn[u], parts[graph.adjncy[lo:hi]], graph.adjwgt[lo:hi]
            )

    for _ in range(max(1, max_rounds)):
        # cost[v, q]: v's edge cost if v lived in part q.
        cost = conn @ dist.T
        any_swap = False
        for p in range(k):
            in_p = np.flatnonzero((parts == p) & ~fixed)
            if len(in_p) == 0:
                continue
            for q in range(p + 1, k):
                in_q = np.flatnonzero((parts == q) & ~fixed)
                if len(in_q) == 0:
                    continue
                gain_u = cost[in_p, p] - cost[in_p, q]  # u: p -> q
                gain_v = cost[in_q, q] - cost[in_q, p]  # v: q -> p
                pair_gain = gain_u[:, None] + gain_v[None, :]
                # Correct for the u-v edge counted by both sides.
                if dist[p, q] != 0.0:
                    uv_w = adj[in_p][:, in_q].toarray()
                    pair_gain -= 2.0 * dist[p, q] * uv_w
                # Cap feasibility of the exchange (only the delta moves).
                delta = vwgt[in_q][None, :] - vwgt[in_p][:, None]
                ok = (weights[p] + delta <= cap[p]) & (
                    weights[q] - delta <= cap[q]
                )
                pair_gain = np.where(ok, pair_gain, -np.inf)
                flat = int(np.argmax(pair_gain))
                i, j = divmod(flat, pair_gain.shape[1])
                if pair_gain[i, j] <= 1e-12:
                    continue
                u, v = int(in_p[i]), int(in_q[j])
                parts[u], parts[v] = q, p
                d = float(vwgt[v] - vwgt[u])
                weights[p] += d
                weights[q] -= d
                update_after(u)
                update_after(v)
                cost = conn @ dist.T
                any_swap = True
        if not any_swap:
            break
    return parts


def kway_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    capacities: np.ndarray | None = None,
    tolerance: float = 0.05,
    arch_distance: np.ndarray | None = None,
    fixed: np.ndarray | None = None,
    alternations: int = 3,
) -> np.ndarray:
    """Alternate greedy relocation and pairwise exchange to a fixpoint.

    Moves and swaps escape each other's local optima: relocation stalls on
    cap-blocked moves that an exchange can realise, and an exchange opens
    headroom that unlocks further single moves.  Alternation is bounded and
    stops early once neither pass changes the partition.
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    for _ in range(max(1, alternations)):
        before = parts
        parts = greedy_kway_refine(
            graph, parts, k, capacities, tolerance,
            arch_distance=arch_distance, fixed=fixed,
        )
        parts = kway_swap_refine(
            graph, parts, k, capacities, tolerance,
            arch_distance=arch_distance, fixed=fixed,
        )
        if np.array_equal(parts, before):
            break
    return parts


def refined_cut(graph: CSRGraph, parts: np.ndarray) -> float:
    """Convenience: edge cut after refinement (re-exported for tests)."""
    return edge_cut(graph, parts)
