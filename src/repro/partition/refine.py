"""Partition refinement: Fiduccia–Mattheyses for bisections, greedy k-way.

The FM pass moves one vertex at a time, always the highest-gain *feasible*
move, allowing negative-gain moves (hill climbing) and rolling back to the
best prefix at the end of the pass.  Feasible means the receiving part stays
under its weight cap — unless the partition is currently unbalanced, in
which case only moves out of the overweight part are allowed (balance
restoration takes priority, as in METIS).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from .metrics import edge_cut


def fm_bisection_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    f0: float,
    tolerance: float,
    max_passes: int = 8,
    max_moves_per_pass: int | None = None,
) -> np.ndarray:
    """Refine a bisection in place-ish (returns the refined copy)."""
    if not 0.0 < f0 < 1.0:
        raise PartitionError(f"part-0 fraction must be in (0, 1), got {f0}")
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n_vertices
    if n == 0:
        return parts
    total = float(graph.vwgt.sum())
    cap = np.array(
        [f0 * total * (1.0 + tolerance), (1.0 - f0) * total * (1.0 + tolerance)]
    )
    # Caps must admit at least the heaviest single vertex, or nothing can move.
    cap = np.maximum(cap, float(graph.vwgt.max()))
    limit = max_moves_per_pass if max_moves_per_pass is not None else n

    for _ in range(max_passes):
        improved = _fm_pass(graph, parts, cap, limit)
        if not improved:
            break
    return parts


def _fm_pass(
    graph: CSRGraph, parts: np.ndarray, cap: np.ndarray, limit: int
) -> bool:
    n = graph.n_vertices
    vwgt = graph.vwgt
    weights = np.bincount(parts, weights=vwgt, minlength=2).astype(np.float64)

    # gain[v]: cut reduction if v switches sides = ext(v) - int(v).
    gain = np.zeros(n, dtype=np.float64)
    for v in range(n):
        nbrs = graph.neighbors(v)
        w = graph.neighbor_weights(v)
        same = parts[nbrs] == parts[v]
        gain[v] = float(w[~same].sum() - w[same].sum())

    stamp = np.zeros(n, dtype=np.int64)
    moved = np.zeros(n, dtype=bool)
    heaps: list[list[tuple[float, int, int]]] = [[], []]  # per source side

    def push(v: int) -> None:
        heapq.heappush(heaps[parts[v]], (-gain[v], int(stamp[v]), int(v)))

    for v in range(n):
        push(v)

    def pop_feasible() -> int | None:
        """Best feasible move across both heaps (lazy invalidation)."""
        overweight = [weights[s] > cap[s] for s in (0, 1)]
        must_drain = 0 if overweight[0] else 1 if overweight[1] else None
        candidates: list[tuple[float, int]] = []  # (neg_gain, side)
        for side in (0, 1):
            if must_drain is not None and side != must_drain:
                continue
            h = heaps[side]
            while h:
                neg_g, st, v = h[0]
                if moved[v] or st != stamp[v] or parts[v] != side:
                    heapq.heappop(h)
                    continue
                dest = 1 - side
                if (
                    must_drain is None
                    and weights[dest] + vwgt[v] > cap[dest]
                ):
                    # Infeasible right now; try the next-best on this side by
                    # popping it into a stash? Keeping it simple: skip this
                    # side this round (it will retry after weights change).
                    break
                candidates.append((neg_g, side))
                break
        if not candidates:
            return None
        neg_g, side = min(candidates)
        _, _, v = heapq.heappop(heaps[side])
        return v

    def feasible() -> bool:
        return weights[0] <= cap[0] and weights[1] <= cap[1]

    seq: list[int] = []
    cum = 0.0
    # Best prefix is chosen lexicographically: a balanced state always beats
    # an unbalanced one (otherwise rolling back to the highest-gain prefix
    # would undo balance-restoring moves that have negative cut gain).
    initial_feasible = feasible()
    best_key = (initial_feasible, 0.0)
    best_len = 0
    for _ in range(limit):
        v = pop_feasible()
        if v is None:
            break
        src = int(parts[v])
        dst = 1 - src
        cum += gain[v]
        moved[v] = True
        parts[v] = dst
        weights[src] -= vwgt[v]
        weights[dst] += vwgt[v]
        seq.append(v)
        # Update neighbour gains: edge (v,u) changed sides relative to u.
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            if moved[u]:
                continue
            if parts[u] == dst:
                gain[u] -= 2.0 * w
            else:
                gain[u] += 2.0 * w
            stamp[u] += 1
            push(int(u))
        key = (feasible(), cum)
        if key > (best_key[0], best_key[1] + 1e-12):
            best_key = key
            best_len = len(seq)

    # Roll back moves past the best prefix.
    for v in seq[best_len:]:
        w = vwgt[v]
        weights[parts[v]] -= w
        parts[v] = 1 - parts[v]
        weights[parts[v]] += w
    return best_key[1] > 1e-12 or (best_key[0] and not initial_feasible)


def greedy_kway_refine(
    graph: CSRGraph,
    parts: np.ndarray,
    k: int,
    capacities: np.ndarray | None = None,
    tolerance: float = 0.05,
    arch_distance: np.ndarray | None = None,
    passes: int = 4,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy boundary refinement for k-way partitions.

    Each pass scans boundary vertices and applies the single best
    feasible relocation per vertex.  With ``arch_distance`` the gain is the
    *mapping cost* reduction (NUMA-aware); otherwise plain edge cut.
    Vertices flagged in ``fixed`` never move (anchored repartitioning).
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.n_vertices
    if n == 0 or k == 1:
        return parts
    vwgt = graph.vwgt
    total = float(vwgt.sum())
    if capacities is None:
        capacities = np.ones(k, dtype=np.float64)
    cap = total * capacities / capacities.sum() * (1.0 + tolerance)
    cap = np.maximum(cap, float(vwgt.max()) if n else 0.0)
    weights = np.bincount(parts, weights=vwgt, minlength=k).astype(np.float64)

    if arch_distance is None:
        arch = np.ones((k, k), dtype=np.float64)
        np.fill_diagonal(arch, 0.0)
    else:
        # SLIT-style matrix: diagonal (local) is the cheapest, so keeping an
        # edge internal is always preferred, weighted by socket proximity.
        arch = np.asarray(arch_distance, dtype=np.float64)

    if fixed is None:
        fixed = np.zeros(n, dtype=bool)

    for _ in range(max(1, passes)):
        any_move = False
        for v in range(n):
            if fixed[v]:
                continue
            nbrs = graph.neighbors(v)
            if len(nbrs) == 0:
                continue
            wgts = graph.neighbor_weights(v)
            p = int(parts[v])
            nbr_parts = parts[nbrs]
            if np.all(nbr_parts == p):
                continue  # interior vertex
            # Connectivity of v to each part.
            conn = np.zeros(k, dtype=np.float64)
            np.add.at(conn, nbr_parts, wgts)
            # Current cost contribution of v's edges.
            cur_cost = float((wgts * arch[p, nbr_parts]).sum())
            best_part, best_cost = p, cur_cost
            for q in np.unique(nbr_parts):
                q = int(q)
                if q == p:
                    continue
                if weights[q] + vwgt[v] > cap[q]:
                    continue
                cost = float((wgts * arch[q, nbr_parts]).sum())
                if cost < best_cost - 1e-12:
                    best_cost, best_part = cost, q
            if best_part != p:
                parts[v] = best_part
                weights[p] -= vwgt[v]
                weights[best_part] += vwgt[v]
                any_move = True
        if not any_move:
            break
    return parts


def refined_cut(graph: CSRGraph, parts: np.ndarray) -> float:
    """Convenience: edge cut after refinement (re-exported for tests)."""
    return edge_cut(graph, parts)
