"""Hierarchical (two-level) partitioning for cluster machines.

A cluster's architecture graph is itself hierarchical: sockets cluster
into boxes behind NICs, and the socket-to-socket distance matrix has
three levels (intra-socket < inter-socket < network).  Flat k-way
partitioning over all sockets *can* see that structure through the
distance matrix, but it optimises all levels at once with one balance
constraint; the hierarchy in the machine suggests partitioning the way
SCOTCH maps onto tree architectures — cut the task graph across boxes
first (where edges are most expensive), then recurse into each box and
cut its share across the box's sockets.

:class:`HierarchicalPartitioner` does exactly that, reusing any inner
architecture-aware partitioner (default: the dual recursive bisection
stand-in) at both levels:

1. **across groups** — partition the graph into ``n_groups`` parts
   against a *group-level* architecture (group distance = distance
   between member sockets, capacity = summed socket capacities), so the
   expensive network cut is minimised under box-level balance;
2. **within each group** — take each group's induced subgraph and
   partition it across the group's own sockets with the intra-group
   distance matrix.

On a single-box machine every socket forms its own group and the scheme
degenerates to the flat partitioner.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from .interface import (
    DEFAULT_TOLERANCE,
    PartitionResult,
    Partitioner,
    TargetArchitecture,
    partition_onto,
)
from .recursive import DualRecursiveBipartitioner
from .refine import greedy_kway_refine


def topology_groups(topology) -> list[list[int]]:
    """Socket groups of a machine: one group per cluster box.

    Single-box machines (no ``n_boxes``) yield one singleton group per
    socket, which makes :class:`HierarchicalPartitioner` equivalent to
    its top-level pass alone.
    """
    n_boxes = getattr(topology, "n_boxes", 1)
    if n_boxes > 1:
        return [list(topology.sockets_of_box(b)) for b in range(n_boxes)]
    return [[s] for s in range(topology.n_sockets)]


def _contract_dominant(
    graph: CSRGraph, weight_limit: float, dominance: float = 1.0
) -> tuple[np.ndarray, CSRGraph]:
    """Contract every vertex into its dominant neighbour, transitively.

    A neighbour is *dominant* when its edge outweighs ``dominance`` times
    the rest of the vertex's incident weight.  Returns the cluster id of
    every vertex and the contracted graph (cluster vertices, coalesced
    edges, summed vertex weights).  Unions stop at ``weight_limit`` so a
    long chain cannot snowball past what one group can balance.
    """
    n = graph.n_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    cluster_w = graph.vwgt.astype(np.float64).copy()
    for v in range(n):
        wts = graph.neighbor_weights(v)
        if len(wts) == 0:
            continue
        imax = int(np.argmax(wts))
        rest = float(wts.sum() - wts[imax])
        if float(wts[imax]) <= dominance * rest:
            continue
        a, b = find(v), find(int(graph.neighbors(v)[imax]))
        if a == b or cluster_w[a] + cluster_w[b] > weight_limit:
            continue
        parent[b] = a
        cluster_w[a] += cluster_w[b]

    roots = np.array([find(v) for v in range(n)], dtype=np.int64)
    uniq, cluster_of = np.unique(roots, return_inverse=True)
    vwgt = np.zeros(len(uniq), dtype=np.float64)
    np.add.at(vwgt, cluster_of, graph.vwgt)
    edges: list[tuple[int, int, float]] = []
    for v in range(n):
        cv = cluster_of[v]
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            if u > v and cluster_of[u] != cv:
                edges.append((int(cv), int(cluster_of[u]), float(w)))
    return cluster_of, CSRGraph.from_edges(len(uniq), edges, vwgt)


class HierarchicalPartitioner(Partitioner):
    """Two-level partitioner: across socket groups, then within each."""

    name = "hier"

    def __init__(
        self,
        groups: list[list[int]],
        inner: Partitioner | None = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        super().__init__(tolerance=tolerance)
        if not groups:
            raise PartitionError("need at least one socket group")
        seen: set[int] = set()
        for g in groups:
            if not g:
                raise PartitionError("socket groups must be non-empty")
            if seen & set(g):
                raise PartitionError("socket groups must be disjoint")
            seen |= set(g)
        k = sum(len(g) for g in groups)
        if seen != set(range(k)):
            raise PartitionError(
                f"groups must cover sockets 0..{k - 1} exactly, got {sorted(seen)}"
            )
        self.groups = [sorted(g) for g in groups]
        self.inner = inner or DualRecursiveBipartitioner(tolerance=tolerance)

    @classmethod
    def for_topology(
        cls, topology, inner: Partitioner | None = None, **kwargs
    ) -> "HierarchicalPartitioner":
        return cls(topology_groups(topology), inner=inner, **kwargs)

    # ------------------------------------------------------------------
    def _group_target(self, target: TargetArchitecture) -> TargetArchitecture:
        """Collapse the socket architecture to one vertex per group.

        Group distance is the mean over cross-group socket pairs (on a
        cluster matrix all such pairs are equal — the network tier);
        intra-group distance is the mean over the group's own pairs.
        """
        g = len(self.groups)
        dist = np.zeros((g, g), dtype=np.float64)
        cap = np.zeros(g, dtype=np.float64)
        for i, gi in enumerate(self.groups):
            cap[i] = float(target.capacity[gi].sum())
            dist[i, i] = float(target.distance[np.ix_(gi, gi)].mean())
            for j in range(i + 1, g):
                gj = self.groups[j]
                d = float(target.distance[np.ix_(gi, gj)].mean())
                dist[i, j] = dist[j, i] = d
        return TargetArchitecture(distance=dist, capacity=cap)

    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        self._check_k(graph, k)
        n_sockets = sum(len(g) for g in self.groups)
        if k != n_sockets:
            raise PartitionError(
                f"hierarchical partitioner is built for {n_sockets} sockets, "
                f"asked for k={k}"
            )
        if target is None:
            target = TargetArchitecture.uniform(k)
        if target.k != k:
            raise PartitionError(
                f"target architecture has {target.k} parts, requested {k}"
            )
        # Observer wiring flows down so multilevel phases surface as usual.
        self.inner.observer = self.observer

        # Level 1: across groups (boxes) — the expensive cut.  Dominant
        # edges (a vertex bound to one neighbour by more weight than to
        # everything else combined — producer/consumer chains) are
        # pre-contracted so the group cut can never separate them: once a
        # chain is split across groups, no within-group refinement can
        # ever rejoin it, and on a double-buffered stencil the split costs
        # network bandwidth on every sweep.
        n_groups = len(self.groups)
        if n_groups == 1:
            group_parts = np.zeros(graph.n_vertices, dtype=np.int64)
        else:
            limit = 0.5 * graph.total_vertex_weight * float(
                target.capacity.min() * max(len(g) for g in self.groups)
            ) / float(target.capacity.sum())
            cluster_of, coarse = _contract_dominant(graph, limit)
            # partition_onto: pre-contraction can leave fewer clusters
            # than groups on tiny or chain-dominated windows.
            top = partition_onto(
                self.inner, coarse, n_groups,
                target=self._group_target(target), seed=seed,
            )
            group_parts = np.asarray(top.parts, dtype=np.int64)[cluster_of]

        # Level 2: within each group, over its own sockets.
        parts = np.zeros(graph.n_vertices, dtype=np.int64)
        for gi, sockets in enumerate(self.groups):
            members = np.flatnonzero(group_parts == gi)
            if len(members) == 0:
                continue
            if len(sockets) == 1:
                parts[members] = sockets[0]
                continue
            sub, old_ids = graph.induced_subgraph(members)
            sub_target = TargetArchitecture(
                distance=target.distance[np.ix_(sockets, sockets)],
                capacity=target.capacity[sockets],
            )
            inner_res = partition_onto(
                self.inner, sub, len(sockets),
                target=sub_target, seed=seed + gi + 1,
            )
            socket_ids = np.asarray(sockets, dtype=np.int64)
            parts[old_ids] = socket_ids[inner_res.parts]

        # Final full-k repair pass: the level-1 cut fixes box membership
        # before level 2 ever sees socket distances, so a chain split at a
        # group boundary stays split across the network — no within-group
        # refinement can move it back.  A mapping-cost-aware boundary pass
        # over all sockets fixes exactly those mistakes.
        parts = greedy_kway_refine(
            graph, parts, k,
            capacities=target.capacity,
            tolerance=self.tolerance,
            arch_distance=target.distance,
        )
        parts = self._swap_repair(graph, parts, k, target)
        return PartitionResult(parts=parts, k=k)

    def _swap_repair(
        self,
        graph: CSRGraph,
        parts: np.ndarray,
        k: int,
        target: TargetArchitecture,
    ) -> np.ndarray:
        """Swap-based repair of capacity-locked cross-group splits.

        A heavy producer/consumer pair split across groups often cannot be
        rejoined by single-vertex relocation: both sockets sit at capacity,
        so every move is infeasible and the greedy pass stalls.  This pass
        finds vertices whose dominant edge crosses groups and *swaps* them
        with a low-connectivity vertex from the target socket, keeping
        balance while collapsing the expensive cut.
        """
        parts = np.asarray(parts, dtype=np.int64).copy()
        dist = target.distance
        vwgt = graph.vwgt
        total = float(vwgt.sum())
        cap = total * target.capacity / target.capacity.sum()
        cap = np.maximum(cap * (1.0 + self.tolerance), vwgt.max() if len(vwgt) else 0.0)
        weights = np.bincount(parts, weights=vwgt, minlength=k).astype(np.float64)
        group_of = np.zeros(k, dtype=np.int64)
        for gi, sockets in enumerate(self.groups):
            group_of[sockets] = gi

        def move_gain(v: int, src: int, dst: int) -> float:
            g = 0.0
            for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
                g += w * (dist[src, parts[u]] - dist[dst, parts[u]])
            return g

        for v in np.argsort(-vwgt, kind="stable"):
            v = int(v)
            src = int(parts[v])
            # Dominant neighbour socket in another group.
            pull: dict[int, float] = {}
            for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
                p = int(parts[u])
                if group_of[p] != group_of[src]:
                    pull[p] = pull.get(p, 0.0) + float(w)
            if not pull:
                continue
            dst = max(pull, key=lambda p: (pull[p], -p))
            gain_v = move_gain(v, src, dst)
            if gain_v <= 0:
                continue
            if weights[dst] + vwgt[v] <= cap[dst]:
                parts[v] = dst
                weights[src] -= vwgt[v]
                weights[dst] += vwgt[v]
                continue
            # Capacity-locked: find the cheapest counterpart to swap out.
            best_u, best_total = -1, 0.0
            for u in np.flatnonzero(parts == dst):
                u = int(u)
                if u == v:
                    continue
                if (
                    weights[dst] - vwgt[u] + vwgt[v] > cap[dst]
                    or weights[src] - vwgt[v] + vwgt[u] > cap[src]
                ):
                    continue
                t = gain_v + move_gain(u, dst, src)
                if t > best_total:
                    best_u, best_total = u, t
            if best_u >= 0:
                parts[v], parts[best_u] = dst, src
                weights[src] += vwgt[best_u] - vwgt[v]
                weights[dst] += vwgt[v] - vwgt[best_u]
        return parts
