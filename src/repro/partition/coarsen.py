"""Graph coarsening by heavy-edge matching (the multilevel 'V' descent).

Heavy-edge matching (HEM) visits vertices in random order and matches each
unmatched vertex with the unmatched neighbour connected by the heaviest
edge.  Matched pairs collapse into one coarse vertex whose weight is the
pair's sum; parallel coarse edges coalesce, and edges internal to a pair
disappear (they can never be cut again — exactly why HEM preserves heavy
edges inside parts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph


@dataclass(frozen=True, eq=False)
class CoarseningLevel:
    """One level of the multilevel hierarchy."""

    graph: CSRGraph
    #: fine vertex -> coarse vertex
    fine_to_coarse: np.ndarray


def heavy_edge_matching(graph: CSRGraph, rng: np.random.Generator) -> np.ndarray:
    """Return ``match`` where ``match[v]`` is v's partner (or v itself)."""
    n = graph.n_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        nbrs = graph.neighbors(v)
        wgts = graph.neighbor_weights(v)
        best = v  # default: stay single
        best_w = -1.0
        for u, w in zip(nbrs, wgts):
            if match[u] == -1 and u != v and w > best_w:
                best, best_w = int(u), float(w)
        match[v] = best
        match[best] = v if best != v else v
    return match


def coarsen_once(
    graph: CSRGraph, rng: np.random.Generator
) -> CoarseningLevel | None:
    """One HEM coarsening step; ``None`` if the graph barely shrinks.

    Returning ``None`` stops the descent (e.g. star graphs where matching
    saturates), preventing infinite recursion in the multilevel driver.
    """
    n = graph.n_vertices
    match = heavy_edge_matching(graph, rng)

    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    n_coarse = 0
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        partner = match[v]
        fine_to_coarse[v] = n_coarse
        if partner != v:
            fine_to_coarse[partner] = n_coarse
        n_coarse += 1

    if n_coarse >= n or n_coarse > int(0.95 * n):
        return None  # not shrinking usefully

    # Coarse vertex weights.
    cvwgt = np.zeros(n_coarse, dtype=np.float64)
    np.add.at(cvwgt, fine_to_coarse, graph.vwgt)

    # Coarse edges: remap endpoints, drop internal, coalesce duplicates.
    src = np.repeat(np.arange(n), np.diff(graph.xadj))
    csrc = fine_to_coarse[src]
    cdst = fine_to_coarse[graph.adjncy]
    keep = (csrc < cdst)  # one direction only; drops internal (==) edges
    edges: dict[tuple[int, int], float] = {}
    for u, v, w in zip(csrc[keep], cdst[keep], graph.adjwgt[keep]):
        key = (int(u), int(v))
        edges[key] = edges.get(key, 0.0) + float(w)
    coarse = CSRGraph.from_edges(
        n_coarse, [(u, v, w) for (u, v), w in edges.items()], cvwgt
    )
    return CoarseningLevel(graph=coarse, fine_to_coarse=fine_to_coarse)


def coarsen_to(
    graph: CSRGraph,
    max_vertices: int,
    rng: np.random.Generator,
    max_levels: int = 40,
) -> list[CoarseningLevel]:
    """Coarsen repeatedly until ``max_vertices`` or no progress.

    Returns the hierarchy, finest first.  The caller partitions the last
    level's graph and projects back through ``fine_to_coarse`` maps.
    """
    levels: list[CoarseningLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.n_vertices <= max_vertices:
            break
        level = coarsen_once(current, rng)
        if level is None:
            break
        levels.append(level)
        current = level.graph
    return levels
