"""Multilevel bisection and multilevel recursive k-way partitioning.

The classic METIS-style pipeline:

1. **Coarsen** by heavy-edge matching until the graph is small;
2. **Initial bisection** of the coarsest graph (greedy graph growing);
3. **Uncoarsen**, projecting the bisection up and running FM refinement at
   every level.

k-way partitions are produced by recursive bisection: split ``k`` into
``k0 = ceil(k/2)`` / ``k1 = k - k0``, bisect with target fractions equal to
the aggregate capacity of each half, extract the two vertex subsets and
recurse.  This is also the skeleton the SCOTCH-style mapper
(:mod:`repro.partition.recursive`) reuses with an architecture-aware split.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from .coarsen import coarsen_to
from .initial import component_packing_bisection, greedy_graph_growing
from .interface import (
    DEFAULT_TOLERANCE,
    Partitioner,
    PartitionResult,
    TargetArchitecture,
)
from .metrics import edge_cut
from .refine import fm_bisection_refine, kway_refine


class MultilevelKWay(Partitioner):
    """Multilevel recursive-bisection k-way partitioner (METIS-like).

    Distance-oblivious: minimises edge cut under the balance constraint.
    ``target`` capacities are honoured; its distance matrix is only used by
    the final k-way refinement pass if ``arch_refine`` is set.
    """

    name = "multilevel"

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        coarse_size: int = 64,
        n_initial_trials: int = 4,
        arch_refine: bool = False,
    ) -> None:
        super().__init__(tolerance)
        if coarse_size < 2:
            raise PartitionError("coarse_size must be >= 2")
        self.coarse_size = int(coarse_size)
        self.n_initial_trials = int(n_initial_trials)
        self.arch_refine = bool(arch_refine)
        #: Per-bisection tolerance set by partition() (None -> tolerance).
        self._level_tol: float | None = None

    # ------------------------------------------------------------------
    def bisect(
        self, graph: CSRGraph, f0: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Full multilevel bisection (coarsen -> initial -> refine up)."""
        n = graph.n_vertices
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        observer = self.observer
        tol = self._level_tol if self._level_tol is not None else self.tolerance
        t0 = time.perf_counter() if observer is not None else 0.0
        hierarchy = coarsen_to(graph, max_vertices=self.coarse_size, rng=rng)

        graphs = [graph] + [lvl.graph for lvl in hierarchy]
        coarsest = graphs[-1]
        if observer is not None:
            observer(
                "coarsen",
                levels=len(hierarchy), n_fine=n,
                n_coarse=coarsest.n_vertices,
                host_us=(time.perf_counter() - t0) * 1e6,
            )
        parts = greedy_graph_growing(
            coarsest, f0, rng, n_trials=self.n_initial_trials
        )
        parts = fm_bisection_refine(coarsest, parts, f0, tol)
        # Disconnected (positive-weight) graphs: GGG stops mid-component,
        # so also try packing whole components and keep the better bisection.
        packed = component_packing_bisection(coarsest, f0)
        if packed is not None:
            packed = fm_bisection_refine(coarsest, packed, f0, tol)
            if _bisection_key(coarsest, packed, f0, tol) < _bisection_key(
                coarsest, parts, f0, tol
            ):
                parts = packed
        if observer is not None:
            observer(
                "initial",
                n_vertices=coarsest.n_vertices,
                cut=edge_cut(coarsest, parts),
            )
        # Walk back to the finest level.
        for level_idx in range(len(hierarchy) - 1, -1, -1):
            level = hierarchy[level_idx]
            fine_graph = graphs[level_idx]
            parts = parts[level.fine_to_coarse]
            parts = fm_bisection_refine(fine_graph, parts, f0, tol)
            if observer is not None:
                observer(
                    "refine",
                    level=level_idx, n_vertices=fine_graph.n_vertices,
                    cut=edge_cut(fine_graph, parts),
                )
        return parts

    def _level_tolerance(self, k: int) -> float:
        """Per-bisection tolerance so the compounded k-way imbalance stays
        within ``self.tolerance`` ((1+t)^levels <= 1+tolerance)."""
        levels = max(1, int(np.ceil(np.log2(max(k, 2)))))
        return (1.0 + self.tolerance) ** (1.0 / levels) - 1.0

    def partition(
        self,
        graph: CSRGraph,
        k: int,
        *,
        target: TargetArchitecture | None = None,
        seed: int = 0,
    ) -> PartitionResult:
        self._check_k(graph, k)
        capacities = self._capacities(k, target)
        rng = np.random.default_rng(seed)
        parts = np.zeros(graph.n_vertices, dtype=np.int64)
        self._level_tol = self._level_tolerance(k)
        self._recurse(graph, np.arange(graph.n_vertices), list(range(k)),
                      capacities, parts, rng)
        if self.arch_refine and target is not None and k > 1:
            parts = kway_refine(
                graph, parts, k, capacities, self.tolerance,
                arch_distance=target.distance,
            )
        elif k > 1:
            parts = kway_refine(
                graph, parts, k, capacities, self.tolerance
            )
        return PartitionResult(parts=parts, k=k)

    # ------------------------------------------------------------------
    def _recurse(
        self,
        graph: CSRGraph,
        vertex_ids: np.ndarray,
        part_ids: list[int],
        capacities: np.ndarray,
        out_parts: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Assign ``graph`` (global ids ``vertex_ids``) to ``part_ids``."""
        if len(part_ids) == 1:
            out_parts[vertex_ids] = part_ids[0]
            return
        half = self._split_parts(part_ids)
        cap0 = capacities[half[0]].sum()
        cap1 = capacities[half[1]].sum()
        f0 = cap0 / (cap0 + cap1)
        sides = self.bisect(graph, f0, rng)
        for side, ids in enumerate(half):
            mask = sides == side
            if not np.any(mask):
                # Degenerate split (e.g. one huge vertex): dump everything on
                # the first part of the other half later; here just recurse
                # with an empty subgraph.
                sub = CSRGraph.from_edges(0, [], np.zeros(0))
                self._recurse(sub, vertex_ids[mask], ids, capacities,
                              out_parts, rng)
                continue
            sub = _extract_subgraph(graph, mask)
            self._recurse(sub, vertex_ids[mask], ids, capacities,
                          out_parts, rng)

    def _split_parts(self, part_ids: list[int]) -> tuple[list[int], list[int]]:
        """How to divide the part-id set at this recursion level.

        Plain recursive bisection splits the id list in half; the
        architecture-aware subclass overrides this with a distance-based
        clustering of sockets.
        """
        mid = (len(part_ids) + 1) // 2
        return part_ids[:mid], part_ids[mid:]


def _bisection_key(
    graph: CSRGraph, parts: np.ndarray, f0: float, tol: float
) -> tuple[float, float, float]:
    """Candidate ranking: least cap violation first, then cut, then drift.

    Violation-first (not merely feasible-first) matters: between two
    infeasible candidates a zero-cut one that dumps 95% of the weight on
    one side must lose to a mildly-over-cap one the downstream refiners
    can actually repair.
    """
    total = float(graph.vwgt.sum())
    w0 = float(graph.vwgt[parts == 0].sum())
    cap0 = f0 * total * (1.0 + tol)
    cap1 = (1.0 - f0) * total * (1.0 + tol)
    vmax = float(graph.vwgt.max()) if graph.n_vertices else 0.0
    violation = max(0.0, w0 - max(cap0, vmax)) + max(
        0.0, (total - w0) - max(cap1, vmax)
    )
    return (violation, edge_cut(graph, parts), abs(w0 - f0 * total))


def _extract_subgraph(graph: CSRGraph, mask: np.ndarray) -> CSRGraph:
    """Induced subgraph on ``mask`` (boolean over vertices)."""
    idx = np.flatnonzero(mask)
    remap = np.full(graph.n_vertices, -1, dtype=np.int64)
    remap[idx] = np.arange(len(idx))
    edges: list[tuple[int, int, float]] = []
    for new_u, old_u in enumerate(idx):
        lo, hi = graph.xadj[old_u], graph.xadj[old_u + 1]
        for old_v, w in zip(graph.adjncy[lo:hi], graph.adjwgt[lo:hi]):
            new_v = remap[old_v]
            if new_v > new_u:  # each edge once
                edges.append((new_u, int(new_v), float(w)))
    return CSRGraph.from_edges(len(idx), edges, graph.vwgt[idx])
