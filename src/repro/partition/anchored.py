"""Anchored partitioning: partition a subgraph around fixed vertices.

Used by RGP's *repartition* propagation: when a later window is
partitioned, tasks outside the window that already have a socket (placed
by an earlier partition or by propagation) appear as **anchor** vertices —
they pull their window neighbours towards their socket but can never move.

Algorithm:

1. partition the *whole* subgraph (anchors as ordinary vertices), so
   connectivity to anchors shapes the parts;
2. relabel parts to sockets with an optimal assignment (Hungarian) that
   maximises the anchor weight landing on its required socket — the part
   ids a partitioner returns are arbitrary, the anchors make them not be;
3. clamp anchors to their sockets and run the anchored greedy k-way
   refinement (mapping-cost aware) with them fixed.

The relabelling step is what avoids the classic pairwise local minimum: a
chain segment attached to an anchor moves as a whole part, not one vertex
at a time.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..errors import PartitionError
from ..graph.csr import CSRGraph
from .interface import (
    PartitionResult,
    Partitioner,
    TargetArchitecture,
    partition_onto,
)
from .refine import greedy_kway_refine


def partition_with_anchors(
    graph: CSRGraph,
    k: int,
    anchors: dict[int, int],
    partitioner: Partitioner,
    *,
    target: TargetArchitecture | None = None,
    seed: int = 0,
    refine_passes: int = 4,
) -> PartitionResult:
    """Partition ``graph`` with ``anchors`` (vertex -> part) held fixed.

    Anchor vertex weights do not count against the balance constraint of
    the free vertices (anchors represent work already placed elsewhere).
    """
    n = graph.n_vertices
    for v, p in anchors.items():
        if not 0 <= v < n:
            raise PartitionError(f"anchor vertex {v} out of range")
        if not 0 <= p < k:
            raise PartitionError(f"anchor part {p} out of range")

    fixed = np.zeros(n, dtype=bool)
    for v in anchors:
        fixed[v] = True

    # 1. Partition everything; anchors participate so connectivity counts.
    # (partition_onto: a late window plus its anchors can still be smaller
    # than the machine.)
    base = partition_onto(partitioner, graph, k, target=target, seed=seed)
    parts = np.asarray(base.parts, dtype=np.int64).copy()

    # 2. Optimal part -> socket relabelling by anchor affinity.  An
    # anchor's pull is its total incident edge weight (the bytes that would
    # go remote if its part landed on the wrong socket).
    if anchors:
        affinity = np.zeros((k, k))
        for v, socket in anchors.items():
            pull = float(graph.neighbor_weights(v).sum()) + 1.0
            affinity[parts[v], socket] += pull
        rows, cols = linear_sum_assignment(-affinity)
        relabel = np.arange(k)
        relabel[rows] = cols
        parts = relabel[parts]
        # 3. Clamp anchors (a part may hold anchors of several sockets).
        for v, socket in anchors.items():
            parts[v] = socket

    capacities = target.capacity if target is not None else None
    arch = target.distance if target is not None else None
    refined = greedy_kway_refine(
        graph, parts, k,
        capacities=capacities,
        tolerance=getattr(partitioner, "tolerance", 0.05),
        arch_distance=arch,
        passes=refine_passes,
        fixed=fixed,
    )
    # Anchors must not have moved.  A real error, not an ``assert``: the
    # check guards against a refinement bug silently unpinning placed
    # tasks, and must survive ``python -O``.
    moved = {v: int(refined[v]) for v, p in anchors.items() if refined[v] != p}
    if moved:
        raise PartitionError(
            f"refinement moved {len(moved)} anchor(s): "
            + ", ".join(
                f"v{v}: {anchors[v]} -> {p}"
                for v, p in sorted(moved.items())[:5]
            )
        )
    return PartitionResult(parts=refined, k=k)
