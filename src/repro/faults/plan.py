"""Declarative fault plans: *what* goes wrong, *when*, and for *how long*.

A :class:`FaultPlan` is a pure description — it holds no simulator state —
so the same plan can be replayed against any (program, topology, policy)
combination, serialised to JSON for experiment configs, and diffed in
version control.  The :mod:`repro.faults.injector` turns a plan into timer
events on a live :class:`~repro.runtime.simulator.Simulator`.

Five fault families (DESIGN.md §7):

* :class:`CoreFault` — a core dies at ``at`` (permanently, or for
  ``duration`` simulated time units).  A task running on it crashes and is
  re-executed elsewhere; queued work is re-offered.
* :class:`CoreSlowdown` — a straggler: the core's compute rate is divided
  by ``factor`` (2.0 = half speed) from ``at`` on (or for ``duration``).
* :class:`TaskCrash` — each task attempt whose name contains ``match``
  (or every attempt, if ``match`` is None) crashes with ``probability``,
  part-way through its nominal duration (``at_fraction``).
* :class:`NodeDegradation` — memory node ``node`` serves bandwidth scaled
  by ``factor`` (0.5 = half bandwidth) from ``at`` on (or for ``duration``).
* ``partition_timeout`` — the window partition result is declared lost if
  it has not arrived by this simulated time; partition-based schedulers
  fall back to their propagation policy (see :mod:`repro.core.rgp`).

Two cluster-only families (DESIGN.md §15; require a
:class:`~repro.machine.topology.ClusterTopology`):

* :class:`NodeLoss` — box ``box`` drops out of the cluster at ``at``:
  every core of the box fails (permanently, or for ``duration``), its
  running tasks crash, in-flight messages to/from it are dropped, and
  survivors are remapped by machine distance.
* :class:`NetworkDegradation` — box ``box``'s NIC serves ``factor``× its
  bandwidth from ``at`` on (or for ``duration``): a congested or flapping
  network link, distinct from the box's memory nodes degrading.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from ..errors import FaultError


def _check_time(label: str, at: float) -> None:
    if at < 0:
        raise FaultError(f"{label}: fault time must be >= 0, got {at}")


def _check_duration(label: str, duration: float | None) -> None:
    if duration is not None and duration <= 0:
        raise FaultError(
            f"{label}: duration must be positive (or None = permanent), "
            f"got {duration}"
        )


@dataclass(frozen=True)
class CoreFault:
    """Core ``core`` fails at time ``at``; ``duration=None`` is permanent."""

    core: int
    at: float
    duration: float | None = None

    def __post_init__(self) -> None:
        _check_time(f"CoreFault(core={self.core})", self.at)
        _check_duration(f"CoreFault(core={self.core})", self.duration)


@dataclass(frozen=True)
class CoreSlowdown:
    """Core ``core`` runs ``factor``× slower from ``at`` (straggler)."""

    core: int
    at: float
    factor: float
    duration: float | None = None

    def __post_init__(self) -> None:
        _check_time(f"CoreSlowdown(core={self.core})", self.at)
        _check_duration(f"CoreSlowdown(core={self.core})", self.duration)
        if self.factor <= 1.0:
            raise FaultError(
                f"CoreSlowdown(core={self.core}): factor must be > 1 "
                f"(slower), got {self.factor}"
            )


@dataclass(frozen=True)
class TaskCrash:
    """Task attempts crash with ``probability`` part-way through.

    ``match`` restricts the fault to tasks whose name contains the
    substring; ``max_crashes`` caps the total number of injected crashes
    (None = unlimited — the simulator's retry limit still bounds the run).
    """

    probability: float
    at_fraction: float = 0.5
    match: str | None = None
    max_crashes: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(
                f"TaskCrash: probability must be in [0, 1], got "
                f"{self.probability}"
            )
        if not 0.0 <= self.at_fraction <= 1.0:
            raise FaultError(
                f"TaskCrash: at_fraction must be in [0, 1], got "
                f"{self.at_fraction}"
            )
        if self.max_crashes is not None and self.max_crashes < 0:
            raise FaultError(
                f"TaskCrash: max_crashes must be >= 0, got {self.max_crashes}"
            )


@dataclass(frozen=True)
class NodeDegradation:
    """Memory node ``node`` serves ``factor``× its bandwidth from ``at``."""

    node: int
    at: float
    factor: float
    duration: float | None = None

    def __post_init__(self) -> None:
        _check_time(f"NodeDegradation(node={self.node})", self.at)
        _check_duration(f"NodeDegradation(node={self.node})", self.duration)
        if not 0.0 < self.factor < 1.0:
            raise FaultError(
                f"NodeDegradation(node={self.node}): factor must be in "
                f"(0, 1), got {self.factor}"
            )


@dataclass(frozen=True)
class NodeLoss:
    """Cluster box ``box`` drops out at ``at``; ``duration=None`` is permanent.

    Expands to a core failure on every core of the box: running attempts
    crash (dropping their in-flight messages), queued work is re-offered,
    and the remap policy routes it to the nearest surviving box by the
    machine distance matrix.
    """

    box: int
    at: float
    duration: float | None = None

    def __post_init__(self) -> None:
        _check_time(f"NodeLoss(box={self.box})", self.at)
        _check_duration(f"NodeLoss(box={self.box})", self.duration)


@dataclass(frozen=True)
class NetworkDegradation:
    """Box ``box``'s NIC serves ``factor``× its bandwidth from ``at``."""

    box: int
    at: float
    factor: float
    duration: float | None = None

    def __post_init__(self) -> None:
        _check_time(f"NetworkDegradation(box={self.box})", self.at)
        _check_duration(f"NetworkDegradation(box={self.box})", self.duration)
        if not 0.0 < self.factor < 1.0:
            raise FaultError(
                f"NetworkDegradation(box={self.box}): factor must be in "
                f"(0, 1), got {self.factor}"
            )


_EVENT_TYPES = {
    "core_faults": CoreFault,
    "slowdowns": CoreSlowdown,
    "task_crashes": TaskCrash,
    "node_degradations": NodeDegradation,
    "node_losses": NodeLoss,
    "network_degradations": NetworkDegradation,
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, replayable fault scenario."""

    core_faults: tuple[CoreFault, ...] = ()
    slowdowns: tuple[CoreSlowdown, ...] = ()
    task_crashes: tuple[TaskCrash, ...] = ()
    node_degradations: tuple[NodeDegradation, ...] = ()
    node_losses: tuple[NodeLoss, ...] = ()
    network_degradations: tuple[NetworkDegradation, ...] = ()
    partition_timeout: float | None = field(default=None)

    def __post_init__(self) -> None:
        for name, cls in _EVENT_TYPES.items():
            events = getattr(self, name)
            if not isinstance(events, tuple):
                object.__setattr__(self, name, tuple(events))
            for ev in getattr(self, name):
                if not isinstance(ev, cls):
                    raise FaultError(
                        f"FaultPlan.{name} expects {cls.__name__} entries, "
                        f"got {type(ev).__name__}"
                    )
        if self.partition_timeout is not None and self.partition_timeout < 0:
            raise FaultError(
                f"partition_timeout must be >= 0, got {self.partition_timeout}"
            )

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all (fault-free)."""
        return (
            not self.core_faults
            and not self.slowdowns
            and not self.task_crashes
            and not self.node_degradations
            and not self.node_losses
            and not self.network_degradations
            and self.partition_timeout is None
        )

    @property
    def n_events(self) -> int:
        return (
            len(self.core_faults)
            + len(self.slowdowns)
            + len(self.task_crashes)
            + len(self.node_degradations)
            + len(self.node_losses)
            + len(self.network_degradations)
            + (self.partition_timeout is not None)
        )

    def validate_against(self, topology) -> None:
        """Range-check core/node ids against a concrete topology."""
        for cf in self.core_faults:
            if not 0 <= cf.core < topology.n_cores:
                raise FaultError(
                    f"CoreFault core {cf.core} out of range "
                    f"[0, {topology.n_cores})"
                )
        for sl in self.slowdowns:
            if not 0 <= sl.core < topology.n_cores:
                raise FaultError(
                    f"CoreSlowdown core {sl.core} out of range "
                    f"[0, {topology.n_cores})"
                )
        for nd in self.node_degradations:
            if not 0 <= nd.node < topology.n_nodes:
                raise FaultError(
                    f"NodeDegradation node {nd.node} out of range "
                    f"[0, {topology.n_nodes})"
                )
        n_boxes = getattr(topology, "n_boxes", 1)
        for nl in self.node_losses:
            if n_boxes <= 1:
                raise FaultError(
                    "NodeLoss faults need a cluster topology (n_boxes > 1); "
                    f"{topology.name!r} is a single box"
                )
            if not 0 <= nl.box < n_boxes:
                raise FaultError(
                    f"NodeLoss box {nl.box} out of range [0, {n_boxes})"
                )
        for nd in self.network_degradations:
            if n_boxes <= 1:
                raise FaultError(
                    "NetworkDegradation faults need a cluster topology "
                    f"(n_boxes > 1); {topology.name!r} is a single box"
                )
            if not 0 <= nd.box < n_boxes:
                raise FaultError(
                    f"NetworkDegradation box {nd.box} out of range "
                    f"[0, {n_boxes})"
                )
        permanent = {cf.core for cf in self.core_faults if cf.duration is None}
        for nl in self.node_losses:
            if nl.duration is None:
                permanent.update(topology.cores_of_box(nl.box))
        if len(permanent) >= topology.n_cores:
            raise FaultError(
                "fault plan permanently kills every core — nothing could "
                "ever finish"
            )

    # ------------------------------------------------------------------
    # Serialisation (JSON round-trip for experiment configs)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {}
        for name in _EVENT_TYPES:
            events = getattr(self, name)
            if events:
                out[name] = [asdict(ev) for ev in events]
        if self.partition_timeout is not None:
            out["partition_timeout"] = self.partition_timeout
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultError(f"fault plan must be a JSON object, got {data!r}")
        known = set(_EVENT_TYPES) | {"partition_timeout"}
        unknown = set(data) - known
        if unknown:
            raise FaultError(
                f"unknown fault plan keys {sorted(unknown)}; known: "
                f"{sorted(known)}"
            )
        kwargs: dict = {}
        for name, ev_cls in _EVENT_TYPES.items():
            entries = data.get(name, [])
            allowed = {f.name for f in fields(ev_cls)}
            parsed = []
            for entry in entries:
                bad = set(entry) - allowed
                if bad:
                    raise FaultError(
                        f"{name} entry has unknown fields {sorted(bad)}"
                    )
                parsed.append(ev_cls(**entry))
            kwargs[name] = tuple(parsed)
        kwargs["partition_timeout"] = data.get("partition_timeout")
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"invalid fault plan JSON: {exc}") from None
        return cls.from_dict(data)

    def dump(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise FaultError(f"cannot read fault plan {path}: {exc}") from None
        return cls.from_json(text)

    def describe(self) -> str:
        """One line per event, for CLI echo and logs."""
        lines = []
        for cf in self.core_faults:
            life = "permanently" if cf.duration is None else f"for {cf.duration:g}"
            lines.append(f"core {cf.core} fails at t={cf.at:g} {life}")
        for sl in self.slowdowns:
            life = "" if sl.duration is None else f" for {sl.duration:g}"
            lines.append(
                f"core {sl.core} slows {sl.factor:g}x at t={sl.at:g}{life}"
            )
        for tc in self.task_crashes:
            scope = f"tasks matching {tc.match!r}" if tc.match else "all tasks"
            lines.append(
                f"{scope} crash with p={tc.probability:g} at "
                f"{tc.at_fraction:.0%} of their duration"
            )
        for nd in self.node_degradations:
            life = "" if nd.duration is None else f" for {nd.duration:g}"
            lines.append(
                f"node {nd.node} bandwidth x{nd.factor:g} at t={nd.at:g}{life}"
            )
        for nl in self.node_losses:
            life = "permanently" if nl.duration is None else f"for {nl.duration:g}"
            lines.append(f"box {nl.box} lost at t={nl.at:g} {life}")
        for nw in self.network_degradations:
            life = "" if nw.duration is None else f" for {nw.duration:g}"
            lines.append(
                f"box {nw.box} NIC bandwidth x{nw.factor:g} at t={nw.at:g}{life}"
            )
        if self.partition_timeout is not None:
            lines.append(
                f"partition result lost after t={self.partition_timeout:g}"
            )
        return "\n".join(lines) if lines else "(empty plan)"
