"""Turns a :class:`~repro.faults.plan.FaultPlan` into live simulator events.

The injector is deliberately thin: every *mechanism* (quarantine, crash,
re-execution, rate changes) lives in the simulator, which already owns the
event loop and all mutable state; the injector only schedules timers that
call the simulator's fault hooks, and draws the task-crash coin flips from
its own RNG stream so that an empty plan perturbs nothing.

Timed events (core faults, slowdowns, node degradations) are armed once at
attach time.  Task crashes are probabilistic per *attempt*: the simulator
calls :meth:`FaultInjector.on_task_start` for every task start and the
injector may schedule a mid-flight crash for that attempt.
"""

from __future__ import annotations

import numpy as np

from .plan import FaultPlan, TaskCrash


class FaultInjector:
    """Binds one fault plan to one simulator run."""

    def __init__(self, plan: FaultPlan, sim, rng: np.random.Generator) -> None:
        self.plan = plan
        self.sim = sim
        self.rng = rng
        #: Injected-event counters by family (diagnostics / reports).
        self.injected: dict[str, int] = {
            "core_failures": 0,
            "slowdowns": 0,
            "task_crashes": 0,
            "node_degradations": 0,
            "node_losses": 0,
            "network_degradations": 0,
        }
        self._crashes_left: dict[int, float] = {
            i: (np.inf if tc.max_crashes is None else tc.max_crashes)
            for i, tc in enumerate(plan.task_crashes)
        }

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _record(self, family: str, **args) -> None:
        """Count the injection and, when instrumented, emit ``fault.inject``."""
        self.injected[family] += 1
        probe = getattr(self.sim, "probe", None)
        if probe is not None:
            probe.on_inject(family)
        obs = self.sim.obs
        if obs is not None:
            obs.emit(self.sim.now, "fault.inject", family=family, **args)
            obs.registry.counter(f"faults.injected.{family}").inc()

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every timed fault of the plan on the simulator clock."""
        sim = self.sim
        for cf in self.plan.core_faults:
            sim.schedule_timer(cf.at, self._make_core_fault(cf.core, cf.duration))
        for sl in self.plan.slowdowns:
            sim.schedule_timer(
                sl.at, self._make_slowdown(sl.core, 1.0 / sl.factor, sl.duration)
            )
        for nd in self.plan.node_degradations:
            sim.schedule_timer(
                nd.at, self._make_degradation(nd.node, nd.factor, nd.duration)
            )
        for nl in self.plan.node_losses:
            sim.schedule_timer(
                nl.at, self._make_node_loss(nl.box, nl.duration)
            )
        for nw in self.plan.network_degradations:
            sim.schedule_timer(
                nw.at,
                self._make_network_degradation(nw.box, nw.factor, nw.duration),
            )

    def _make_core_fault(self, core: int, duration: float | None):
        def fire() -> None:
            self._record("core_failures", core=core, duration=duration)
            self.sim.fail_core(core, duration=duration)

        return fire

    def _make_slowdown(self, core: int, speed: float, duration: float | None):
        def fire() -> None:
            self._record("slowdowns", core=core, speed=speed, duration=duration)
            self.sim.set_core_speed(core, speed)
            if duration is not None:
                self.sim.schedule_timer(
                    duration, lambda: self.sim.set_core_speed(core, 1.0)
                )

        return fire

    def _make_degradation(self, node: int, factor: float, duration: float | None):
        def fire() -> None:
            self._record(
                "node_degradations", node=node, factor=factor, duration=duration
            )
            self.sim.set_node_bandwidth_factor(node, factor)
            if duration is not None:
                self.sim.schedule_timer(
                    duration,
                    lambda: self.sim.set_node_bandwidth_factor(node, 1.0),
                )

        return fire

    def _make_node_loss(self, box: int, duration: float | None):
        def fire() -> None:
            self._record("node_losses", box=box, duration=duration)
            # One box loss = every core of the box failing at once; the
            # simulator's quarantine/remap machinery does the rest.
            for core in self.sim.topology.cores_of_box(box):
                self.sim.fail_core(core, duration=duration)

        return fire

    def _make_network_degradation(
        self, box: int, factor: float, duration: float | None
    ):
        nic = self.sim.topology.nic_of_box(box)

        def fire() -> None:
            self._record(
                "network_degradations", box=box, factor=factor,
                duration=duration,
            )
            self.sim.set_node_bandwidth_factor(nic, factor)
            if duration is not None:
                self.sim.schedule_timer(
                    duration,
                    lambda: self.sim.set_node_bandwidth_factor(nic, 1.0),
                )

        return fire

    # ------------------------------------------------------------------
    def on_task_start(self, rt) -> None:
        """Possibly doom the attempt that just started on the simulator.

        Draws one uniform per matching crash rule per attempt (stable
        order), so a fixed seed reproduces the exact same crash pattern.
        """
        for i, tc in enumerate(self.plan.task_crashes):
            if self._crashes_left[i] <= 0:
                continue
            if tc.match is not None and tc.match not in rt.task.name:
                continue
            if float(self.rng.random()) >= tc.probability:
                continue
            self._crashes_left[i] -= 1
            self._record(
                "task_crashes", tid=rt.task.tid, name=rt.task.name,
                core=rt.core, at_fraction=tc.at_fraction,
            )
            self._doom(rt, tc)
            return  # at most one crash per attempt

    def _doom(self, rt, tc: TaskCrash) -> None:
        sim = self.sim
        est = rt.compute_remaining
        if rt.streams:
            # Stream keys span the full resource axis (memory nodes plus,
            # on clusters, NIC resources), not just topology.n_nodes.
            bytes_per_node = np.zeros(sim.n_resources)
            for node, nbytes in rt.streams.items():
                bytes_per_node[node] = nbytes
            est += sim.interconnect.best_case_time(rt.socket, bytes_per_node)
        delay = max(0.0, tc.at_fraction * est)
        token = (rt.task.tid, rt.start)
        sim.schedule_timer(delay, lambda: sim.crash_if_running(token))
