"""Fault injection and resilient execution (DESIGN.md §7).

Declarative :class:`FaultPlan` scenarios — core failures, stragglers,
probabilistic task crashes, memory-node bandwidth degradation, partition
timeouts — injected into the discrete-event simulator via timers, plus the
recovery machinery that keeps runs completing: dependence-safe task
re-execution with retry limits and exponential backoff, core quarantine
with queue draining, and scheduler-side graceful degradation.
"""

from .injector import FaultInjector
from .plan import (
    CoreFault,
    CoreSlowdown,
    FaultPlan,
    NodeDegradation,
    TaskCrash,
)
from .spec import parse_core_fault, parse_core_slowdown, parse_node_degradation

__all__ = [
    "CoreFault",
    "CoreSlowdown",
    "FaultInjector",
    "FaultPlan",
    "NodeDegradation",
    "TaskCrash",
    "parse_core_fault",
    "parse_core_slowdown",
    "parse_node_degradation",
]
