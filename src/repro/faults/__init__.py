"""Fault injection and resilient execution (DESIGN.md §7).

Declarative :class:`FaultPlan` scenarios — core failures, stragglers,
probabilistic task crashes, memory-node bandwidth degradation, cluster
box loss, network-link degradation, partition timeouts — injected into
the discrete-event simulator via timers, plus the recovery machinery
that keeps runs completing: dependence-safe task re-execution with retry
limits and exponential backoff, core quarantine with queue draining, and
scheduler-side graceful degradation.
"""

from .injector import FaultInjector
from .plan import (
    CoreFault,
    CoreSlowdown,
    FaultPlan,
    NetworkDegradation,
    NodeDegradation,
    NodeLoss,
    TaskCrash,
)
from .spec import (
    parse_core_fault,
    parse_core_slowdown,
    parse_network_degradation,
    parse_node_degradation,
    parse_node_loss,
)

__all__ = [
    "CoreFault",
    "CoreSlowdown",
    "FaultInjector",
    "FaultPlan",
    "NetworkDegradation",
    "NodeDegradation",
    "NodeLoss",
    "TaskCrash",
    "parse_core_fault",
    "parse_core_slowdown",
    "parse_network_degradation",
    "parse_node_degradation",
    "parse_node_loss",
]
