"""Compact command-line specs for fault events.

The CLI accepts repeated ``--fail-core`` / ``--slow-core`` /
``--degrade-node`` options whose values use a small ``@``/``:`` grammar
(chosen so a whole scenario fits on one shell line):

* ``CORE@AT`` or ``CORE@AT:DURATION``            → :class:`CoreFault`
* ``CORE@AT*FACTOR`` or ``CORE@AT*FACTOR:DUR``   → :class:`CoreSlowdown`
* ``NODE@AT*FACTOR`` or ``NODE@AT*FACTOR:DUR``   → :class:`NodeDegradation`
* ``BOX@AT`` or ``BOX@AT:DURATION``              → :class:`NodeLoss`
* ``BOX@AT*FACTOR`` or ``BOX@AT*FACTOR:DUR``     → :class:`NetworkDegradation`

Examples::

    --fail-core 3@1.5          # core 3 dies permanently at t=1.5
    --fail-core 3@1.5:2.0      # ... and recovers 2.0 time units later
    --slow-core 0@0*4          # core 0 runs 4x slower from the start
    --degrade-node 2@1*0.25    # node 2 at quarter bandwidth from t=1
    --lose-node 5@2.0          # cluster box 5 drops out at t=2
    --degrade-net 1@0*0.5      # box 1's NIC at half bandwidth from t=0
"""

from __future__ import annotations

from ..errors import FaultError
from .plan import (
    CoreFault,
    CoreSlowdown,
    NetworkDegradation,
    NodeDegradation,
    NodeLoss,
)


def _split_id_at(spec: str, label: str) -> tuple[int, str]:
    head, sep, rest = spec.partition("@")
    if not sep:
        raise FaultError(f"{label} spec {spec!r} needs an '@' (ID@TIME...)")
    try:
        ident = int(head)
    except ValueError:
        raise FaultError(f"{label} spec {spec!r}: bad id {head!r}") from None
    return ident, rest


def _split_duration(rest: str, label: str, spec: str) -> tuple[str, float | None]:
    head, sep, tail = rest.partition(":")
    if not sep:
        return head, None
    try:
        duration = float(tail)
    except ValueError:
        raise FaultError(
            f"{label} spec {spec!r}: bad duration {tail!r}"
        ) from None
    return head, duration


def _as_float(text: str, label: str, spec: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise FaultError(f"{label} spec {spec!r}: bad {what} {text!r}") from None


def parse_core_fault(spec: str) -> CoreFault:
    """``CORE@AT[:DURATION]`` → :class:`CoreFault`."""
    core, rest = _split_id_at(spec, "--fail-core")
    rest, duration = _split_duration(rest, "--fail-core", spec)
    at = _as_float(rest, "--fail-core", spec, "time")
    return CoreFault(core=core, at=at, duration=duration)


def parse_core_slowdown(spec: str) -> CoreSlowdown:
    """``CORE@AT*FACTOR[:DURATION]`` → :class:`CoreSlowdown`."""
    core, rest = _split_id_at(spec, "--slow-core")
    rest, duration = _split_duration(rest, "--slow-core", spec)
    at_text, sep, factor_text = rest.partition("*")
    if not sep:
        raise FaultError(
            f"--slow-core spec {spec!r} needs '*FACTOR' (CORE@AT*FACTOR)"
        )
    at = _as_float(at_text, "--slow-core", spec, "time")
    factor = _as_float(factor_text, "--slow-core", spec, "factor")
    return CoreSlowdown(core=core, at=at, factor=factor, duration=duration)


def parse_node_degradation(spec: str) -> NodeDegradation:
    """``NODE@AT*FACTOR[:DURATION]`` → :class:`NodeDegradation`."""
    node, rest = _split_id_at(spec, "--degrade-node")
    rest, duration = _split_duration(rest, "--degrade-node", spec)
    at_text, sep, factor_text = rest.partition("*")
    if not sep:
        raise FaultError(
            f"--degrade-node spec {spec!r} needs '*FACTOR' (NODE@AT*FACTOR)"
        )
    at = _as_float(at_text, "--degrade-node", spec, "time")
    factor = _as_float(factor_text, "--degrade-node", spec, "factor")
    return NodeDegradation(node=node, at=at, factor=factor, duration=duration)


def parse_node_loss(spec: str) -> NodeLoss:
    """``BOX@AT[:DURATION]`` → :class:`NodeLoss`."""
    box, rest = _split_id_at(spec, "--lose-node")
    rest, duration = _split_duration(rest, "--lose-node", spec)
    at = _as_float(rest, "--lose-node", spec, "time")
    return NodeLoss(box=box, at=at, duration=duration)


def parse_network_degradation(spec: str) -> NetworkDegradation:
    """``BOX@AT*FACTOR[:DURATION]`` → :class:`NetworkDegradation`."""
    box, rest = _split_id_at(spec, "--degrade-net")
    rest, duration = _split_duration(rest, "--degrade-net", spec)
    at_text, sep, factor_text = rest.partition("*")
    if not sep:
        raise FaultError(
            f"--degrade-net spec {spec!r} needs '*FACTOR' (BOX@AT*FACTOR)"
        )
    at = _as_float(at_text, "--degrade-net", spec, "time")
    factor = _as_float(factor_text, "--degrade-net", spec, "factor")
    return NetworkDegradation(box=box, at=at, factor=factor, duration=duration)
