"""Scheduling policies: the paper's baselines plus the RGP contribution.

The registry maps the paper's policy names to constructors so experiments
can say ``make_scheduler("rgp+las", window_size=512)``.  The RGP entries
resolve lazily to :mod:`repro.core` (which itself builds on the baseline
schedulers here).
"""

from __future__ import annotations

from typing import Callable

from .base import Scheduler
from .bsp import BSPScheduler
from .calist import CommScheduleListScheduler
from .dfifo import DFIFOScheduler
from .ep import EP_SOCKET_KEY, EPScheduler
from .heft import HEFTScheduler
from .las import LASScheduler, las_pick_socket
from .migration import MigratingLASWrapper
from .random_sched import RandomScheduler


def _rgp(**kwargs) -> Scheduler:
    from ..core.rgp import RGPScheduler

    return RGPScheduler(**kwargs)


def _rgp_las(**kwargs) -> Scheduler:
    from ..core.rgp import RGPLASScheduler

    return RGPLASScheduler(**kwargs)


SCHEDULERS: dict[str, Callable[..., Scheduler]] = {
    "dfifo": DFIFOScheduler,
    "las": LASScheduler,
    "las+migrate": MigratingLASWrapper,
    "ep": EPScheduler,
    "heft": HEFTScheduler,
    "calist": CommScheduleListScheduler,
    "bsp": BSPScheduler,
    "random": RandomScheduler,
    "rgp": _rgp,
    "rgp+las": _rgp_las,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by its paper name."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "EP_SOCKET_KEY",
    "SCHEDULERS",
    "BSPScheduler",
    "CommScheduleListScheduler",
    "DFIFOScheduler",
    "EPScheduler",
    "HEFTScheduler",
    "LASScheduler",
    "MigratingLASWrapper",
    "RandomScheduler",
    "Scheduler",
    "las_pick_socket",
    "make_scheduler",
]
