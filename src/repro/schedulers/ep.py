"""Expert programmer (EP): placement hardcoded by the benchmark author.

Every application in :mod:`repro.apps` annotates its tasks with a
``meta["ep_socket"]`` — the distribution a human expert would write into
the source (block or block-cyclic over sockets, matching the data layout).
"""

from __future__ import annotations

from ..errors import SchedulerError
from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler

EP_SOCKET_KEY = "ep_socket"


class EPScheduler(Scheduler):
    """Follows the per-task expert placement annotation."""

    name = "ep"

    def choose(self, task: Task) -> Placement:
        try:
            socket = task.meta[EP_SOCKET_KEY]
        except KeyError:
            raise SchedulerError(
                f"task {task.name!r} has no {EP_SOCKET_KEY!r} annotation; "
                "the application does not support the EP policy"
            ) from None
        chosen = int(socket)
        if not 0 <= chosen < self.topology.n_sockets:
            # A silent ``% n_sockets`` wrap here used to mask apps built
            # for a different machine (e.g. an 8-socket layout replayed on
            # 4 sockets), quietly folding the expert placement in half.
            raise SchedulerError(
                f"task {task.name!r} has {EP_SOCKET_KEY}={chosen}, out of "
                f"range for {self.topology.n_sockets} sockets — the "
                "program was built for a different machine"
            )
        obs = self.obs
        if obs is not None:
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, branch="annotated",
                socket=chosen,
            )
        return Placement(socket=chosen)
