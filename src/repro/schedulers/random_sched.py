"""Uniform-random socket placement — a sanity-check floor policy."""

from __future__ import annotations

from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler


class RandomScheduler(Scheduler):
    """Every ready task goes to a uniformly random socket queue."""

    name = "random"

    def choose(self, task: Task) -> Placement:
        return Placement(socket=int(self.rng.integers(self.topology.n_sockets)))
