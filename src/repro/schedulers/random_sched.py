"""Uniform-random socket placement — a sanity-check floor policy."""

from __future__ import annotations

from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler


class RandomScheduler(Scheduler):
    """Every ready task goes to a uniformly random socket queue."""

    name = "random"

    def choose(self, task: Task) -> Placement:
        socket = int(self.rng.integers(self.topology.n_sockets))
        obs = self.obs
        if obs is not None:
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, branch="random",
                socket=socket,
            )
        return Placement(socket=socket)
