"""BSP-superstep placement (the bulk-synchronous cost model of Papp et al.).

The BSP view of a DAG: tasks at dependence depth ``d`` form superstep
``d``; every superstep runs to a (conceptual) barrier, then exchanges
data.  A superstep's cost is ``W + g*H + L`` — the maximum per-socket
work, the maximum per-socket communication volume (the *h-relation*:
bytes a socket sends plus bytes it receives from other sockets) scaled
by the gap ``g``, and a fixed latency.  Minimising the sum therefore
balances *work and traffic per level* rather than end-to-end finish
times — a genuinely different objective from list scheduling, and the
reason scheduler rankings flip under BSP-like models.

Placement is greedy per superstep: tasks in descending work order each
take the socket minimising the superstep's projected ``W + g*H`` (ties:
lowest socket id).  ``L`` is constant per superstep and never affects
the argmin, so it is not materialised.  The plan is static, computed in
``on_program_start`` and followed verbatim; task creation order is
topological, so every predecessor is planned before its consumers'
superstep is placed.
"""

from __future__ import annotations

import numpy as np

from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler
from .costmodel import bandwidth_model, exec_estimate


class BSPScheduler(Scheduler):
    """Superstep-by-superstep placement under the BSP cost model."""

    name = "bsp"

    def __init__(self) -> None:
        super().__init__()
        self._plan: dict[int, int] = {}
        self._level: np.ndarray | None = None

    # ------------------------------------------------------------------
    def on_program_start(self) -> None:
        program = self.sim.program
        topo = self.topology
        n = program.n_tasks
        k = topo.n_sockets

        local_bw, remote_bw, _ = bandwidth_model(topo, self.sim.interconnect)
        gap = 1.0 / remote_bw  # time per byte of h-relation

        # Supersteps = dependence depth (tasks only depend on earlier ids).
        level = np.zeros(n, dtype=np.int64)
        for v in range(n):
            preds = program.tdg.predecessors(v)
            if preds:
                level[v] = 1 + max(level[p] for p in preds)
        self._level = level

        diag = np.arange(k)
        for step in range(int(level.max()) + 1 if n else 0):
            members = np.flatnonzero(level == step)
            members = sorted(
                (int(v) for v in members),
                key=lambda v: (-program.tasks[v].work, v),
            )
            work = np.zeros(k)
            traffic = np.zeros(k)  # sent + received bytes per socket
            for v in members:
                est = exec_estimate(program.tasks[v], local_bw)
                in_by_socket = np.zeros(k)
                for pred, w in program.tdg.predecessors(v).items():
                    in_by_socket[self._plan[pred]] += w
                total_in = float(in_by_socket.sum())

                # Candidate h-relation, all sockets at once: placing v on
                # socket s adds sends ``in_by_socket`` at the producers
                # (minus the local share) and ``total_in - in_by_socket[s]``
                # received at s.
                cand = np.tile(traffic + in_by_socket, (k, 1))
                cand[diag, diag] += total_in - 2.0 * in_by_socket
                h = cand.max(axis=1)
                w_cost = np.maximum(work.max(), work + est)
                s = int(np.argmin(w_cost + gap * h))

                self._plan[v] = s
                work[s] += est
                traffic += in_by_socket
                traffic[s] += total_in - 2.0 * in_by_socket[s]

    def choose(self, task: Task) -> Placement:
        socket = self._plan[task.tid]
        obs = self.obs
        if obs is not None:
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, branch="planned",
                socket=socket, superstep=int(self._level[task.tid]),
            )
        return Placement(socket=socket)

    @property
    def plan(self) -> dict[int, int]:
        """The static task -> socket plan (after ``on_program_start``)."""
        return dict(self._plan)

    @property
    def levels(self) -> np.ndarray:
        """Superstep index per task (after ``on_program_start``)."""
        return self._level.copy()
