"""Distributed FIFO (DFIFO): the paper's allocation-unaware baseline.

"Each task goes to a different CPU in a cyclic order" — Nanos++'s
distributed FIFO assigns each task to the next CPU's private queue at
*instantiation* time, blind to where data lives.  Compute load is evenly
spread, memory locality is accidental (~1/n_sockets), which is why DFIFO
collapses on memory-bound applications in Figure 1.

A shared counter hands each *ready* task to the next core.  With the
simulator's duration jitter this decouples from any periodic structure in
the program, exactly like the timing noise of the real machine — whatever
NUMA node a task's data landed on, its compute goes wherever the counter
happens to point.
"""

from __future__ import annotations

from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler


class DFIFOScheduler(Scheduler):
    """Cyclic per-core placement in ready order (shared counter)."""

    name = "dfifo"

    def __init__(self) -> None:
        super().__init__()
        self._counter = 0

    def on_program_start(self) -> None:
        # Per-run state: a reused scheduler must restart its cyclic order,
        # not continue from wherever the previous run left the counter.
        self._counter = 0

    def choose(self, task: Task) -> Placement:
        core = self._counter % self.topology.n_cores
        self._counter += 1
        obs = self.obs
        if obs is not None:
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, branch="cyclic", core=core,
            )
        return Placement(core=core)
