"""Locality-aware scheduling (LAS) — Drebes et al. [PACT'16], the baseline.

Dynamic task-and-data placement built on two mechanisms (paper §2.1):

* **deferred allocation** — output pages bind where the producer runs
  (implemented by the simulator's first-touch-at-task-start); and
* **enhanced work-pushing** — at scheduling time the runtime weighs each
  socket by the bytes of the task's *already allocated* input and output
  data and pushes the task to the heaviest socket; ties break uniformly at
  random, and "if most of the data is unallocated, the final socket is
  randomly chosen among all sockets available to the runtime system".

The random cold-start choice is LAS's Achilles heel that RGP fixes: the
first tasks (nothing allocated yet) scatter randomly, first-touch then
pins their output data — and through propagation the whole residual
computation — to that random initial layout.
"""

from __future__ import annotations

import numpy as np

from ..runtime.cost import allocated_bytes_per_node
from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler


def las_pick_socket(
    task: Task,
    memory,
    rng: np.random.Generator,
    n_sockets: int,
    random_threshold: float = 0.0,
    audit: dict | None = None,
    detail: dict | None = None,
    tie_break: str = "random",
) -> int:
    """The LAS socket choice, reusable by RGP+LAS propagation.

    ``random_threshold`` controls the cold-start rule: the socket is chosen
    uniformly at random iff the *allocated* fraction of the task's data is
    <= the threshold.  The default 0.0 is Drebes et al.'s behaviour (random
    only when literally nothing is allocated — under deferred allocation a
    task's freshly declared outputs are always unallocated and carry no
    information about where the task should run, so they must not drown
    out the allocated inputs).  The poster's literal wording "if most of
    the data is unallocated" corresponds to 0.5 and is exposed as a LAS
    ablation.

    Bytes bound to memory nodes the runtime's sockets cannot claim (node id
    >= ``n_sockets``, possible when the machine model has more memory nodes
    than sockets) carry no placement signal and are folded into the
    unallocated total, so they still count against the cold-start rule
    instead of silently vanishing.

    ``tie_break`` resolves equal-weight sockets: ``"random"`` (the paper)
    picks uniformly among the tied sockets, ``"first"`` deterministically
    takes the lowest socket id.  Both take the same branches and feed the
    same audit counters, so decision taxonomies stay comparable.

    ``detail``, when given, is filled with the decision evidence (the
    per-socket byte weights, the branch taken, the candidate set) for
    ``sched.choice`` trace events; it never influences the choice.
    """
    per_node_full, unbound = allocated_bytes_per_node(task, memory)
    per_node = per_node_full[:n_sockets]
    bound_total = int(per_node.sum())
    unreachable = int(per_node_full[n_sockets:].sum())
    total = bound_total + unbound + unreachable
    if bound_total == 0 or (total > 0 and bound_total <= random_threshold * total):
        if audit is not None:
            audit["random"] = audit.get("random", 0) + 1
        if detail is not None:
            detail.update(
                branch="random", weights=per_node.tolist(),
                unbound_bytes=int(unbound + unreachable),
            )
        return int(rng.integers(n_sockets))
    best = per_node.max()
    ties = np.flatnonzero(per_node == best)
    if audit is not None:
        key = "weighted" if len(ties) == 1 else "tie"
        audit[key] = audit.get(key, 0) + 1
    if detail is not None:
        detail.update(
            branch="weighted" if len(ties) == 1 else "tie",
            weights=per_node.tolist(),
            candidates=[int(t) for t in ties],
        )
    if len(ties) == 1 or tie_break == "first":
        return int(ties[0])
    return int(rng.choice(ties))


class LASScheduler(Scheduler):
    """Enhanced work-pushing by allocated-byte weight (the LAS baseline)."""

    name = "las"

    def __init__(
        self, tie_break: str = "random", random_threshold: float = 0.0
    ) -> None:
        """``tie_break``: ``"random"`` (paper) or ``"first"`` (deterministic
        lowest-id socket); ``random_threshold``: cold-start rule, see
        :func:`las_pick_socket` (0.0 = Drebes, 0.5 = poster-literal)."""
        super().__init__()
        if tie_break not in ("random", "first"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        if not 0.0 <= random_threshold <= 1.0:
            raise ValueError("random_threshold must be in [0, 1]")
        self.tie_break = tie_break
        self.random_threshold = random_threshold
        #: Decision audit: how often the weighted / tie / random branch
        #: fired — the observability handle for the cold-start ablation.
        self.audit: dict[str, int] = {}

    def on_program_start(self) -> None:
        # Per-run state: a reused scheduler must not accumulate a previous
        # run's branch counts.
        self.audit = {}

    def choose(self, task: Task) -> Placement:
        obs = self.obs
        detail: dict | None = (
            {} if obs is not None and obs.events_enabled else None
        )
        # Both tie-break modes go through las_pick_socket so the audit
        # counters and the sched.choice branch taxonomy agree; "first" only
        # changes how an actual tie is resolved.
        socket = las_pick_socket(
            task, self.memory, self.rng, self.topology.n_sockets,
            random_threshold=self.random_threshold,
            audit=self.audit, detail=detail, tie_break=self.tie_break,
        )
        if detail is not None:
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, socket=socket, **detail,
            )
        return Placement(socket=socket)
