"""Reactive OS-style page migration — the related-work baseline (§1).

The paper's introduction contrasts runtime-level techniques against OS
mechanisms (kMAF, Carrefour, hardware-counter-driven migration [2, 3, 8])
that "do not exploit application-specific information ... they take action
when the application is already suffering from remote memory accesses".

:class:`MigratingLASWrapper` models that class: an underlying scheduling
policy runs unmodified while a *migration daemon* wakes up every
``period`` simulated time units, finds the data objects with the most
remote traffic since the last wake-up, and migrates their pages to the
socket that referenced them most.  Migration itself costs time: the daemon
charges ``migration_cost_per_byte`` by delaying the next wake-up.

This gives the reproduction a quantitative version of the paper's
qualitative claim: reactive migration recovers some locality but pays for
it late, while RGP places data correctly *before* first touch.
"""

from __future__ import annotations

import numpy as np

from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler
from .las import LASScheduler


class MigratingLASWrapper(Scheduler):
    """LAS placement plus a periodic reactive page-migration daemon."""

    name = "las+migrate"

    def __init__(
        self,
        period: float = 10.0,
        top_k: int = 8,
        migration_cost_per_byte: float = 2e-6,
        inner: Scheduler | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError("migration period must be positive")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        super().__init__()
        self.period = float(period)
        self.top_k = int(top_k)
        self.migration_cost_per_byte = float(migration_cost_per_byte)
        self.inner = inner or LASScheduler()
        #: object key -> per-socket remote reference bytes since last wake
        self._remote_refs: dict[int, np.ndarray] = {}
        #: total pages moved (diagnostics)
        self.pages_migrated = 0
        self.migration_rounds = 0

    # ------------------------------------------------------------------
    def attach(self, sim, rng: np.random.Generator) -> None:
        super().attach(sim, rng)
        self.inner.attach(sim, rng)
        self._remote_refs = {}
        self.pages_migrated = 0
        self.migration_rounds = 0

    def on_program_start(self) -> None:
        self.inner.on_program_start()
        self.sim.schedule_timer(self.period, self._wake)

    def choose(self, task: Task) -> Placement:
        return self.inner.choose(task)

    def on_task_finished(self, task: Task) -> None:
        """Record remote references the way a sampling profiler would."""
        self.inner.on_task_finished(task)
        memory = self.memory
        # The socket the task ran on: look it up from its completion record
        # (the simulator appends it just before calling this hook).
        socket = self.sim.records[-1].socket
        for access in task.accesses:
            placement = memory.node_bytes_of_range(
                access.obj.key, access.offset, access.length
            )
            # The placement array may be shared with the memory manager's
            # cache (read-only); sum around the local node instead of
            # zeroing a copy.
            remote_total = placement.total_bound - int(
                placement.bytes_per_node[socket]
            )
            if remote_total:
                refs = self._remote_refs.setdefault(
                    access.obj.key, np.zeros(self.topology.n_sockets)
                )
                # Attribute the remote bytes to the *referencing* socket:
                # that is where the pages should move.
                refs[socket] += float(remote_total)

    # ------------------------------------------------------------------
    def _wake(self) -> None:
        """One daemon round: migrate the hottest remotely-accessed objects."""
        self.migration_rounds += 1
        moved_bytes = 0.0
        if self._remote_refs:
            hottest = sorted(
                self._remote_refs.items(),
                key=lambda kv: float(kv[1].sum()),
                reverse=True,
            )[: self.top_k]
            for key, refs in hottest:
                target = int(np.argmax(refs))
                moved = self.memory.migrate(key, target)
                self.pages_migrated += moved
                moved_bytes += moved * self.memory.page_size
            self._remote_refs.clear()
        # Next wake-up is delayed by the cost of what we just moved.
        delay = self.period + moved_bytes * self.migration_cost_per_byte
        if self.sim.n_done < self.sim.program.n_tasks:
            self.sim.schedule_timer(delay, self._wake)
