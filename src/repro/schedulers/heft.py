"""HEFT: Heterogeneous Earliest-Finish-Time static list scheduling.

A classic whole-DAG baseline from the scheduling literature (Topcuoglu et
al.), added as an extension: unlike RGP it plans *every* task's placement
up front from cost estimates, and unlike LAS it ignores the actual page
placement at run time.  On NUMA machines its weakness is exactly what the
paper exploits: its estimates assume data sits wherever the producer was
*planned*, so estimation errors compound, and it cannot react.

Implementation (socket-granular):

* **upward rank**: ``rank(v) = exec_est(v) + max over succ (comm(v, s) +
  rank(s))`` with communication charged at the machine's average remote
  bandwidth;
* tasks in decreasing rank order are assigned to the socket minimising
  the *estimated finish time*, honouring per-core availability and
  data-transfer estimates from the planned producer sockets.

The plan is computed in ``on_program_start`` and followed verbatim; the
simulator's work stealing (if enabled) provides the only dynamism.
"""

from __future__ import annotations

import numpy as np

from ..runtime.cost import allocated_bytes_per_node
from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler
from .costmodel import bandwidth_model, exec_estimate, upward_ranks


class HEFTScheduler(Scheduler):
    """Static earliest-finish-time list scheduler over sockets.

    ``respect_prebound=True`` additionally charges each candidate socket
    for transferring the task's *pre-bound* bytes (objects with an
    ``initial_node`` or interleaved placement, already bound when the plan
    is computed) that live off-socket, via the memory manager's cached
    placement query.  The default ``False`` is classic HEFT: placement
    estimates only, blind to the actual page layout.
    """

    name = "heft"

    def __init__(self, respect_prebound: bool = False) -> None:
        super().__init__()
        self.respect_prebound = bool(respect_prebound)
        self._plan: dict[int, int] = {}

    # ------------------------------------------------------------------
    def on_program_start(self) -> None:
        program = self.sim.program
        topo = self.topology
        interconnect = self.sim.interconnect
        n = program.n_tasks
        k = topo.n_sockets

        # Cost estimates (shared with the other static planners).  On
        # cluster machines an edge that stays inside a box moves at the
        # interconnect's socket-pair efficiency, one that crosses boxes
        # drains through the source box's NIC; single-box machines keep
        # the classic flat average (bit-identical to the pre-cluster
        # planner).
        local_bw, remote_bw, pair_bw = bandwidth_model(topo, interconnect)

        def exec_est(task: Task) -> float:
            return exec_estimate(task, local_bw)

        def comm_est(nbytes: float) -> float:
            return nbytes / remote_bw

        def comm_est_pair(src: int, dst: int, nbytes: float) -> float:
            if pair_bw is None:
                return nbytes / remote_bw
            return nbytes / pair_bw[src, dst]

        # Upward ranks (reverse topological = reverse creation order).
        rank = upward_ranks(program, local_bw, remote_bw)

        # Pre-bound data penalty: bytes of each task's data already living
        # off a candidate socket (deferred allocations are all unbound at
        # planning time, so only initial_node / interleaved objects count).
        # Rides the memory manager's placement cache — the same ranges are
        # queried again by the simulator's traffic accounting.
        prebound: dict[int, np.ndarray] | None = None
        if self.respect_prebound:
            prebound = {}
            for task in program.tasks:
                per_node, _ = allocated_bytes_per_node(task, self.memory)
                if int(per_node.sum()):
                    prebound[task.tid] = per_node[:k]

        # EFT assignment in decreasing rank order.
        core_free = np.zeros((k, topo.cores_per_socket))
        aft = np.zeros(n)  # actual (planned) finish times
        order = sorted(range(n), key=lambda v: (-rank[v], v))
        for v in order:
            task = program.tasks[v]
            base = exec_est(task)
            best_socket, best_eft, best_core = 0, np.inf, 0
            for s in range(k):
                ready = 0.0
                for pred, w in program.tdg.predecessors(v).items():
                    arrive = aft[pred]
                    pred_socket = self._plan.get(pred, s)
                    if pred_socket != s:
                        arrive += comm_est_pair(pred_socket, s, w)
                    ready = max(ready, arrive)
                core = int(np.argmin(core_free[s]))
                est = max(ready, core_free[s, core])
                eft = est + base
                if prebound is not None and v in prebound:
                    per_node = prebound[v]
                    eft += comm_est(float(per_node.sum() - per_node[s]))
                if eft < best_eft - 1e-12:
                    best_socket, best_eft, best_core = s, eft, core
            self._plan[v] = best_socket
            core_free[best_socket, best_core] = best_eft
            aft[v] = best_eft

    def choose(self, task: Task) -> Placement:
        socket = self._plan[task.tid]
        obs = self.obs
        if obs is not None:
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, branch="planned",
                socket=socket,
            )
        return Placement(socket=socket)

    @property
    def plan(self) -> dict[int, int]:
        """The static task -> socket plan (after ``on_program_start``)."""
        return dict(self._plan)
