"""Shared cost estimates for static whole-DAG planners (HEFT, calist, BSP).

All three planners price a task's execution and its dependence transfers
from the same machine summary: the local streaming bandwidth, the average
remote bandwidth, and (on cluster machines) a per-socket-pair bandwidth
matrix where cross-box transfers drain through the source box's NIC.
Keeping the estimates in one place means the planners differ only in
*model* (earliest finish vs. communication schedule vs. BSP supersteps),
not in how they read the machine.
"""

from __future__ import annotations

import numpy as np


def bandwidth_model(topo, interconnect) -> tuple[float, float, np.ndarray | None]:
    """``(local_bw, remote_bw, pair_bw)`` estimates for a machine.

    ``pair_bw`` is ``None`` on single-box machines (the flat average is
    exact there); on clusters ``pair_bw[s, m]`` is the planning bandwidth
    from socket ``s`` to socket ``m`` — intra-box pairs move at the
    interconnect's socket-pair efficiency, cross-box pairs at the source
    box's NIC bandwidth.
    """
    k = topo.n_sockets
    local_bw = float(topo.node_bandwidth.mean())
    effs = [
        interconnect.efficiency(s, m)
        for s in range(k) for m in range(k) if s != m
    ]
    remote_bw = local_bw * (float(np.mean(effs)) if effs else 1.0)

    n_boxes = getattr(topo, "n_boxes", 1)
    pair_bw: np.ndarray | None = None
    if n_boxes > 1:
        box_of = [topo.box_of_socket(s) for s in range(k)]
        nic_bw = [
            float(topo.resource_bandwidth[topo.nic_of_box(b)])
            for b in range(n_boxes)
        ]
        pair_bw = np.empty((k, k))
        for s in range(k):
            for m in range(k):
                if s == m:
                    pair_bw[s, m] = local_bw
                elif box_of[s] == box_of[m]:
                    pair_bw[s, m] = local_bw * interconnect.efficiency(s, m)
                else:
                    pair_bw[s, m] = nic_bw[box_of[s]]
    return local_bw, remote_bw, pair_bw


def exec_estimate(task, local_bw: float) -> float:
    """Planned execution time: compute overlapped with local streaming."""
    return max(task.work, task.traffic_bytes / local_bw)


def upward_ranks(program, local_bw: float, remote_bw: float) -> np.ndarray:
    """Classic upward ranks: ``rank(v) = exec(v) + max(comm + rank(succ))``.

    Communication is charged at the flat average remote bandwidth — ranks
    are a priority order, not a schedule, so the flat estimate is enough
    (and keeps single-box plans bit-identical to the historical HEFT).
    """
    n = program.n_tasks
    rank = np.zeros(n)
    for v in range(n - 1, -1, -1):
        task = program.tasks[v]
        best = 0.0
        for succ, w in program.tdg.successors(v).items():
            cand = w / remote_bw + rank[succ]
            if cand > best:
                best = cand
        rank[v] = exec_estimate(task, local_bw) + best
    return rank
