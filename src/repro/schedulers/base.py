"""Scheduler interface: the policy plug-point of the runtime.

A scheduler sees exactly what the paper's runtime sees: the machine
topology, the current page placement (via the simulator's memory manager),
and each task as it becomes *ready*.  It answers with a
:class:`~repro.runtime.placement.Placement`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..runtime.placement import Placement
from ..runtime.task import Task


class Scheduler(ABC):
    """Base class for scheduling policies."""

    #: registry/CLI name
    name: str = "abstract"

    def __init__(self) -> None:
        self.sim = None  # set by attach()
        self.rng: np.random.Generator = np.random.default_rng(0)

    def attach(self, sim, rng: np.random.Generator) -> None:
        """Bind to a simulator instance before the run starts."""
        self.sim = sim
        self.rng = rng

    def on_program_start(self) -> None:
        """Called once before any task is offered (RGP partitions here)."""

    @abstractmethod
    def choose(self, task: Task) -> Placement:
        """Place a ready task."""

    def on_task_finished(self, task: Task) -> None:
        """Notification after each task completes (for adaptive policies)."""

    # Resilience hooks (repro.faults) -------------------------------------
    def configure_faults(self, plan) -> None:
        """Inspect the run's :class:`~repro.faults.plan.FaultPlan` before
        the program starts (RGP arms its partition-timeout here)."""

    def on_core_failed(self, core: int) -> None:
        """A core was quarantined; remap any per-core/per-socket state.

        Called *before* the simulator re-offers the core's queued work, so
        remapped state is already in place when ``choose`` runs again.
        """

    def on_core_restored(self, core: int) -> None:
        """A transiently failed core came back into service."""

    # Convenience accessors -------------------------------------------------
    @property
    def topology(self):
        return self.sim.topology

    @property
    def memory(self):
        return self.sim.memory

    @property
    def obs(self):
        """The run's :class:`~repro.observability.Instrumentation`, or
        ``None`` when the simulation is uninstrumented.  Policies use it
        to emit ``sched.choice`` decision events (candidates, tie-breaks)
        without perturbing the schedule.  ``getattr`` keeps unit-test
        scheduler harnesses (fake sims without instrumentation) working."""
        return getattr(self.sim, "obs", None)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
