"""Communication-schedule-aware list scheduling (Papp et al. cost model).

Classic list schedulers (HEFT included) price every dependence transfer
as if the wire were idle: two transfers into the same socket at the same
time each get full bandwidth.  The communication-aware model of Papp et
al. drops that assumption — communication is *scheduled* on links the
same way computation is scheduled on cores, so concurrent transfers over
one channel serialize and the delay propagates into successors' start
times.  Scheduler rankings measurably flip between the two models, which
is exactly why this variant exists next to plain HEFT.

Channel model:

* intra-box socket pairs are independent point-to-point channels (one
  per ordered pair — a QPI-style mesh);
* every cross-box transfer out of box ``b`` serializes on ``b``'s NIC,
  the same bottleneck the simulator's message engine enforces.

The planner runs HEFT's outer loop (upward ranks, earliest-finish-time
socket choice) but books each candidate's transfers on the channels —
``max(producer finish, channel free) + bytes/bandwidth``, in ascending
predecessor order — and commits the bookings of the winning socket only.
The plan is static; like HEFT it is computed once in
``on_program_start`` and followed verbatim.
"""

from __future__ import annotations

import numpy as np

from ..runtime.placement import Placement
from ..runtime.task import Task
from .base import Scheduler
from .costmodel import bandwidth_model, exec_estimate, upward_ranks


class CommScheduleListScheduler(Scheduler):
    """List scheduling with transfers serialized on explicit channels."""

    name = "calist"

    def __init__(self) -> None:
        super().__init__()
        self._plan: dict[int, int] = {}

    # ------------------------------------------------------------------
    def on_program_start(self) -> None:
        program = self.sim.program
        topo = self.topology
        n = program.n_tasks
        k = topo.n_sockets

        local_bw, remote_bw, pair_bw = bandwidth_model(
            topo, self.sim.interconnect
        )
        n_boxes = getattr(topo, "n_boxes", 1)
        box_of = (
            [topo.box_of_socket(s) for s in range(k)] if n_boxes > 1 else None
        )

        def channel(src: int, dst: int):
            if box_of is not None and box_of[src] != box_of[dst]:
                return ("nic", box_of[src])
            return ("link", src, dst)

        def xfer(src: int, dst: int, nbytes: float) -> float:
            if pair_bw is None:
                return nbytes / remote_bw
            return nbytes / pair_bw[src, dst]

        rank = upward_ranks(program, local_bw, remote_bw)

        #: next-free time per channel — the communication schedule.
        channel_free: dict[tuple, float] = {}
        core_free = np.zeros((k, topo.cores_per_socket))
        aft = np.zeros(n)  # planned finish times
        order = sorted(range(n), key=lambda v: (-rank[v], v))
        for v in order:
            task = program.tasks[v]
            base = exec_estimate(task, local_bw)
            preds = sorted(program.tdg.predecessors(v).items())
            best_socket, best_eft, best_core = 0, np.inf, 0
            best_bookings: dict[tuple, float] = {}
            for s in range(k):
                bookings: dict[tuple, float] = {}
                ready = 0.0
                for pred, w in preds:
                    src = self._plan.get(pred, s)
                    if src == s:
                        arrive = aft[pred]
                    else:
                        key = channel(src, s)
                        start = max(
                            aft[pred],
                            bookings.get(key, channel_free.get(key, 0.0)),
                        )
                        arrive = start + xfer(src, s, w)
                        bookings[key] = arrive
                    if arrive > ready:
                        ready = arrive
                core = int(np.argmin(core_free[s]))
                eft = max(ready, core_free[s, core]) + base
                if eft < best_eft - 1e-12:
                    best_socket, best_eft, best_core = s, eft, core
                    best_bookings = bookings
            self._plan[v] = best_socket
            core_free[best_socket, best_core] = best_eft
            aft[v] = best_eft
            for key, t in best_bookings.items():
                if t > channel_free.get(key, 0.0):
                    channel_free[key] = t

    def choose(self, task: Task) -> Placement:
        socket = self._plan[task.tid]
        obs = self.obs
        if obs is not None:
            obs.emit(
                self.sim.now, "sched.choice",
                tid=task.tid, policy=self.name, branch="planned",
                socket=socket,
            )
        return Placement(socket=socket)

    @property
    def plan(self) -> dict[int, int]:
        """The static task -> socket plan (after ``on_program_start``)."""
        return dict(self._plan)
