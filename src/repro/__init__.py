"""repro — Runtime graph partitioning for NUMA-aware DAG scheduling.

A from-scratch Python reproduction of

    Sánchez Barrera et al., "POSTER: Graph partitioning applied to DAG
    scheduling to reduce NUMA effects", PPoPP 2018.

Subsystems (see DESIGN.md for the full inventory):

* :mod:`repro.machine`     — NUMA topology, page placement, interconnect;
* :mod:`repro.graph`       — task dependency graph and analyses;
* :mod:`repro.partition`   — SCOTCH-style graph partitioners (from scratch);
* :mod:`repro.runtime`     — task runtime + discrete-event simulator;
* :mod:`repro.schedulers`  — DFIFO / LAS / EP baselines;
* :mod:`repro.core`        — the paper's contribution: RGP and RGP+LAS;
* :mod:`repro.apps`        — the eight evaluation benchmarks;
* :mod:`repro.experiments` — Figure 1 harness and ablations;
* :mod:`repro.observability` — event tracing, metrics registry and
  Perfetto/Paraver exporters.

Quickstart::

    from repro import bullion_s16, make_app, make_scheduler, simulate

    topo = bullion_s16()
    program = make_app("jacobi", nt=8, tile=64, sweeps=4).build(topo.n_sockets)
    result = simulate(program, topo, make_scheduler("rgp+las"))
    print(result.summary())
"""

from .apps import APPS, TaskApplication, make_app
from .core import RGPLASScheduler, RGPScheduler
from .errors import (
    ApplicationError,
    BenchmarkError,
    DeadlineExceededError,
    DependencyError,
    ExperimentError,
    FaultError,
    GraphError,
    JobNotFoundError,
    JobSpecError,
    MemoryError_,
    PartitionError,
    PartitionTimeoutError,
    PoisonJobError,
    QueueFullError,
    RateLimitError,
    ReproError,
    RuntimeStateError,
    SchedulerError,
    ServiceError,
    ShuttingDownError,
    SimulationError,
    TopologyError,
    exit_code_for,
)
from .faults import (
    CoreFault,
    CoreSlowdown,
    FaultPlan,
    NodeDegradation,
    TaskCrash,
)
from .observability import (
    Instrumentation,
    MetricsRegistry,
    NullSink,
    RingBufferSink,
    write_chrome_trace,
    write_metrics_json,
    write_paraver,
)
from .machine import (
    Interconnect,
    MemoryManager,
    NumaTopology,
    bullion_s16,
    single_socket,
    two_socket,
)
from .partition import (
    PARTITIONERS,
    DualRecursiveBipartitioner,
    MultilevelKWay,
    SpectralPartitioner,
    TargetArchitecture,
)
from .runtime import (
    AccessMode,
    DataAccess,
    DataObject,
    SimulationResult,
    Simulator,
    Task,
    TaskProgram,
    execute,
    execute_in_order,
    simulate,
)
from .schedulers import (
    SCHEDULERS,
    DFIFOScheduler,
    EPScheduler,
    LASScheduler,
    Scheduler,
    make_scheduler,
)

__version__ = "1.0.0"

__all__ = [
    "APPS",
    "PARTITIONERS",
    "SCHEDULERS",
    "AccessMode",
    "ApplicationError",
    "BenchmarkError",
    "CoreFault",
    "CoreSlowdown",
    "DFIFOScheduler",
    "DeadlineExceededError",
    "DataAccess",
    "DataObject",
    "DependencyError",
    "DualRecursiveBipartitioner",
    "EPScheduler",
    "ExperimentError",
    "FaultError",
    "FaultPlan",
    "GraphError",
    "Instrumentation",
    "Interconnect",
    "JobNotFoundError",
    "JobSpecError",
    "LASScheduler",
    "MemoryError_",
    "MemoryManager",
    "MetricsRegistry",
    "MultilevelKWay",
    "NodeDegradation",
    "NullSink",
    "NumaTopology",
    "PartitionError",
    "PartitionTimeoutError",
    "PoisonJobError",
    "QueueFullError",
    "RGPLASScheduler",
    "RGPScheduler",
    "RateLimitError",
    "ReproError",
    "RingBufferSink",
    "RuntimeStateError",
    "Scheduler",
    "SchedulerError",
    "ServiceError",
    "ShuttingDownError",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "SpectralPartitioner",
    "TargetArchitecture",
    "Task",
    "TaskApplication",
    "TaskCrash",
    "TaskProgram",
    "TopologyError",
    "__version__",
    "bullion_s16",
    "execute",
    "execute_in_order",
    "exit_code_for",
    "make_app",
    "make_scheduler",
    "simulate",
    "single_socket",
    "two_socket",
    "write_chrome_trace",
    "write_metrics_json",
    "write_paraver",
]
