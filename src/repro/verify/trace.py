"""Decision trace: everything the reference oracle needs to replay a run.

The production simulator owns three sources of nondeterminism-from-the-
oracle's-point-of-view: the scheduler's placement decisions, the per-task
duration jitter, and the timer machinery (fault events, partition
deliveries, retry backoffs).  The :class:`DecisionRecorder` probe captures
all three while the production run executes:

* **placements** — per task, a FIFO of the post-remap
  :class:`~repro.runtime.placement.Placement` returned for each offer;
* **jitter** — the multiplicative factor drawn for each ``(tid, attempt)``;
* **events** — every timer pop and every state-changing action applied from
  inside a timer callback, in application order.

The event list is the crux of float-trajectory fidelity: draining streams
in two steps (``b - r*dt1`` then ``- r*dt2``) is *not* bit-identical to one
step (``b - r*(dt1+dt2)``), so the oracle must stop its clock at every
point the production loop stopped — including timer pops whose callbacks
changed nothing.  Since all recorded actions happen inside timer callbacks,
recording order equals application order and the oracle needs no timers of
its own: it applies the recorded queue front-to-back whenever its clock
reaches the next recorded time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .probe import SimProbe


@dataclass(frozen=True)
class TraceEvent:
    """One replayable action at one instant of simulated time."""

    time: float
    kind: str  # tick | reoffer | fail_core | restore_core | speed | bw | crash | retry_offer
    data: tuple = ()


@dataclass
class DecisionTrace:
    """The recorded decisions of one production run."""

    placements: dict[int, deque] = field(default_factory=dict)
    jitter: dict[tuple[int, int], float] = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    injected: dict[str, int] = field(default_factory=dict)

    def next_placement(self, tid: int):
        """Pop the next recorded placement for ``tid`` (None if exhausted)."""
        fifo = self.placements.get(tid)
        if not fifo:
            return None
        return fifo.popleft()


class DecisionRecorder(SimProbe):
    """Probe that fills a :class:`DecisionTrace` during a production run."""

    def __init__(self) -> None:
        self.trace = DecisionTrace()
        self.sim = None

    def attach(self, sim) -> None:
        """Bind to the simulator whose ``probe=`` slot carries this probe."""
        self.sim = sim

    def _event(self, kind: str, *data) -> None:
        self.trace.events.append(TraceEvent(self.sim.now, kind, data))

    # -- decisions ------------------------------------------------------
    def on_offer(self, task, placement) -> None:
        self.trace.placements.setdefault(task.tid, deque()).append(placement)

    def on_start(self, rt, factor: float, attempt: int) -> None:
        self.trace.jitter[(rt.task.tid, attempt)] = factor

    # -- timers and their actions --------------------------------------
    def on_timer(self, time: float) -> None:
        self.trace.events.append(TraceEvent(time, "tick"))

    def on_reoffer(self, tids: list[int]) -> None:
        self._event("reoffer", tuple(tids))

    def on_retry_offer(self, tid: int) -> None:
        self._event("retry_offer", tid)

    def on_crash(self, rt, reason: str) -> None:
        # Core-failure kills are replayed inside the oracle's ``fail_core``
        # mechanics; only the timer-scheduled mid-flight crash is an event.
        if reason == "crash":
            self._event("crash", rt.task.tid)

    def on_fault(self, kind: str, **args) -> None:
        if kind == "fail_core":
            self._event("fail_core", args["core"])
        elif kind == "restore_core":
            self._event("restore_core", args["core"])
        elif kind == "set_core_speed":
            self._event("speed", args["core"], args["speed"])
        elif kind == "set_node_bw":
            self._event("bw", args["node"], args["factor"])

    def on_inject(self, family: str) -> None:
        self.trace.injected[family] = self.trace.injected.get(family, 0) + 1
