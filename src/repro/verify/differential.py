"""Differential verification: production simulator vs reference oracle.

``differential_run`` executes one fully specified case twice — once on the
production :class:`~repro.runtime.simulator.Simulator` with a
:class:`~repro.verify.trace.DecisionRecorder` probe, once on the naive
:class:`~repro.verify.oracle.ReferenceSimulator` replaying the recorded
decisions — and diffs everything the two compute independently: every task
record's ``(core, socket, start, finish)``, local/remote/NUMA-pair byte
traffic, the memory image (per-node bound bytes, first-touch count),
busy/wasted time and the full fault accounting.

Because the oracle pins its clock to the production run's stop points, the
two trajectories perform the same float operations in the same order; the
comparison therefore uses a near-zero tolerance (`1e-9` relative) — any
real model discrepancy shows up as a gross mismatch, not a rounding haze.

A diverging case serializes itself to a JSON *repro file* containing the
complete case (program, topology, interconnect, scheduler spec, simulator
knobs, fault plan) — not the trace, which is regenerated deterministically
on replay via ``repro verify replay``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError, VerificationError
from ..machine.interconnect import Interconnect
from ..machine.serialize import topology_from_dict, topology_to_dict
from ..machine.topology import NumaTopology
from ..runtime.data import AccessMode, DataAccess
from ..runtime.program import TaskProgram
from ..runtime.simulator import Simulator
from .oracle import OracleOutcome, OracleParams, ReferenceSimulator
from .trace import DecisionRecorder

#: Repro-file format tag (bump on incompatible change).
FORMAT = "repro-verify-case/1"

#: Relative float tolerance of the differential comparison.  The two
#: trajectories are float-identical by construction, so this only has to
#: absorb printing round-trips of repro files, not model noise.
REL_TOL = 1e-9
ABS_TOL = 1e-9


# ----------------------------------------------------------------------
# Program serialization (repro files must be self-contained)
# ----------------------------------------------------------------------
def program_to_dict(program: TaskProgram) -> dict:
    """JSON-safe description of a program; ``fn``/``payload`` are dropped
    (verification replays the *model*, not real computations)."""
    return {
        "name": program.name,
        "objects": [
            {
                "name": o.name,
                "size_bytes": int(o.size_bytes),
                "initial_node": o.initial_node,
                "interleaved": bool(o.interleaved),
            }
            for o in program.objects
        ],
        "tasks": [
            {
                "name": t.name,
                "work": float(t.work),
                "meta": {
                    k: v
                    for k, v in t.meta.items()
                    if isinstance(v, (int, float, str, bool))
                },
                "accesses": [
                    {
                        "obj": a.obj.key,
                        "mode": a.mode.value,
                        "offset": int(a.offset),
                        "length": None if a.length is None else int(a.length),
                    }
                    for a in t.accesses
                ],
            }
            for t in program.tasks
        ],
        "barriers": [int(b) for b in program.barriers],
    }


def program_from_dict(doc: dict) -> TaskProgram:
    """Rebuild a program by replaying the builder calls of
    :func:`program_to_dict`'s source (same tids, same TDG, same epochs)."""
    prog = TaskProgram(doc.get("name", "program"))
    objs = [
        prog.data(
            o["name"],
            o["size_bytes"],
            initial_node=o.get("initial_node"),
            interleaved=o.get("interleaved", False),
        )
        for o in doc["objects"]
    ]
    barriers = list(doc.get("barriers", []))
    bi = 0
    for t in doc["tasks"]:
        while bi < len(barriers) and barriers[bi] == prog.n_tasks:
            prog.barrier()
            bi += 1
        by_mode: dict[AccessMode, list[DataAccess]] = {
            AccessMode.IN: [], AccessMode.OUT: [], AccessMode.INOUT: [],
        }
        for a in t["accesses"]:
            mode = AccessMode(a["mode"])
            by_mode[mode].append(
                DataAccess(
                    obj=objs[a["obj"]],
                    mode=mode,
                    offset=a.get("offset", 0),
                    length=a.get("length"),
                )
            )
        prog.task(
            t["name"],
            ins=by_mode[AccessMode.IN],
            outs=by_mode[AccessMode.OUT],
            inouts=by_mode[AccessMode.INOUT],
            work=t["work"],
            meta=t.get("meta") or None,
        )
    while bi < len(barriers) and barriers[bi] == prog.n_tasks:
        prog.barrier()
        bi += 1
    return prog.finalize()


# ----------------------------------------------------------------------
# The verification case
# ----------------------------------------------------------------------
@dataclass
class VerifyCase:
    """One fully specified (program, machine, policy, knobs, faults) run."""

    program: TaskProgram
    topology: NumaTopology
    scheduler: str
    scheduler_kwargs: dict = field(default_factory=dict)
    interconnect_kwargs: dict = field(default_factory=dict)
    sim_kwargs: dict = field(default_factory=dict)
    faults: object = None  # FaultPlan | None
    label: str = ""

    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "label": self.label,
            "program": program_to_dict(self.program),
            "topology": topology_to_dict(self.topology),
            "scheduler": {
                "name": self.scheduler, "kwargs": self.scheduler_kwargs,
            },
            "interconnect": self.interconnect_kwargs,
            "sim": self.sim_kwargs,
            "faults": None if self.faults is None else self.faults.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "VerifyCase":
        if doc.get("format") != FORMAT:
            raise VerificationError(
                f"not a {FORMAT} repro file (format={doc.get('format')!r})"
            )
        faults = None
        if doc.get("faults") is not None:
            from ..faults.plan import FaultPlan

            faults = FaultPlan.from_dict(doc["faults"])
        return cls(
            program=program_from_dict(doc["program"]),
            topology=topology_from_dict(doc["topology"]),
            scheduler=doc["scheduler"]["name"],
            scheduler_kwargs=dict(doc["scheduler"].get("kwargs", {})),
            interconnect_kwargs=dict(doc.get("interconnect", {})),
            sim_kwargs=dict(doc.get("sim", {})),
            faults=faults,
            label=doc.get("label", ""),
        )

    @classmethod
    def load(cls, path: str) -> "VerifyCase":
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise VerificationError(
                f"cannot read case file {path}: {exc}"
            ) from exc
        return cls.from_dict(doc)


@dataclass(frozen=True)
class Divergence:
    """One field on which production and oracle disagree."""

    field: str
    production: object
    oracle: object

    def __str__(self) -> str:
        return f"{self.field}: production={self.production!r} oracle={self.oracle!r}"


@dataclass
class DifferentialReport:
    """Outcome of one differential run."""

    case: VerifyCase
    status: str  # ok | divergence | production-error | oracle-desync
    divergences: list[Divergence] = field(default_factory=list)
    error: str = ""
    result: object = None  # SimulationResult | None
    oracle: OracleOutcome | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "production-error")

    def summary(self) -> str:
        head = f"[{self.case.label or self.case.scheduler}] {self.status}"
        if self.status == "divergence":
            head += f" ({len(self.divergences)} fields)"
            for d in self.divergences[:8]:
                head += f"\n    {d}"
            if len(self.divergences) > 8:
                head += f"\n    … {len(self.divergences) - 8} more"
        elif self.error:
            head += f": {self.error}"
        return head


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def _compare(result, outcome: OracleOutcome) -> list[Divergence]:
    """Diff a production :class:`SimulationResult` against the oracle."""
    divs: list[Divergence] = []

    def check(name: str, got, want, exact: bool = True) -> None:
        same = (got == want) if exact else _close(got, want)
        if not same:
            divs.append(Divergence(name, got, want))

    check("makespan", result.makespan, outcome.makespan, exact=False)
    check("n_records", len(result.records), len(outcome.records))
    for pr, orr in zip(result.records, outcome.records):
        tag = f"record[{pr.tid}]"
        if orr.tid != pr.tid:
            divs.append(Divergence(f"{tag}.order", pr.tid, orr.tid))
            break
        check(f"{tag}.name", pr.name, orr.name)
        check(f"{tag}.core", pr.core, orr.core)
        check(f"{tag}.socket", pr.socket, orr.socket)
        check(f"{tag}.attempt", pr.attempt, orr.attempt)
        check(f"{tag}.start", pr.start, orr.start, exact=False)
        check(f"{tag}.finish", pr.finish, orr.finish, exact=False)
        check(f"{tag}.local_bytes", pr.local_bytes, orr.local_bytes, exact=False)
        check(
            f"{tag}.remote_bytes", pr.remote_bytes, orr.remote_bytes,
            exact=False,
        )
        check(f"{tag}.net_bytes", pr.net_bytes, orr.net_bytes, exact=False)
    check("local_bytes", result.local_bytes, outcome.local_bytes, exact=False)
    check("remote_bytes", result.remote_bytes, outcome.remote_bytes, exact=False)
    if not np.allclose(
        result.bytes_by_pair, outcome.bytes_by_pair,
        rtol=REL_TOL, atol=ABS_TOL,
    ):
        divs.append(
            Divergence(
                "bytes_by_pair",
                result.bytes_by_pair.tolist(),
                outcome.bytes_by_pair.tolist(),
            )
        )
    if not np.allclose(
        result.busy_time_per_socket, outcome.busy_time,
        rtol=REL_TOL, atol=ABS_TOL,
    ):
        divs.append(
            Divergence(
                "busy_time",
                result.busy_time_per_socket.tolist(),
                outcome.busy_time.tolist(),
            )
        )
    check("steals", result.steals, outcome.steals)
    check("parked_tasks", result.parked_tasks, outcome.parked_total)
    check("touch_count", result.touch_count, outcome.touch_count)
    check(
        "bytes_on_node",
        [int(b) for b in result.bytes_on_node],
        outcome.bytes_on_node,
    )
    check(
        "has_bytes_by_link",
        result.bytes_by_link is not None,
        outcome.bytes_by_link is not None,
    )
    if result.bytes_by_link is not None and outcome.bytes_by_link is not None:
        if not np.allclose(
            result.bytes_by_link, outcome.bytes_by_link,
            rtol=REL_TOL, atol=ABS_TOL,
        ):
            divs.append(
                Divergence(
                    "bytes_by_link",
                    result.bytes_by_link.tolist(),
                    outcome.bytes_by_link.tolist(),
                )
            )
        check("n_messages", len(result.messages), len(outcome.messages))
        check(
            "messages_dropped",
            result.messages_dropped,
            outcome.messages_dropped,
        )
        for pm, om in zip(result.messages, outcome.messages):
            tag = f"message[{pm.tid}:{pm.src_box}->{pm.dst_box}]"
            check(f"{tag}.tid", pm.tid, om.tid)
            check(f"{tag}.src_box", pm.src_box, om.src_box)
            check(f"{tag}.dst_box", pm.dst_box, om.dst_box)
            check(f"{tag}.nbytes", pm.nbytes, om.nbytes, exact=False)
            check(f"{tag}.send", pm.send, om.send, exact=False)
            check(f"{tag}.recv", pm.recv, om.recv, exact=False)
    check("reexecutions", result.reexecutions, outcome.reexecutions)
    check("wasted_work", result.wasted_work, outcome.wasted_work, exact=False)
    check("cores_failed", result.cores_failed, outcome.cores_failed)
    check("faults_injected", result.faults_injected, outcome.faults_injected)
    check("n_crashed", len(result.crashed_records), len(outcome.crashed_records))
    for pr, orr in zip(result.crashed_records, outcome.crashed_records):
        tag = f"crashed[{pr.tid}@{pr.attempt}]"
        check(f"{tag}.tid", pr.tid, orr.tid)
        check(f"{tag}.core", pr.core, orr.core)
        check(f"{tag}.outcome", pr.outcome, orr.outcome)
        check(f"{tag}.start", pr.start, orr.start, exact=False)
        check(f"{tag}.finish", pr.finish, orr.finish, exact=False)
    return divs


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def run_case(case: VerifyCase, *, engine: str | None = None) -> DifferentialReport:
    """Run one case through both simulators and diff the outcomes.

    ``engine`` overrides the production simulator's fluid engine
    (``"flat"`` or ``"object"``) without touching the serialized case, so
    the same corpus file can be replayed under either engine.
    """
    from ..schedulers import make_scheduler

    scheduler = make_scheduler(case.scheduler, **case.scheduler_kwargs)
    interconnect = Interconnect(case.topology, **case.interconnect_kwargs)
    recorder = DecisionRecorder()
    sim_kwargs = dict(case.sim_kwargs)
    if engine is not None:
        sim_kwargs["engine"] = engine
    sim = Simulator(
        case.program,
        case.topology,
        scheduler,
        interconnect=interconnect,
        faults=case.faults,
        probe=recorder,
        **sim_kwargs,
    )
    recorder.attach(sim)
    try:
        result = sim.run()
    except ReproError as exc:
        # The production run failing outright (fault plan killed the
        # machine, retry limit, partition deadline) is a legitimate outcome
        # with nothing to diff — not a divergence.
        return DifferentialReport(
            case=case, status="production-error",
            error=f"{type(exc).__name__}: {exc}",
        )
    oracle = ReferenceSimulator(
        case.program,
        case.topology,
        interconnect,
        recorder.trace,
        OracleParams.of_simulator(sim),
    )
    try:
        outcome = oracle.run()
    except VerificationError as exc:
        return DifferentialReport(
            case=case, status="oracle-desync", error=str(exc), result=result,
        )
    divergences = _compare(result, outcome)
    return DifferentialReport(
        case=case,
        status="ok" if not divergences else "divergence",
        divergences=divergences,
        result=result,
        oracle=outcome,
    )


def _run_production(case: VerifyCase, engine: str):
    """One production run of the case under the given engine (no oracle).

    Returns ``(result, None)`` or ``(None, error_string)`` when the run
    dies of a legitimate :class:`ReproError` (fault plan killed it).
    """
    from ..schedulers import make_scheduler

    scheduler = make_scheduler(case.scheduler, **case.scheduler_kwargs)
    interconnect = Interconnect(case.topology, **case.interconnect_kwargs)
    sim_kwargs = dict(case.sim_kwargs)
    sim_kwargs["engine"] = engine
    sim = Simulator(
        case.program,
        case.topology,
        scheduler,
        interconnect=interconnect,
        faults=case.faults,
        **sim_kwargs,
    )
    try:
        return sim.run(), None
    except ReproError as exc:
        return None, f"{type(exc).__name__}: {exc}"


def compare_engines(case: VerifyCase) -> DifferentialReport:
    """Run the case under the object and flat engines; demand **bit
    identity** (exact ``==`` on every float, not the oracle's 1e-9 haze).

    The flat engine is a data-layout change, not a model change: both
    engines perform the same IEEE operations in the same order, so any
    difference at all is a bug.  Returns a :class:`DifferentialReport`
    whose ``status`` is ``ok``/``divergence``/``production-error`` (the
    latter only when *both* engines die identically; dying differently is
    a divergence).
    """
    obj, obj_err = _run_production(case, "object")
    flat, flat_err = _run_production(case, "flat")
    if obj_err is not None or flat_err is not None:
        if obj_err == flat_err:
            return DifferentialReport(
                case=case, status="production-error", error=obj_err
            )
        return DifferentialReport(
            case=case,
            status="divergence",
            divergences=[Divergence("production-error", flat_err, obj_err)],
        )
    divs: list[Divergence] = []

    def check(name: str, got, want) -> None:
        if got != want:
            divs.append(Divergence(name, got, want))

    check("makespan", flat.makespan, obj.makespan)
    check("n_records", len(flat.records), len(obj.records))
    for fr, orr in zip(flat.records, obj.records):
        tag = f"record[{fr.tid}]"
        check(f"{tag}.tid", fr.tid, orr.tid)
        check(f"{tag}.core", fr.core, orr.core)
        check(f"{tag}.socket", fr.socket, orr.socket)
        check(f"{tag}.attempt", fr.attempt, orr.attempt)
        check(f"{tag}.start", fr.start, orr.start)
        check(f"{tag}.finish", fr.finish, orr.finish)
        check(f"{tag}.local_bytes", fr.local_bytes, orr.local_bytes)
        check(f"{tag}.remote_bytes", fr.remote_bytes, orr.remote_bytes)
        check(f"{tag}.net_bytes", fr.net_bytes, orr.net_bytes)
    if not np.array_equal(flat.bytes_by_pair, obj.bytes_by_pair):
        divs.append(
            Divergence(
                "bytes_by_pair",
                flat.bytes_by_pair.tolist(),
                obj.bytes_by_pair.tolist(),
            )
        )
    if not np.array_equal(
        flat.busy_time_per_socket, obj.busy_time_per_socket
    ):
        divs.append(
            Divergence(
                "busy_time",
                flat.busy_time_per_socket.tolist(),
                obj.busy_time_per_socket.tolist(),
            )
        )
    check("steals", flat.steals, obj.steals)
    check("parked_tasks", flat.parked_tasks, obj.parked_tasks)
    check("touch_count", flat.touch_count, obj.touch_count)
    check(
        "bytes_on_node",
        [int(b) for b in flat.bytes_on_node],
        [int(b) for b in obj.bytes_on_node],
    )
    check(
        "has_bytes_by_link",
        flat.bytes_by_link is not None,
        obj.bytes_by_link is not None,
    )
    if flat.bytes_by_link is not None and obj.bytes_by_link is not None:
        if not np.array_equal(flat.bytes_by_link, obj.bytes_by_link):
            divs.append(
                Divergence(
                    "bytes_by_link",
                    flat.bytes_by_link.tolist(),
                    obj.bytes_by_link.tolist(),
                )
            )
        check("n_messages", len(flat.messages), len(obj.messages))
        check("messages_dropped", flat.messages_dropped, obj.messages_dropped)
        for fm, om in zip(flat.messages, obj.messages):
            tag = f"message[{fm.tid}:{fm.src_box}->{fm.dst_box}]"
            check(f"{tag}", fm, om)
    check("reexecutions", flat.reexecutions, obj.reexecutions)
    check("wasted_work", flat.wasted_work, obj.wasted_work)
    check("cores_failed", flat.cores_failed, obj.cores_failed)
    check("faults_injected", flat.faults_injected, obj.faults_injected)
    check(
        "n_crashed", len(flat.crashed_records), len(obj.crashed_records)
    )
    for fr, orr in zip(flat.crashed_records, obj.crashed_records):
        tag = f"crashed[{fr.tid}@{fr.attempt}]"
        check(f"{tag}.tid", fr.tid, orr.tid)
        check(f"{tag}.core", fr.core, orr.core)
        check(f"{tag}.outcome", fr.outcome, orr.outcome)
        check(f"{tag}.start", fr.start, orr.start)
        check(f"{tag}.finish", fr.finish, orr.finish)
    return DifferentialReport(
        case=case,
        status="ok" if not divs else "divergence",
        divergences=divs,
        result=flat,
    )


def differential_run(
    policy,
    app,
    machine,
    faults=None,
    *,
    scheduler_kwargs: dict | None = None,
    interconnect_kwargs: dict | None = None,
    label: str = "",
    **sim_kwargs,
) -> DifferentialReport:
    """Convenience driver: resolve names, build the case, run the diff.

    ``policy`` is a scheduler name (plus optional ``scheduler_kwargs``);
    ``app`` is a :class:`TaskProgram` or an application name from
    :data:`repro.apps.APPS`; ``machine`` is a :class:`NumaTopology` or a
    preset name; ``faults`` a :class:`FaultPlan`, a path to one, or None.
    Remaining keyword arguments go to the production simulator verbatim
    (``seed=``, ``steal=``, ``duration_jitter=``, ...).
    """
    topology = machine
    if isinstance(machine, str):
        from ..machine.presets import by_name

        topology = by_name(machine)
    program = app
    if isinstance(app, str):
        from ..apps import make_app

        program = make_app(app).build(topology.n_sockets)
    if isinstance(faults, str):
        from ..faults.plan import FaultPlan

        faults = FaultPlan.load(faults)
    case = VerifyCase(
        program=program,
        topology=topology,
        scheduler=policy,
        scheduler_kwargs=dict(scheduler_kwargs or {}),
        interconnect_kwargs=dict(interconnect_kwargs or {}),
        sim_kwargs=dict(sim_kwargs),
        faults=faults,
        label=label or policy,
    )
    return run_case(case)


def save_repro(report: DifferentialReport, out_dir: str) -> str:
    """Serialize a diverging case to ``out_dir``; returns the file path."""
    os.makedirs(out_dir, exist_ok=True)
    doc = report.case.to_dict()
    doc["status"] = report.status
    doc["divergences"] = [str(d) for d in report.divergences]
    if report.error:
        doc["error"] = report.error
    stem = (report.case.label or report.case.scheduler).replace("+", "_")
    stem = "".join(c if c.isalnum() or c in "-_" else "-" for c in stem)
    path = os.path.join(out_dir, f"divergence-{stem}.json")
    n = 1
    while os.path.exists(path):
        path = os.path.join(out_dir, f"divergence-{stem}-{n}.json")
        n += 1
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def replay_file(path: str, *, engine: str | None = None) -> DifferentialReport:
    """Re-run the differential check of a serialized case (repro file or
    committed corpus entry).

    ``engine`` selects the production engine to diff against the oracle
    (None = the simulator default); ``engine="both"`` additionally
    demands exact flat-vs-object bit identity and reports any cross-
    engine difference as a divergence.
    """
    case = VerifyCase.load(path)
    if engine == "both":
        cross = compare_engines(case)
        if cross.status == "divergence":
            return cross
        return run_case(case, engine="flat")
    return run_case(case, engine=engine)
