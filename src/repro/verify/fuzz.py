"""Metamorphic + differential fuzzing harness.

Generates random ``(program, topology, fault plan, simulator knobs)``
cases and pushes each one through :func:`repro.verify.differential.
run_case` under the full policy matrix — DFIFO, LAS, EP, RGP+LAS, and RGP
with the pipelined and blocking repartition paths.  Any divergence is
serialized to a repro file for ``repro verify replay``.

Two generator front ends share the same building blocks:

* seeded :mod:`numpy.random` generators (:func:`make_case`) — the CLI
  ``repro verify fuzz`` path, reproducible from a bare integer seed;
* :func:`make_strategies` — hypothesis strategies over the same space for
  the property suite, with shrinking (lazily imported so the runtime
  package never requires hypothesis).

Generated fault plans are deliberately *survivable*: core failures are
transient, at most a few task-crash rules with bounded ``max_crashes``,
retry limits high — a production run that still dies is reported as a
``production-error`` (legitimate, nothing to diff), never a divergence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..faults.plan import (
    CoreFault,
    CoreSlowdown,
    FaultPlan,
    NetworkDegradation,
    NodeDegradation,
    NodeLoss,
    TaskCrash,
)
from ..machine.presets import cluster
from ..machine.topology import NumaTopology, uniform_distance_matrix
from ..runtime.data import AccessMode, DataAccess
from ..runtime.program import TaskProgram
from .differential import (
    DifferentialReport,
    VerifyCase,
    compare_engines,
    run_case,
    save_repro,
)

#: One label per verified policy configuration (the acceptance matrix).
POLICY_MATRIX: list[tuple[str, str, dict]] = [
    ("dfifo", "dfifo", {}),
    ("las", "las", {}),
    ("ep", "ep", {}),
    ("calist", "calist", {}),
    ("bsp", "bsp", {}),
    ("rgp+las", "rgp+las", {"window_size": 8}),
    (
        "rgp-pipelined",
        "rgp",
        {
            "window_size": 6,
            "propagation": "repartition",
            "prefetch_threshold": 0.5,
        },
    ),
    (
        "rgp-blocking",
        "rgp",
        {"window_size": 6, "propagation": "repartition"},
    ),
]

_PAGE = 4096


# ----------------------------------------------------------------------
# Seeded numpy generators
# ----------------------------------------------------------------------
def random_topology(rng: np.random.Generator) -> NumaTopology:
    # A third of the seeds exercise the cluster machine model: message
    # events, NIC contention and the per-box fault families all ride the
    # same differential/bit-identity checks as single-box runs.
    if rng.random() < 0.35:
        n_boxes = int(rng.integers(2, 5))
        spb = int(rng.integers(1, 3))
        cores = int(rng.integers(1, 4))
        return cluster(
            n_boxes,
            sockets_per_box=spb,
            cores_per_socket=cores,
            node_bandwidth=float(rng.uniform(2e5, 2e6)),
            nic_fraction=float(rng.uniform(0.08, 0.3)),
            name=f"fuzz-cluster{n_boxes}x{spb}x{cores}",
        )
    n_sockets = int(rng.integers(2, 5))
    cores = int(rng.integers(1, 5))
    remote = float(rng.uniform(12.0, 30.0))
    bandwidth = float(rng.uniform(2e5, 2e6))
    return NumaTopology(
        n_sockets=n_sockets,
        cores_per_socket=cores,
        distance=uniform_distance_matrix(n_sockets, remote=remote),
        node_bandwidth=bandwidth,
        name=f"fuzz-{n_sockets}x{cores}",
    )


def random_program(
    rng: np.random.Generator, n_sockets: int, max_tasks: int = 40
) -> TaskProgram:
    """Random program: mixed-size objects (pre-bound, interleaved or
    deferred), sub-range accesses, occasional barriers, EP annotations."""
    prog = TaskProgram("fuzz")
    objs = []
    for i in range(int(rng.integers(1, 9))):
        size = int(rng.integers(1, 33)) * _PAGE
        if rng.random() < 0.4:
            size += int(rng.integers(1, _PAGE))  # partial last page
        style = rng.random()
        if style < 0.2:
            obj = prog.data(
                f"obj{i}", size, initial_node=int(rng.integers(n_sockets))
            )
        elif style < 0.35:
            obj = prog.data(f"obj{i}", size, interleaved=True)
        else:
            obj = prog.data(f"obj{i}", size)
        objs.append(obj)
    n_tasks = int(rng.integers(5, max_tasks + 1))
    for t in range(n_tasks):
        if t and rng.random() < 0.08:
            prog.barrier()
        ins: list = []
        outs: list = []
        inouts: list = []
        for _ in range(int(rng.integers(0, 4))):
            obj = objs[int(rng.integers(len(objs)))]
            mode_draw = rng.random()
            if mode_draw < 0.5:
                mode, bucket = AccessMode.IN, ins
            elif mode_draw < 0.8:
                mode, bucket = AccessMode.OUT, outs
            else:
                mode, bucket = AccessMode.INOUT, inouts
            if rng.random() < 0.3 and obj.size_bytes > 2 * _PAGE:
                offset = int(rng.integers(0, obj.size_bytes // 2))
                length = int(rng.integers(1, obj.size_bytes - offset + 1))
                bucket.append(DataAccess(obj, mode, offset, length))
            else:
                bucket.append(DataAccess(obj, mode))
        prog.task(
            f"t{t}",
            ins=ins,
            outs=outs,
            inouts=inouts,
            work=float(rng.uniform(0.05, 1.5)),
            meta={"ep_socket": int(rng.integers(n_sockets))},
        )
    return prog.finalize()


def random_faults(
    rng: np.random.Generator, topology: NumaTopology
) -> FaultPlan | None:
    """A mild, survivable fault plan — or None (also a case worth checking)."""
    if rng.random() < 0.4:
        return None
    core_faults = []
    slowdowns = []
    degradations = []
    crashes = []
    if rng.random() < 0.5 and topology.n_cores >= 2:
        core_faults.append(
            CoreFault(
                core=int(rng.integers(topology.n_cores)),
                at=float(rng.uniform(0.1, 1.5)),
                duration=float(rng.uniform(0.3, 1.0)),  # transient only
            )
        )
    if rng.random() < 0.5:
        slowdowns.append(
            CoreSlowdown(
                core=int(rng.integers(topology.n_cores)),
                at=float(rng.uniform(0.0, 1.0)),
                factor=float(rng.uniform(1.5, 4.0)),
                duration=(
                    float(rng.uniform(0.3, 1.5))
                    if rng.random() < 0.7
                    else None
                ),
            )
        )
    if rng.random() < 0.4:
        degradations.append(
            NodeDegradation(
                node=int(rng.integers(topology.n_nodes)),
                at=float(rng.uniform(0.0, 1.0)),
                factor=float(rng.uniform(0.4, 0.9)),
                duration=(
                    float(rng.uniform(0.5, 1.5))
                    if rng.random() < 0.7
                    else None
                ),
            )
        )
    if rng.random() < 0.5:
        crashes.append(
            TaskCrash(
                probability=float(rng.uniform(0.02, 0.15)),
                at_fraction=float(rng.uniform(0.1, 0.9)),
                max_crashes=int(rng.integers(1, 4)),
            )
        )
    partition_timeout = (
        float(rng.uniform(0.05, 0.3)) if rng.random() < 0.3 else None
    )
    # Cluster-only families.  A single box loss out of >= 2 boxes is
    # survivable (tasks remap to the nearest surviving socket); losing
    # box 0 is fair game too.
    node_losses = []
    net_degradations = []
    n_boxes = getattr(topology, "n_boxes", 1)
    if n_boxes > 1:
        if rng.random() < 0.4:
            node_losses.append(
                NodeLoss(
                    box=int(rng.integers(n_boxes)),
                    at=float(rng.uniform(0.1, 1.2)),
                    duration=(
                        float(rng.uniform(0.3, 1.0))
                        if rng.random() < 0.6
                        else None
                    ),
                )
            )
        if rng.random() < 0.4:
            net_degradations.append(
                NetworkDegradation(
                    box=int(rng.integers(n_boxes)),
                    at=float(rng.uniform(0.0, 1.0)),
                    factor=float(rng.uniform(0.3, 0.8)),
                    duration=(
                        float(rng.uniform(0.5, 1.5))
                        if rng.random() < 0.7
                        else None
                    ),
                )
            )
    plan = FaultPlan(
        core_faults=core_faults,
        slowdowns=slowdowns,
        task_crashes=crashes,
        node_degradations=degradations,
        node_losses=node_losses,
        network_degradations=net_degradations,
        partition_timeout=partition_timeout,
    )
    return None if plan.is_empty() else plan


def make_case(
    seed: int, label: str, scheduler: str, scheduler_kwargs: dict
) -> VerifyCase:
    """Deterministic case for ``seed``: the machine, program, faults and
    simulator knobs depend only on the seed, so every policy of the matrix
    sees the same scenario."""
    rng = np.random.default_rng([int(seed), 0xD1FF])
    topology = random_topology(rng)
    program = random_program(rng, topology.n_sockets)
    faults = random_faults(rng, topology)
    interconnect_kwargs = {
        "remote_penalty_exp": float(rng.choice([1.0, 1.0, 1.3])),
        "latency_cost_per_access": float(rng.choice([0.0, 0.0, 1e-4])),
    }
    sim_kwargs = {
        "seed": int(seed),
        "steal": [True, "near", False][int(rng.integers(3))],
        "duration_jitter": float(rng.choice([0.0, 0.03, 0.08])),
        "max_retries": 10,
        "retry_backoff": float(rng.choice([0.0, 0.0, 0.05])),
    }
    partition_delay = float(rng.uniform(0.05, 0.4))
    kwargs = dict(scheduler_kwargs)
    if scheduler in ("rgp", "rgp+las"):
        kwargs.setdefault("partition_delay", partition_delay)
    return VerifyCase(
        program=program,
        topology=topology,
        scheduler=scheduler,
        scheduler_kwargs=kwargs,
        interconnect_kwargs=interconnect_kwargs,
        sim_kwargs=sim_kwargs,
        faults=faults,
        label=f"seed{seed}-{label}",
    )


# ----------------------------------------------------------------------
# The fuzz driver (CLI and CI entry point)
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing session."""

    seeds: list[int] = field(default_factory=list)
    n_cases: int = 0
    n_ok: int = 0
    n_production_errors: int = 0
    failures: list[tuple[int, DifferentialReport]] = field(default_factory=list)
    repro_files: list[str] = field(default_factory=list)
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.n_cases} cases over {len(self.seeds)} seeds — "
            f"{self.n_ok} ok, {self.n_production_errors} production errors, "
            f"{len(self.failures)} divergences"
            + (" (budget exhausted)" if self.budget_exhausted else "")
        ]
        for seed, report in self.failures:
            lines.append(f"  seed {seed}: {report.summary()}")
        for path in self.repro_files:
            lines.append(f"  repro file: {path}")
        return "\n".join(lines)


def fuzz(
    seeds,
    *,
    policies: list[str] | None = None,
    budget_s: float | None = None,
    out_dir: str | None = None,
    engine: str | None = None,
    progress=None,
) -> FuzzReport:
    """Differential-fuzz the given seeds (an int count or an iterable).

    ``policies`` filters :data:`POLICY_MATRIX` by label; ``budget_s`` stops
    after a wall-clock budget (the seeds actually covered are reported);
    ``out_dir`` receives a repro file per divergence; ``progress`` is an
    optional callable receiving one line per seed.  ``engine`` selects the
    production fluid engine diffed against the oracle (None = simulator
    default); ``"both"`` runs each case under *both* engines, demands
    exact flat-vs-object bit identity, then diffs the flat run against
    the oracle — the strongest (and slowest) mode.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    matrix = [
        entry for entry in POLICY_MATRIX
        if policies is None or entry[0] in policies
    ]
    if not matrix:
        raise ValueError(f"no policy matches {policies!r}")
    report = FuzzReport()
    deadline = time.monotonic() + budget_s if budget_s is not None else None
    for seed in seeds:
        if deadline is not None and time.monotonic() > deadline:
            report.budget_exhausted = True
            break
        seed = int(seed)
        report.seeds.append(seed)
        outcomes = []
        for label, scheduler, scheduler_kwargs in matrix:
            case = make_case(seed, label, scheduler, scheduler_kwargs)
            if engine == "both":
                diff = compare_engines(case)
                if diff.status != "divergence":
                    diff = run_case(case, engine="flat")
            else:
                diff = run_case(case, engine=engine)
            report.n_cases += 1
            if diff.status == "ok":
                report.n_ok += 1
            elif diff.status == "production-error":
                report.n_production_errors += 1
            else:
                report.failures.append((seed, diff))
                if out_dir is not None:
                    report.repro_files.append(save_repro(diff, out_dir))
            outcomes.append(f"{label}:{diff.status}")
        if progress is not None:
            progress(f"seed {seed}: " + " ".join(outcomes))
    return report


# ----------------------------------------------------------------------
# Hypothesis strategies (lazy: the runtime never imports hypothesis)
# ----------------------------------------------------------------------
def make_strategies():
    """Build hypothesis strategies over the fuzz space.

    Returns a namespace with ``topologies``, ``programs`` (drawing its
    socket count from the topology strategy is the caller's business),
    ``fault_plans`` and ``seeds``; shrinking works structurally (fewer
    tasks, smaller objects, milder faults)."""
    from hypothesis import strategies as st

    @st.composite
    def topologies(draw):
        n_sockets = draw(st.integers(2, 4))
        cores = draw(st.integers(1, 3))
        remote = draw(
            st.floats(12.0, 30.0, allow_nan=False, allow_infinity=False)
        )
        bandwidth = draw(st.sampled_from([2e5, 1e6, 2e6]))
        return NumaTopology(
            n_sockets=n_sockets,
            cores_per_socket=cores,
            distance=uniform_distance_matrix(n_sockets, remote=remote),
            node_bandwidth=bandwidth,
            name=f"hyp-{n_sockets}x{cores}",
        )

    @st.composite
    def programs(draw, n_sockets: int = 4, max_tasks: int = 16):
        prog = TaskProgram("hyp")
        objs = [
            prog.data(f"obj{i}", draw(st.integers(1, 12)) * _PAGE)
            for i in range(draw(st.integers(1, 4)))
        ]
        n_tasks = draw(st.integers(2, max_tasks))
        for t in range(n_tasks):
            if t and draw(st.booleans()) and draw(st.booleans()):
                prog.barrier()
            accesses = draw(
                st.lists(
                    st.tuples(
                        st.integers(0, len(objs) - 1),
                        st.sampled_from(list(AccessMode)),
                    ),
                    max_size=3,
                )
            )
            ins = [
                DataAccess(objs[i], m)
                for i, m in accesses
                if m is AccessMode.IN
            ]
            outs = [
                DataAccess(objs[i], m)
                for i, m in accesses
                if m is AccessMode.OUT
            ]
            inouts = [
                DataAccess(objs[i], m)
                for i, m in accesses
                if m is AccessMode.INOUT
            ]
            work = draw(st.sampled_from([0.05, 0.2, 0.5, 1.0]))
            prog.task(
                f"t{t}",
                ins=ins,
                outs=outs,
                inouts=inouts,
                work=work,
                meta={"ep_socket": draw(st.integers(0, n_sockets - 1))},
            )
        return prog.finalize()

    @st.composite
    def fault_plans(draw, n_cores: int = 4, n_nodes: int = 2):
        plan = FaultPlan(
            core_faults=draw(
                st.lists(
                    st.builds(
                        CoreFault,
                        core=st.integers(0, n_cores - 1),
                        at=st.sampled_from([0.2, 0.7, 1.3]),
                        duration=st.sampled_from([0.4, 0.9]),
                    ),
                    max_size=1,
                )
            ),
            slowdowns=draw(
                st.lists(
                    st.builds(
                        CoreSlowdown,
                        core=st.integers(0, n_cores - 1),
                        at=st.sampled_from([0.1, 0.6]),
                        factor=st.sampled_from([1.5, 3.0]),
                        duration=st.sampled_from([0.5, None]),
                    ),
                    max_size=1,
                )
            ),
            task_crashes=draw(
                st.lists(
                    st.builds(
                        TaskCrash,
                        probability=st.sampled_from([0.05, 0.1]),
                        at_fraction=st.sampled_from([0.25, 0.5, 0.75]),
                        max_crashes=st.integers(1, 2),
                    ),
                    max_size=1,
                )
            ),
            node_degradations=draw(
                st.lists(
                    st.builds(
                        NodeDegradation,
                        node=st.integers(0, n_nodes - 1),
                        at=st.sampled_from([0.1, 0.8]),
                        factor=st.sampled_from([0.5, 0.8]),
                        duration=st.sampled_from([0.6, None]),
                    ),
                    max_size=1,
                )
            ),
        )
        return None if plan.is_empty() else plan

    class _Namespace:
        pass

    ns = _Namespace()
    ns.topologies = topologies
    ns.programs = programs
    ns.fault_plans = fault_plans
    return ns
