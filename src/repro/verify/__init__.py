"""repro.verify — differential-oracle verification subsystem (DESIGN.md §11).

Three layers of correctness tooling for the simulator:

* :mod:`~repro.verify.oracle` — a deliberately naive reference simulator
  that replays a recorded production run and must agree bit-for-bit;
* :mod:`~repro.verify.invariants` — an online :class:`InvariantChecker`
  probe (``REPRO_VERIFY=1``) asserting structural invariants mid-run;
* :mod:`~repro.verify.fuzz` — the metamorphic + differential fuzzing
  harness behind ``repro verify fuzz``.
"""

from .differential import (
    DifferentialReport,
    Divergence,
    VerifyCase,
    compare_engines,
    differential_run,
    program_from_dict,
    program_to_dict,
    replay_file,
    run_case,
    save_repro,
)
from .fuzz import POLICY_MATRIX, FuzzReport, fuzz, make_case, make_strategies
from .invariants import InvariantChecker
from .oracle import NaiveMemory, OracleOutcome, OracleParams, ReferenceSimulator
from .probe import CompositeProbe, SimProbe
from .trace import DecisionRecorder, DecisionTrace, TraceEvent

__all__ = [
    "CompositeProbe",
    "DecisionRecorder",
    "DecisionTrace",
    "DifferentialReport",
    "Divergence",
    "FuzzReport",
    "InvariantChecker",
    "NaiveMemory",
    "OracleOutcome",
    "OracleParams",
    "POLICY_MATRIX",
    "ReferenceSimulator",
    "SimProbe",
    "TraceEvent",
    "VerifyCase",
    "compare_engines",
    "differential_run",
    "fuzz",
    "make_case",
    "make_strategies",
    "program_from_dict",
    "program_to_dict",
    "replay_file",
    "run_case",
    "save_repro",
]
