"""Online invariant checking for the production simulator.

The :class:`InvariantChecker` is a :class:`~repro.verify.probe.SimProbe`
that asserts, *while the run unfolds*, the structural properties every
simulated schedule must satisfy regardless of scheduler, fault plan or
machine (DESIGN.md §11):

* **core exclusivity** — a core runs at most one attempt at a time, and a
  quarantined core runs nothing;
* **dependence causality** — a task only starts with zero pending
  dependences, inside the active barrier epoch;
* **byte conservation** — first-touch only ever adds bound bytes, a
  migration moves bytes without creating or destroying any, and the
  manager's global per-node byte counters always equal the per-object page
  maps (recomputed independently);
* **no phantom-busy cores** — after a completed run or an ``_abort_run``
  every surviving core is idle exactly once;
* **no temporary-queue leaks** — at end-of-run ``parked`` and
  ``parked_by_key`` are empty (a scheduler that forgets ``reoffer_key``
  leaks here);
* **timestamp monotonicity** — the simulated clock and the emitted event
  stream never go backwards.

The checker raises :class:`~repro.errors.VerificationError` (a real raise,
not ``assert`` — it survives ``python -O``).  It is installed per run with
``Simulator(..., verify=True)`` or globally with ``REPRO_VERIFY=1``; with
neither, no probe exists and the simulator's behaviour is byte-identical
to an unverified run (tested).
"""

from __future__ import annotations

import numpy as np

from ..errors import VerificationError
from ..machine.memory import UNBOUND
from .probe import SimProbe

#: Slack for clock-monotonicity checks, matching the simulator's timer
#: coalescing tolerance.
_TIME_SLACK = 1e-9


class InvariantChecker(SimProbe):
    """Asserts runtime invariants during one simulator run."""

    def __init__(self, sim) -> None:
        self.sim = sim
        #: core -> tid of the attempt currently occupying it.
        self._busy: dict[int, int] = {}
        self._last_now = sim.now
        #: Independent per-object per-node byte model (ints, no numpy
        #: accumulation) rebuilt from the page maps after every mutation.
        self._bound: dict[int, np.ndarray] = {}
        for key in sim.memory._pages:
            self._bound[key] = self._per_node(sim.memory, key)
        self._reconcile(sim.memory, "initial placement")

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        raise VerificationError(
            f"invariant violated at t={self.sim.now:.6g}: {message}"
        )

    def _tick(self, what: str) -> None:
        if self.sim.now < self._last_now - _TIME_SLACK:
            self._fail(
                f"clock went backwards at {what}: "
                f"{self.sim.now!r} < {self._last_now!r}"
            )
        self._last_now = max(self._last_now, self.sim.now)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def on_offer(self, task, placement) -> None:
        if self.sim.done[task.tid]:
            self._fail(f"completed task {task.tid} was offered again")
        if task.tid in self.sim.running:
            self._fail(f"running task {task.tid} was offered again")

    def on_start(self, rt, factor: float, attempt: int) -> None:
        self._tick(f"start of task {rt.task.tid}")
        sim = self.sim
        tid = rt.task.tid
        if rt.core in self._busy:
            self._fail(
                f"core exclusivity: task {tid} started on core {rt.core} "
                f"already running task {self._busy[rt.core]}"
            )
        if rt.core in sim.quarantined:
            self._fail(f"task {tid} started on quarantined core {rt.core}")
        if sim.topology.socket_of_core(rt.core) != rt.socket:
            self._fail(
                f"task {tid} started on core {rt.core} which is not on "
                f"socket {rt.socket}"
            )
        if sim.pending_deps[tid] != 0:
            self._fail(
                f"dependence causality: task {tid} started with "
                f"{int(sim.pending_deps[tid])} unmet dependences"
            )
        if rt.task.epoch > sim.active_epoch:
            self._fail(
                f"barrier causality: task {tid} of epoch {rt.task.epoch} "
                f"started in epoch {sim.active_epoch}"
            )
        jit = sim.duration_jitter
        if not (1.0 - jit) - 1e-12 <= factor <= (1.0 + jit) + 1e-12:
            self._fail(
                f"jitter factor {factor!r} outside [1-{jit}, 1+{jit}]"
            )
        self._busy[rt.core] = tid

    def _release(self, rt, what: str) -> None:
        tid = rt.task.tid
        if self._busy.get(rt.core) != tid:
            self._fail(
                f"{what} of task {tid} on core {rt.core}, but that core "
                f"is running {self._busy.get(rt.core)!r}"
            )
        del self._busy[rt.core]

    def on_finish(self, rt) -> None:
        self._tick(f"finish of task {rt.task.tid}")
        if self.sim.now < rt.start - _TIME_SLACK:
            self._fail(
                f"task {rt.task.tid} finished at {self.sim.now!r} before "
                f"its start {rt.start!r}"
            )
        self._release(rt, "finish")

    def on_crash(self, rt, reason: str) -> None:
        self._tick(f"crash of task {rt.task.tid}")
        self._release(rt, f"{reason} crash")

    def on_timer(self, time: float) -> None:
        if time > self.sim.now + _TIME_SLACK:
            self._fail(
                f"timer popped early: timer time {time!r} is after "
                f"now={self.sim.now!r}"
            )

    # ------------------------------------------------------------------
    # Machine consistency, once per main-loop iteration
    # ------------------------------------------------------------------
    def on_loop(self, sim) -> None:
        self._tick("loop iteration")
        running_cores = {rt.core for rt in sim.running.values()}
        if len(running_cores) != len(sim.running):
            self._fail("core exclusivity: two running attempts share a core")
        if running_cores != set(self._busy):
            self._fail(
                f"busy-core model diverged: simulator {sorted(running_cores)}"
                f" vs checker {sorted(self._busy)}"
            )
        seen: set[int] = set()
        for s in sim.topology.sockets():
            for core in sim.idle_cores[s]:
                if core in seen:
                    self._fail(f"core {core} appears twice in the idle lists")
                seen.add(core)
                if sim.topology.socket_of_core(core) != s:
                    self._fail(f"core {core} idles under the wrong socket {s}")
        if seen & running_cores:
            self._fail(
                f"phantom-busy cores: {sorted(seen & running_cores)} are "
                "both idle and running"
            )
        if seen & sim.quarantined:
            self._fail(
                f"quarantined cores {sorted(seen & sim.quarantined)} are "
                "in the idle lists"
            )

    def on_abort(self, sim) -> None:
        if sim.running:
            self._fail("_abort_run left attempts in running")
        self._busy.clear()
        alive = [
            c for s in sim.topology.sockets()
            for c in sim.topology.cores_of_socket(s)
            if c not in sim.quarantined
        ]
        idle = [c for s in sim.topology.sockets() for c in sim.idle_cores[s]]
        if sorted(idle) != sorted(alive):
            self._fail(
                f"phantom-busy cores after abort: idle={sorted(idle)} but "
                f"surviving cores={sorted(alive)}"
            )

    def on_run_end(self, sim, result) -> None:
        if sim.parked:
            self._fail(
                f"parked-task leak: {len(sim.parked)} tasks still in the "
                "temporary queue at end-of-run"
            )
        if sim.parked_by_key:
            self._fail(
                "park_key leak: keys "
                f"{sorted(sim.parked_by_key)} still indexed at end-of-run"
            )
        if sim.running or self._busy:
            self._fail("attempts still running at end-of-run")
        if not bool(sim.done.all()):
            self._fail("end-of-run with unfinished tasks")
        self._reconcile(sim.memory, "end-of-run")
        if result.events:
            last = -np.inf
            for ev in result.events:
                if ev.ts < last - _TIME_SLACK:
                    self._fail(
                        f"event stream goes backwards: {ev.kind} at "
                        f"{ev.ts!r} after t={last!r}"
                    )
                last = max(last, ev.ts)

    # ------------------------------------------------------------------
    # Memory byte conservation
    # ------------------------------------------------------------------
    def _per_node(self, memory, key: int) -> np.ndarray:
        pages = memory._pages[key]
        bound = pages[pages != UNBOUND]
        counts = np.bincount(bound, minlength=memory.n_nodes).astype(np.int64)
        return counts * memory.page_size

    def _reconcile(self, memory, what: str) -> None:
        total = np.zeros(memory.n_nodes, dtype=np.int64)
        for per_node in self._bound.values():
            total += per_node
        if not np.array_equal(total, memory.bytes_on_node):
            self._fail(
                f"byte-conservation at {what}: page maps hold "
                f"{total.tolist()} bytes per node but the manager accounts "
                f"{memory.bytes_on_node.tolist()}"
            )

    def on_memory_op(self, memory, op: str, key: int) -> None:
        fresh = self._per_node(memory, key)
        old = self._bound.get(key)
        if old is None:
            old = np.zeros(memory.n_nodes, dtype=np.int64)
        if op == "migrate":
            if int(fresh.sum()) != int(old.sum()):
                self._fail(
                    f"byte-conservation: migrate of object {key} changed "
                    f"its bound total {int(old.sum())} -> {int(fresh.sum())}"
                )
        elif op == "touch":
            if int(fresh.sum()) < int(old.sum()):
                self._fail(
                    f"byte-conservation: touch of object {key} shrank its "
                    f"bound total {int(old.sum())} -> {int(fresh.sum())}"
                )
            if np.any(fresh < old):
                self._fail(
                    f"byte-conservation: touch of object {key} moved "
                    "already-bound pages"
                )
        if np.any(fresh < 0):
            self._fail(f"negative bound bytes on object {key}")
        self._bound[key] = fresh
        self._reconcile(memory, f"{op} of object {key}")
