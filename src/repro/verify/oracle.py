"""The reference oracle: a deliberately naive replay simulator.

This is the slow, obviously-correct twin of
:class:`~repro.runtime.simulator.Simulator` (TaskTorrent-style debugging
oracle, DESIGN.md §11).  It shares *no* machinery with the production
simulator beyond the pure :class:`~repro.machine.interconnect.Interconnect`
rate function and the two drain tolerances: no placement cache, no
pipelining hooks, no event bus, no timer heap — plain dicts, python-int
page maps and a sequential recorded-event queue.

It does not schedule.  Scheduling decisions, per-task jitter factors and
every timer pop of a production run are captured in a
:class:`~repro.verify.trace.DecisionTrace`; the oracle replays that trace
against its own independent model of the machine and must land on exactly
the same task records (core, socket, start, finish), byte traffic, memory
image and fault accounting.  Any disagreement is a simulator bug (or an
oracle bug — either way, a divergence worth a repro file).

Replay fidelity note: the oracle's clock stops at every instant the
production clock stopped (every recorded timer pop, even no-op ones),
because draining a stream in two steps is not float-identical to draining
it in one.  With those stop points pinned, both simulators perform the
same float operations in the same order and agree bit-for-bit, which is
why the differential comparison can use essentially zero tolerance.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import VerificationError
from ..machine.interconnect import Interconnect, StreamKey
from ..machine.topology import NumaTopology
from ..runtime.program import TaskProgram
from ..runtime.result import Message, TaskRecord
from ..runtime.simulator import _EPS, _EPS_BYTES
from ..runtime.task import Task
from .trace import DecisionTrace, TraceEvent

#: Page-map sentinel (kept separate from MemoryManager on purpose).
_FREE = -1


class NaiveMemory:
    """First-touch page placement, re-modelled with python ints and lists."""

    def __init__(self, n_nodes: int, page_size: int) -> None:
        self.n_nodes = n_nodes
        self.page_size = page_size
        self.pages: dict[int, list[int]] = {}
        self.sizes: dict[int, int] = {}
        self.bytes_on_node = [0] * n_nodes
        self.touch_count = 0

    def register(self, key: int, size_bytes: int) -> None:
        n_pages = -(-size_bytes // self.page_size)
        self.pages[key] = [_FREE] * n_pages
        self.sizes[key] = size_bytes

    def bind_all(self, key: int, node: int) -> None:
        pages = self.pages[key]
        for i in range(len(pages)):
            if pages[i] != _FREE:
                self.bytes_on_node[pages[i]] -= self.page_size
            pages[i] = node
            self.bytes_on_node[node] += self.page_size

    def interleave(self, key: int) -> None:
        pages = self.pages[key]
        for i in range(len(pages)):
            node = i % self.n_nodes
            if pages[i] != _FREE:
                self.bytes_on_node[pages[i]] -= self.page_size
            pages[i] = node
            self.bytes_on_node[node] += self.page_size

    def _page_span(self, key: int, offset: int, length: int | None) -> range:
        if length is None:
            length = self.sizes[key] - offset
        if length == 0:
            return range(0)
        first = offset // self.page_size
        last = -(-(offset + length) // self.page_size)
        return range(first, last)

    def touch(self, key: int, node: int, offset: int, length: int | None) -> None:
        pages = self.pages[key]
        for i in self._page_span(key, offset, length):
            if pages[i] == _FREE:
                pages[i] = node
                self.bytes_on_node[node] += self.page_size
                self.touch_count += 1

    def node_bytes(self, key: int, offset: int, length: int | None) -> list[int]:
        """Bound bytes of the range per node (partial pages attributed by
        overlap, like the production manager — but one page at a time)."""
        if length is None:
            length = self.sizes[key] - offset
        per_node = [0] * self.n_nodes
        pages = self.pages[key]
        for i in self._page_span(key, offset, length):
            node = pages[i]
            if node == _FREE:
                continue
            page_start = i * self.page_size
            overlap = min(page_start + self.page_size, offset + length)
            overlap -= max(page_start, offset)
            per_node[node] += overlap
        return per_node

    def traffic(self, task: Task) -> dict[int, float]:
        """Naive mirror of :func:`repro.runtime.cost.traffic_streams`."""
        streams: dict[int, float] = {}
        for access in task.accesses:
            per_node = self.node_bytes(
                access.obj.key, access.offset, access.length
            )
            mult = access.mode.traffic_multiplier
            for node in range(self.n_nodes):
                if per_node[node]:
                    streams[node] = (
                        streams.get(node, 0.0) + float(per_node[node]) * mult
                    )
        return streams


@dataclass(eq=False)
class _Attempt:
    task: Task
    core: int
    socket: int
    start: float
    compute_remaining: float
    streams: dict[int, float]
    # Rate-epoch state (mirrors the production engines, DESIGN.md §14).
    n_active: int = 0
    s_rate: dict[int, float] = field(default_factory=dict)
    s_deadline: dict[int, float] = field(default_factory=dict)
    c_deadline: float = 0.0
    fin_deadline: float = math.inf
    done_deadline: float = math.inf


@dataclass
class OracleOutcome:
    """What the oracle computed for one replayed run."""

    makespan: float
    records: list[TaskRecord]
    crashed_records: list[TaskRecord]
    bytes_by_pair: np.ndarray
    busy_time: np.ndarray
    steals: int
    parked_total: int
    touch_count: int
    bytes_on_node: list[int]
    reexecutions: int
    wasted_work: float
    cores_failed: int
    faults_injected: int = 0
    # Cluster runs only (None/empty on a single box).
    bytes_by_link: np.ndarray | None = None
    messages: list = field(default_factory=list)
    messages_dropped: int = 0

    @property
    def local_bytes(self) -> float:
        return float(np.trace(self.bytes_by_pair))

    @property
    def remote_bytes(self) -> float:
        return float(self.bytes_by_pair.sum()) - self.local_bytes


@dataclass(frozen=True)
class OracleParams:
    """The production run's resolved knobs the oracle must honour."""

    seed: int
    steal_enabled: bool
    steal_distance: float
    duration_jitter: float
    page_size: int
    max_retries: int
    retry_backoff: float
    max_iterations: int

    @classmethod
    def of_simulator(cls, sim) -> "OracleParams":
        return cls(
            seed=sim.seed,
            steal_enabled=sim.steal_enabled,
            steal_distance=sim.steal_distance,
            duration_jitter=sim.duration_jitter,
            page_size=sim.memory.page_size,
            max_retries=sim.max_retries,
            retry_backoff=sim.retry_backoff,
            max_iterations=sim.max_iterations,
        )


class ReferenceSimulator:
    """Replay one recorded run against the naive machine model."""

    def __init__(
        self,
        program: TaskProgram,
        topology: NumaTopology,
        interconnect: Interconnect,
        trace: DecisionTrace,
        params: OracleParams,
    ) -> None:
        self.program = program
        self.topology = topology
        self.interconnect = interconnect
        self.params = params
        self.trace = trace
        self._placements = {
            tid: deque(fifo) for tid, fifo in trace.placements.items()
        }
        self._events: list[TraceEvent] = list(trace.events)
        self._ev = 0

        self.memory = NaiveMemory(topology.n_nodes, params.page_size)
        for obj in program.objects:
            self.memory.register(obj.key, obj.size_bytes)
            if obj.initial_node is not None:
                self.memory.bind_all(obj.key, obj.initial_node)
            elif obj.interleaved:
                self.memory.interleave(obj.key)

        n = program.n_tasks
        self.socket_queues: list[deque[Task]] = [
            deque() for _ in range(topology.n_sockets)
        ]
        self.core_queues: list[deque[Task]] = [
            deque() for _ in range(topology.n_cores)
        ]
        self.idle_cores: list[list[int]] = [
            list(reversed(topology.cores_of_socket(s)))
            for s in topology.sockets()
        ]
        self.parked: list[Task] = []
        self.parked_by_key: dict[int, list[Task]] = {}
        self.pending_deps = [
            program.tdg.in_degree(t) for t in range(n)
        ]
        self.done = [False] * n
        self.n_done = 0
        self.running: dict[int, _Attempt] = {}
        self.n_epochs = program.n_epochs
        self.remaining_in_epoch = [0] * self.n_epochs
        for t in program.tasks:
            self.remaining_in_epoch[t.epoch] += 1
        self.active_epoch = 0
        self.held_by_epoch: list[list[Task]] = [[] for _ in range(self.n_epochs)]

        self.now = 0.0
        self.records: list[TaskRecord] = []
        self.crashed_records: list[TaskRecord] = []
        self._start_traffic: dict[int, tuple[float, float, float]] = {}
        self.bytes_by_pair = np.zeros(
            (topology.n_sockets, topology.n_nodes), dtype=np.float64
        )
        # Cluster model (mirrors Simulator; None/empty on a single box).
        self.n_resources = getattr(topology, "n_resources", topology.n_nodes)
        n_boxes = getattr(topology, "n_boxes", 1)
        if n_boxes > 1:
            self._box_of_socket = [
                topology.box_of_socket(s) for s in range(topology.n_sockets)
            ]
            self._nic_of_box = [
                topology.nic_of_box(b) for b in range(n_boxes)
            ]
            self.bytes_by_link = np.zeros((n_boxes, n_boxes), dtype=np.float64)
        else:
            self._box_of_socket = None
            self._nic_of_box = None
            self.bytes_by_link = None
        self.messages: list[Message] = []
        self.messages_dropped = 0
        self._msgs_in_flight: dict[int, list[tuple[int, int, float, float]]] = {}
        self.busy_time = np.zeros(topology.n_sockets, dtype=np.float64)
        self.steals = 0
        self.parked_total = 0
        self.quarantined: set[int] = set()
        self._core_speed: np.ndarray | None = None
        self._node_bw_factor: np.ndarray | None = None
        self.attempts = [0] * n
        self.reexecutions = 0
        self.wasted_work = 0.0
        self.cores_failed = 0

        # Rate-epoch state (same two-phase drain as the production
        # engines, re-implemented independently; see DESIGN.md §14).
        self._valid = True
        self._dep_min = math.inf

    # ------------------------------------------------------------------
    def _desync(self, message: str) -> None:
        raise VerificationError(
            f"oracle desync at t={self.now:.6g}: {message}"
        )

    # ------------------------------------------------------------------
    # Offering and parking (replayed decisions, no scheduler)
    # ------------------------------------------------------------------
    def _on_deps_satisfied(self, task: Task) -> None:
        if task.epoch > self.active_epoch:
            self.held_by_epoch[task.epoch].append(task)
        else:
            self._offer(task)

    def _offer(self, task: Task) -> None:
        fifo = self._placements.get(task.tid)
        if not fifo:
            self._desync(
                f"no recorded placement left for task {task.tid} — the "
                "production run offered it fewer times"
            )
        decision = fifo.popleft()
        if decision.park:
            self.parked.append(task)
            if decision.park_key is not None:
                self.parked_by_key.setdefault(
                    decision.park_key, []
                ).append(task)
            self.parked_total += 1
        elif decision.core is not None:
            self.core_queues[decision.core].append(task)
        else:
            self.socket_queues[decision.socket].append(task)

    def _advance_empty_epochs(self) -> None:
        while (
            self.active_epoch + 1 < self.n_epochs
            and self.remaining_in_epoch[self.active_epoch] == 0
        ):
            self.active_epoch += 1
            for task in self.held_by_epoch[self.active_epoch]:
                self._offer(task)
            self.held_by_epoch[self.active_epoch] = []

    # ------------------------------------------------------------------
    # Dispatch (mirrors the production pull + steal order exactly)
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            for s in range(self.topology.n_sockets):
                idle = self.idle_cores[s]
                if not idle:
                    continue
                for core in list(idle):
                    if self.core_queues[core]:
                        idle.remove(core)
                        task = self.core_queues[core].popleft()
                        self._start(task, core, s)
                        progress = True
                while self.idle_cores[s] and self.socket_queues[s]:
                    core = self.idle_cores[s].pop()
                    task = self.socket_queues[s].popleft()
                    self._start(task, core, s)
                    progress = True
            if self.params.steal_enabled and self._try_steal():
                progress = True

    def _try_steal(self) -> bool:
        stole = False
        for s in range(self.topology.n_sockets):
            if not self.idle_cores[s]:
                continue
            for victim in self.topology.sockets_by_distance(s):
                if victim == s:
                    continue
                if self.topology.dist(s, victim) > self.params.steal_distance:
                    break
                task = self._pop_victim_work(victim)
                if task is None:
                    continue
                core = self.idle_cores[s].pop()
                self.steals += 1
                self._start(task, core, s)
                stole = True
                break
        return stole

    def _pop_victim_work(self, victim: int) -> Task | None:
        if self.socket_queues[victim]:
            return self.socket_queues[victim].popleft()
        for core in self.topology.cores_of_socket(victim):
            if self.core_queues[core]:
                return self.core_queues[core].popleft()
        return None

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def _cluster_streams(
        self, task: Task, socket: int, streams: dict[int, float]
    ) -> tuple[dict[int, float], float]:
        """Independent mirror of ``Simulator._cluster_streams``: re-key
        cross-box traffic onto the source boxes' NIC resources, in the
        same float-accumulation order (streams iterate in ascending
        first-touch node order in both simulators)."""
        box_of = self._box_of_socket
        dst_box = box_of[socket]
        out: dict[int, float] = {}
        net: dict[int, float] | None = None
        for node, b in streams.items():
            src_box = box_of[node]
            if src_box == dst_box:
                out[node] = b
            else:
                nic = self._nic_of_box[src_box]
                if nic in out:
                    out[nic] += b
                else:
                    out[nic] = b
                if net is None:
                    net = {}
                net[src_box] = net.get(src_box, 0.0) + b
        net_bytes = 0.0
        if net:
            msgs = self._msgs_in_flight.setdefault(task.tid, [])
            for src_box, b in net.items():
                net_bytes += b
                self.bytes_by_link[src_box, dst_box] += b
                msgs.append((src_box, dst_box, b, self.now))
        return out, net_bytes

    def _start(self, task: Task, core: int, socket: int) -> None:
        node = socket
        for access in task.accesses:
            self.memory.touch(access.obj.key, node, access.offset, access.length)
        streams = self.memory.traffic(task)

        compute = task.work
        local_bytes = remote_bytes = 0.0
        for n in streams:
            compute += self.interconnect.access_latency(socket, n)
            self.bytes_by_pair[socket, n] += streams[n]
            if n == socket:
                local_bytes += streams[n]
            else:
                remote_bytes += streams[n]

        net_bytes = 0.0
        if self._box_of_socket is not None:
            streams, net_bytes = self._cluster_streams(task, socket, streams)
        self._start_traffic[task.tid] = (local_bytes, remote_bytes, net_bytes)

        if self.params.duration_jitter > 0.0:
            factor = self.trace.jitter.get((task.tid, self.attempts[task.tid]))
            if factor is None:
                self._desync(
                    f"no recorded jitter factor for task {task.tid} "
                    f"attempt {self.attempts[task.tid]}"
                )
            compute *= factor
            streams = {n: b * factor for n, b in streams.items()}

        rt = _Attempt(
            task=task,
            core=core,
            socket=socket,
            start=self.now,
            compute_remaining=compute,
            streams=streams,
        )
        # Admission mirrors the production engine contract: close the
        # epoch while the new attempt is still outside ``running``, clamp
        # sub-tolerance streams, then insert.
        self._materialize()
        n_active = 0
        for node, b in rt.streams.items():
            if b > _EPS_BYTES:
                n_active += 1
            else:
                rt.streams[node] = 0.0
        rt.n_active = n_active
        self._valid = False
        self.running[task.tid] = rt

    def _finish(self, rt: _Attempt) -> None:
        task = rt.task
        self._materialize()
        self._valid = False
        del self.running[task.tid]
        self.idle_cores[rt.socket].append(rt.core)
        self.done[task.tid] = True
        self.n_done += 1
        self.busy_time[rt.socket] += self.now - rt.start
        local_bytes, remote_bytes, net_bytes = self._start_traffic.pop(
            task.tid, (0.0, 0.0, 0.0)
        )
        self.records.append(
            TaskRecord(
                tid=task.tid,
                name=task.name,
                socket=rt.socket,
                core=rt.core,
                start=rt.start,
                finish=self.now,
                local_bytes=local_bytes,
                remote_bytes=remote_bytes,
                attempt=self.attempts[task.tid],
                net_bytes=net_bytes,
            )
        )
        in_flight = self._msgs_in_flight.pop(task.tid, None)
        if in_flight is not None:
            for src_box, dst_box, nbytes, send in in_flight:
                self.messages.append(
                    Message(
                        tid=task.tid, src_box=src_box, dst_box=dst_box,
                        nbytes=nbytes, send=send, recv=self.now,
                    )
                )
        self.remaining_in_epoch[task.epoch] -= 1
        for succ in self.program.tdg.successors(task.tid):
            self.pending_deps[succ] -= 1
            if self.pending_deps[succ] == 0:
                self._on_deps_satisfied(self.program.tasks[succ])
        while (
            self.active_epoch + 1 < self.n_epochs
            and self.remaining_in_epoch[self.active_epoch] == 0
        ):
            self.active_epoch += 1
            released = self.held_by_epoch[self.active_epoch]
            self.held_by_epoch[self.active_epoch] = []
            for held in released:
                self._offer(held)

    def _crash(self, rt: _Attempt, reason: str) -> None:
        task = rt.task
        self._materialize()
        self._valid = False
        del self.running[task.tid]
        if rt.core not in self.quarantined:
            self.idle_cores[rt.socket].append(rt.core)
        wasted = self.now - rt.start
        self.wasted_work += wasted
        self.busy_time[rt.socket] += wasted
        local_bytes, remote_bytes, net_bytes = self._start_traffic.pop(
            task.tid, (0.0, 0.0, 0.0)
        )
        dropped = self._msgs_in_flight.pop(task.tid, None)
        if dropped is not None:
            self.messages_dropped += len(dropped)
        self.crashed_records.append(
            TaskRecord(
                tid=task.tid,
                name=task.name,
                socket=rt.socket,
                core=rt.core,
                start=rt.start,
                finish=self.now,
                local_bytes=local_bytes,
                remote_bytes=remote_bytes,
                attempt=self.attempts[task.tid],
                outcome=reason,
                net_bytes=net_bytes,
            )
        )
        self.attempts[task.tid] += 1
        self.reexecutions += 1
        n_failed = self.attempts[task.tid]
        if n_failed > self.params.max_retries:
            self._desync(
                f"task {task.tid} exceeded the retry limit in replay but "
                "the production run completed"
            )
        delay = (
            self.params.retry_backoff * (2.0 ** (n_failed - 1))
            if self.params.retry_backoff > 0
            else 0.0
        )
        if delay > 0:
            # The backoff re-offer is a recorded ``retry_offer`` event; the
            # oracle has no timers to wait on.
            return
        self._offer(task)

    # ------------------------------------------------------------------
    # Recorded-event application (the oracle's only notion of a timer)
    # ------------------------------------------------------------------
    def _apply(self, ev: TraceEvent) -> None:
        if ev.kind == "tick":
            return
        if ev.kind == "reoffer":
            self._reoffer(list(ev.data[0]))
        elif ev.kind == "retry_offer":
            self._offer(self.program.tasks[ev.data[0]])
        elif ev.kind == "crash":
            rt = self.running.get(ev.data[0])
            if rt is None:
                self._desync(
                    f"recorded crash of task {ev.data[0]} which is not "
                    "running in the replay"
                )
            self._crash(rt, "crash")
        elif ev.kind == "fail_core":
            self._fail_core(ev.data[0])
        elif ev.kind == "restore_core":
            self._restore_core(ev.data[0])
        elif ev.kind == "speed":
            self._set_core_speed(*ev.data)
        elif ev.kind == "bw":
            self._set_node_bw(*ev.data)
        else:
            self._desync(f"unknown recorded event kind {ev.kind!r}")

    def _reoffer(self, tids: list[int]) -> None:
        parked_tids = {t.tid for t in self.parked}
        missing = [tid for tid in tids if tid not in parked_tids]
        if missing:
            self._desync(
                f"recorded reoffer of tasks {missing} which are not parked "
                "in the replay"
            )
        leaving = set(tids)
        self.parked = [t for t in self.parked if t.tid not in leaving]
        if self.parked_by_key:
            for key in list(self.parked_by_key):
                kept = [
                    t for t in self.parked_by_key[key]
                    if t.tid not in leaving
                ]
                if kept:
                    self.parked_by_key[key] = kept
                else:
                    del self.parked_by_key[key]
        for tid in tids:
            self._offer(self.program.tasks[tid])

    def _alive(self, socket: int) -> bool:
        return any(
            c not in self.quarantined
            for c in self.topology.cores_of_socket(socket)
        )

    def _fail_core(self, core: int) -> None:
        if core in self.quarantined:
            return
        socket = self.topology.socket_of_core(core)
        self.quarantined.add(core)
        self.cores_failed += 1
        if core in self.idle_cores[socket]:
            self.idle_cores[socket].remove(core)
        victim = next(
            (rt for rt in self.running.values() if rt.core == core), None
        )
        if victim is not None:
            self._crash(victim, "core-failure")
        orphans = list(self.core_queues[core])
        self.core_queues[core].clear()
        if not self._alive(socket):
            orphans.extend(self.socket_queues[socket])
            self.socket_queues[socket].clear()
        for task in orphans:
            self._offer(task)

    def _restore_core(self, core: int) -> None:
        if core not in self.quarantined:
            return
        self.quarantined.discard(core)
        self.idle_cores[self.topology.socket_of_core(core)].append(core)

    def _set_core_speed(self, core: int, speed: float) -> None:
        if self._core_speed is None:
            if speed == 1.0:
                return
            self._core_speed = np.ones(self.topology.n_cores)
        # Close the rate epoch under the old speeds before mutating.
        self._materialize()
        self._core_speed[core] = speed

    def _set_node_bw(self, node: int, factor: float) -> None:
        if self._node_bw_factor is None:
            if factor == 1.0:
                return
            # The factor axis spans every solver resource: memory nodes
            # plus, on clusters, one NIC per box.
            self._node_bw_factor = np.ones(self.n_resources)
        # Close the rate epoch under the old bandwidths before mutating.
        self._materialize()
        self._node_bw_factor[node] = factor

    # ------------------------------------------------------------------
    # Fluid mechanics (same arithmetic, same order, same tolerances)
    # ------------------------------------------------------------------
    def _collect_streams(self):
        keys: list[StreamKey] = []
        refs: list[tuple[_Attempt, int]] = []
        for rt in self.running.values():
            for n, b in rt.streams.items():
                if b > _EPS_BYTES:
                    keys.append(StreamKey(rt.socket, n, group=rt.task.tid))
                    refs.append((rt, n))
        return keys, refs

    def _stream_rates(self, keys: list[StreamKey]) -> np.ndarray:
        rates = self.interconnect.stream_rates(keys)
        if self._node_bw_factor is not None and len(keys):
            nodes = np.fromiter(
                (k.node for k in keys), dtype=np.int64, count=len(keys)
            )
            rates = rates * self._node_bw_factor[nodes]
        return rates

    def _speed(self, core: int) -> float:
        if self._core_speed is None:
            return 1.0
        return float(self._core_speed[core])

    def _materialize(self) -> None:
        """Rebase deadline state into byte space at ``now``; end the epoch."""
        if not self._valid:
            return
        now = self.now
        for rt in self.running.values():
            streams = rt.streams
            n_active = rt.n_active
            s_rate = rt.s_rate
            for node, d in rt.s_deadline.items():
                b = s_rate[node] * (d - now)
                if b > _EPS_BYTES:
                    streams[node] = b
                else:
                    streams[node] = 0.0
                    n_active -= 1
            rt.n_active = n_active
            speed = self._speed(rt.core)
            c = speed * (rt.c_deadline - now)
            rt.compute_remaining = c if c > _EPS else 0.0
        self._valid = False

    def _refresh(self) -> None:
        """Open a rate epoch at ``now``: absolute deadlines per stream."""
        if self._valid:
            return
        dep_min = math.inf
        if self.running:
            now = self.now
            keys, refs = self._collect_streams()
            for rt in self.running.values():
                rt.s_rate = {}
                rt.s_deadline = {}
            rates = self._stream_rates(keys)
            for (rt, node), rate in zip(refs, rates):
                rate = float(rate)
                rt.s_rate[node] = rate
                rt.s_deadline[node] = now + rt.streams[node] / rate
            for rt in self.running.values():
                speed = self._speed(rt.core)
                cd = now + rt.compute_remaining / speed
                fin = cd
                done = cd - _EPS / speed
                s_rate = rt.s_rate
                for node, d in rt.s_deadline.items():
                    if d > fin:
                        fin = d
                    dd = d - _EPS_BYTES / s_rate[node]
                    if dd > done:
                        done = dd
                    if dd < dep_min:
                        dep_min = dd
                rt.c_deadline = cd
                rt.fin_deadline = fin
                rt.done_deadline = done
                rt.n_active = len(rt.s_deadline)
        self._dep_min = dep_min
        self._valid = True

    def _advance(self) -> None:
        if self._valid and self.now >= self._dep_min:
            self._materialize()

    def _next_completion(self) -> float:
        if not self.running:
            return math.inf
        return min(rt.fin_deadline for rt in self.running.values())

    def _completed(self) -> list[_Attempt]:
        now = self.now
        if self._valid:
            done = [
                rt for rt in self.running.values() if rt.done_deadline <= now
            ]
        else:
            done = [
                rt for rt in self.running.values()
                if rt.n_active == 0 and rt.compute_remaining <= _EPS
            ]
        done.sort(key=lambda rt: rt.task.tid)
        return done

    # ------------------------------------------------------------------
    def run(self) -> OracleOutcome:
        """Replay the trace to completion."""
        self._advance_empty_epochs()
        for task in self.program.tasks:
            if self.pending_deps[task.tid] == 0:
                self._on_deps_satisfied(task)
        self._dispatch()

        iterations = 0
        n = self.program.n_tasks
        while self.n_done < n:
            iterations += 1
            if iterations > self.params.max_iterations:
                self._desync(
                    f"no convergence after {iterations} iterations "
                    f"({self.n_done}/{n} tasks done)"
                )
            self._refresh()
            next_completion = self._next_completion()
            next_event = (
                self._events[self._ev].time
                if self._ev < len(self._events)
                else math.inf
            )
            t_next = min(next_completion, next_event)
            if math.isinf(t_next):
                self._desync(
                    f"replay deadlock ({self.n_done}/{n} done, "
                    f"{len(self.parked)} parked, no event left)"
                )
            if t_next > self.now:
                self.now = t_next
                self._advance()

            while (
                self._ev < len(self._events)
                and self._events[self._ev].time <= self.now + _EPS
            ):
                ev = self._events[self._ev]
                self._ev += 1
                self._apply(ev)

            for rt in self._completed():
                self._finish(rt)
            self._dispatch()

        leftovers = sum(len(f) for f in self._placements.values())
        if leftovers:
            self._desync(
                f"{leftovers} recorded placements were never consumed — "
                "the production run offered more tasks than the replay"
            )
        return OracleOutcome(
            makespan=self.now,
            records=self.records,
            crashed_records=self.crashed_records,
            bytes_by_pair=self.bytes_by_pair,
            busy_time=self.busy_time,
            steals=self.steals,
            parked_total=self.parked_total,
            touch_count=self.memory.touch_count,
            bytes_on_node=list(self.memory.bytes_on_node),
            reexecutions=self.reexecutions,
            wasted_work=self.wasted_work,
            cores_failed=self.cores_failed,
            faults_injected=sum(self.trace.injected.values()),
            bytes_by_link=self.bytes_by_link,
            messages=self.messages,
            messages_dropped=self.messages_dropped,
        )
