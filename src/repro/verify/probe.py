"""The simulator's verification-probe interface.

A *probe* is the verification counterpart of
:class:`~repro.observability.Instrumentation`: the simulator calls into it
at every decision point (offers, starts, finishes, crashes, timer pops,
fault events, loop iterations), and the :class:`~repro.machine.memory.
MemoryManager` notifies it after every placement mutation.  Two probes
exist:

* :class:`~repro.verify.trace.DecisionRecorder` — captures everything the
  reference oracle needs to replay the run;
* :class:`~repro.verify.invariants.InvariantChecker` — asserts runtime
  invariants as the run unfolds.

Like instrumentation, a probe must never touch simulator state or an RNG:
probed and unprobed runs are byte-identical (tested).  The base class is a
complete no-op so probes only override what they watch.
"""

from __future__ import annotations


class SimProbe:
    """No-op base probe; subclasses override the hooks they care about."""

    def on_offer(self, task, placement) -> None:
        """A ready task was offered; ``placement`` is post-fault-remap."""

    def on_start(self, rt, factor: float, attempt: int) -> None:
        """Attempt ``attempt`` of ``rt.task`` started (jitter ``factor``)."""

    def on_finish(self, rt) -> None:
        """``rt`` completed; its record has been appended."""

    def on_crash(self, rt, reason: str) -> None:
        """``rt`` was killed (``"crash"`` timer or ``"core-failure"``)."""

    def on_timer(self, time: float) -> None:
        """A timer popped at ``time`` (before its callback runs)."""

    def on_reoffer(self, tids: list[int]) -> None:
        """Parked tasks ``tids`` leave the temporary queue (post-filter)."""

    def on_retry_offer(self, tid: int) -> None:
        """A crashed task is re-offered after its backoff delay."""

    def on_fault(self, kind: str, **args) -> None:
        """A fault hook fired: ``fail_core``, ``restore_core``,
        ``set_core_speed`` or ``set_node_bw``."""

    def on_inject(self, family: str) -> None:
        """The injector counted an injection of ``family``."""

    def on_loop(self, sim) -> None:
        """One main-loop iteration ended (timers, finishes, dispatch done)."""

    def on_abort(self, sim) -> None:
        """``_abort_run`` released the run state before an error."""

    def on_run_end(self, sim, result) -> None:
        """The run completed and ``result`` is fully built."""

    def on_memory_op(self, memory, op: str, key: int) -> None:
        """Object ``key``'s placement changed (``touch``/``bind``/
        ``migrate``/``interleave``)."""


class CompositeProbe(SimProbe):
    """Fan one probe slot out to several probes, in order."""

    def __init__(self, probes) -> None:
        self.probes = list(probes)

    def on_offer(self, task, placement) -> None:
        for p in self.probes:
            p.on_offer(task, placement)

    def on_start(self, rt, factor: float, attempt: int) -> None:
        for p in self.probes:
            p.on_start(rt, factor, attempt)

    def on_finish(self, rt) -> None:
        for p in self.probes:
            p.on_finish(rt)

    def on_crash(self, rt, reason: str) -> None:
        for p in self.probes:
            p.on_crash(rt, reason)

    def on_timer(self, time: float) -> None:
        for p in self.probes:
            p.on_timer(time)

    def on_reoffer(self, tids: list[int]) -> None:
        for p in self.probes:
            p.on_reoffer(tids)

    def on_retry_offer(self, tid: int) -> None:
        for p in self.probes:
            p.on_retry_offer(tid)

    def on_fault(self, kind: str, **args) -> None:
        for p in self.probes:
            p.on_fault(kind, **args)

    def on_inject(self, family: str) -> None:
        for p in self.probes:
            p.on_inject(family)

    def on_loop(self, sim) -> None:
        for p in self.probes:
            p.on_loop(sim)

    def on_abort(self, sim) -> None:
        for p in self.probes:
            p.on_abort(sim)

    def on_run_end(self, sim, result) -> None:
        for p in self.probes:
            p.on_run_end(sim, result)

    def on_memory_op(self, memory, op: str, key: int) -> None:
        for p in self.probes:
            p.on_memory_op(memory, op, key)
