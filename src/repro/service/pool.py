"""Supervised worker pool: crash isolation for simulation jobs.

Each worker is a dedicated OS process joined to the supervisor by a pipe.
Running jobs out-of-process is what turns a hard worker death (SIGKILL,
segfault, OOM-kill) into an *observable event* instead of a lost server:
the supervisor polls the pipe and the process liveness together, so every
dispatch resolves to exactly one of four outcomes:

``ok``         the worker returned a result dict;
``error``      the job itself failed with a library error (deterministic
               — retrying is pointless, the job is failed);
``crashed``    the worker process died mid-job (retryable: the job may be
               poison, or the worker may have been killed externally);
``timeout``    the job exceeded its deadline and the worker was killed
               (the only way to reclaim a wedged worker).

After ``crashed``/``timeout`` the slot's process is dead; the pool
replaces it with a fresh worker before returning, so the slot is always
usable again immediately.

``run`` is blocking by design — the asyncio service calls it via
``asyncio.to_thread``, one thread per busy slot.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from typing import Any

from ..errors import ServiceError
from .jobs import execute_spec

#: Pipe poll granularity; bounds both crash-detection and deadline latency.
_POLL_S = 0.02


def _worker_main(conn) -> None:
    """Worker process loop: recv spec dict, run it, send outcome dict."""
    from ..errors import ReproError

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        try:
            result = execute_spec(msg)
            out = {"ok": True, "result": result}
        except ReproError as exc:
            out = {"ok": False, "error": type(exc).__name__,
                   "message": str(exc)}
        except Exception as exc:  # defensive: never kill the loop silently
            out = {"ok": False, "error": "InternalError",
                   "message": f"{type(exc).__name__}: {exc}"}
        try:
            conn.send(out)
        except (BrokenPipeError, OSError):
            return


@dataclass
class Outcome:
    """Result of one dispatch (see module docstring for the kinds)."""

    kind: str  # "ok" | "error" | "crashed" | "timeout"
    payload: dict[str, Any] | None = None
    exitcode: int | None = None


class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, ctx) -> None:
        parent, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child,), daemon=True
        )
        self.process.start()
        child.close()
        self.conn = parent

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, grace_s: float = 1.0) -> None:
        """Ask nicely, then kill."""
        if self.process.is_alive():
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self.process.join(timeout=grace_s)
        self.kill()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        self.conn.close()


class WorkerPool:
    """Fixed number of supervised slots; dead workers are replaced."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ServiceError(f"need >= 1 worker, got {n_workers}")
        self.n_workers = n_workers
        # Never plain fork: workers are (re)started from asyncio.to_thread
        # worker threads, and forking a multi-threaded process can leave
        # the child holding locks (import/logging/malloc) whose owners
        # don't exist on its side — a deadlock on the child's first
        # import.  forkserver forks from a dedicated single-threaded
        # helper instead (preloaded with the simulation modules so worker
        # start stays cheap); spawn is the portable fallback.
        try:
            self._ctx = mp.get_context("forkserver")
            self._ctx.set_forkserver_preload(["repro.service.jobs"])
        except ValueError:  # platform without forkserver
            self._ctx = mp.get_context("spawn")
        self._workers: list[_Worker | None] = [None] * n_workers
        self._started = False
        #: Workers replaced after a crash/timeout (observability).
        self.replacements = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        for slot in range(self.n_workers):
            self._workers[slot] = _Worker(self._ctx)
        self._started = True

    def stop(self) -> None:
        for slot, worker in enumerate(self._workers):
            if worker is not None:
                worker.stop()
                self._workers[slot] = None
        self._started = False

    def pids(self) -> list[int]:
        return [w.pid for w in self._workers if w is not None and w.alive()]

    def _replace(self, slot: int) -> None:
        worker = self._workers[slot]
        if worker is not None:
            worker.kill()
        self._workers[slot] = _Worker(self._ctx)
        self.replacements += 1

    # -- dispatch --------------------------------------------------------
    def run(
        self, slot: int, spec_dict: dict[str, Any],
        timeout_s: float | None = None,
    ) -> Outcome:
        """Run one job on ``slot``'s worker; blocking (use a thread).

        Always leaves the slot with a live worker, whatever happened.
        """
        if not self._started:
            raise ServiceError("pool is not started")
        worker = self._workers[slot]
        if worker is None or not worker.alive():
            # A worker can die between jobs (external kill): heal silently.
            self._replace(slot)
            worker = self._workers[slot]
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        try:
            worker.conn.send(spec_dict)
        except (BrokenPipeError, OSError):
            self._replace(slot)
            return Outcome("crashed", exitcode=worker.process.exitcode)
        while True:
            try:
                if worker.conn.poll(_POLL_S):
                    payload = worker.conn.recv()
                    if payload.get("ok"):
                        return Outcome("ok", payload=payload["result"])
                    return Outcome("error", payload=payload)
            except (EOFError, OSError):
                self._replace(slot)
                return Outcome("crashed", exitcode=worker.process.exitcode)
            if not worker.alive():
                # Drain a result that raced the death of its sender.
                try:
                    if worker.conn.poll(0):
                        payload = worker.conn.recv()
                        if payload.get("ok"):
                            return Outcome("ok", payload=payload["result"])
                        return Outcome("error", payload=payload)
                except (EOFError, OSError):
                    pass
                exitcode = worker.process.exitcode
                self._replace(slot)
                return Outcome("crashed", exitcode=exitcode)
            if deadline is not None and time.monotonic() > deadline:
                self._replace(slot)
                return Outcome("timeout")
