"""Load generator + chaos harness for the simulation service.

Drives a real ``repro serve`` server process over HTTP and measures the
numbers the ROADMAP asks for — jobs/s, p50/p99 latency, cache hit rate —
plus the robustness headline: recovery time under injected worker kills,
poison-job quarantine, and a SIGTERM/restart round trip that must lose
zero completed results.  ``benchmarks/bench_service.py`` is the CLI
wrapper that writes the schema-validated ``BENCH_service.json``.

The generator submits with ``?wait=1`` (one connection per in-flight
job, bounded by a concurrency semaphore) and honours ``Retry-After`` on
429 — i.e. it is a *well-behaved* client, so a full queue shows up as
increased latency rather than failures.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable

from ..errors import BenchmarkError, ServiceError
from .client import ServiceClient, arequest_json

#: Required schema of one ``BENCH_service.json`` entry (extra keys allowed).
SERVICE_BENCH_SCHEMA_KEYS: dict[str, type] = {
    "name": str,
    "jobs": int,
    "wall_s": float,
    "jobs_per_s": float,
    "p50_ms": float,
    "p99_ms": float,
    "cache_hit_rate": float,
}

#: Problem sizes for generated jobs: small enough that service overhead —
#: not simulation time — dominates, which is what a service bench measures.
TINY_APP_PARAMS = {"n_blocks": 6, "block_elems": 1024, "iterations": 2}


def make_job_specs(
    n: int,
    *,
    app: str = "nstream",
    policy: str = "las",
    machine: str = "two-socket",
    seed_base: int = 0,
    sleep_s: float = 0.0,
    tenant: str = "loadgen",
) -> list[dict[str, Any]]:
    """``n`` distinct job specs (unique seeds -> unique content hashes)."""
    specs = []
    for i in range(n):
        spec: dict[str, Any] = {
            "app": app,
            "policy": policy,
            "machine": machine,
            "seed": seed_base + i,
            "app_params": dict(TINY_APP_PARAMS),
            "tenant": tenant,
        }
        if sleep_s > 0:
            spec["chaos"] = {"sleep_s": sleep_s}
        specs.append(spec)
    return specs


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


async def submit_and_wait(
    host: str,
    port: int,
    spec: dict[str, Any],
    *,
    wait_timeout: float = 120.0,
    max_attempts: int = 200,
) -> tuple[dict[str, Any], float]:
    """Submit one job, honouring 429 backpressure; return (body, latency_s).

    Latency is submit-to-terminal wall time, including any backoff spent
    being shed — the client-observed number.
    """
    t0 = time.monotonic()
    for _ in range(max_attempts):
        resp = await arequest_json(
            host, port, "POST", f"/v1/jobs?wait=1&timeout={wait_timeout:g}",
            spec, timeout=wait_timeout + 30.0,
        )
        if resp.status == 429:
            await asyncio.sleep(min(resp.retry_after_s or 0.2, 0.5))
            continue
        if resp.status in (200, 202):
            body = resp.body
            # 202 = still running at wait timeout: poll until terminal.
            while body.get("state") in ("QUEUED", "RUNNING", "RETRYING"):
                await asyncio.sleep(0.05)
                poll = await arequest_json(
                    host, port, "GET", f"/v1/jobs/{body['job_id']}"
                )
                body = poll.body
            return body, time.monotonic() - t0
        raise ServiceError(
            f"submit failed: HTTP {resp.status}: {resp.body}"
        )
    raise ServiceError(f"job shed {max_attempts} times; giving up")


async def run_batch(
    host: str,
    port: int,
    specs: list[dict[str, Any]],
    *,
    concurrency: int = 16,
    wait_timeout: float = 120.0,
) -> dict[str, Any]:
    """Submit a batch, bounded concurrency; gather states and latencies."""
    semaphore = asyncio.Semaphore(concurrency)

    async def one(spec: dict[str, Any]):
        async with semaphore:
            return await submit_and_wait(
                host, port, spec, wait_timeout=wait_timeout
            )

    t0 = time.monotonic()
    outcomes = await asyncio.gather(*(one(s) for s in specs))
    wall = time.monotonic() - t0
    bodies = [b for b, _ in outcomes]
    latencies = [lat for _, lat in outcomes]
    return {
        "wall_s": wall,
        "bodies": bodies,
        "latencies_s": latencies,
        "states": [b.get("state") for b in bodies],
        "hashes": [b.get("hash") for b in bodies],
    }


def batch_entry(name: str, batch: dict[str, Any],
                cache_hit_rate: float) -> dict[str, Any]:
    """Fold one batch run into a ``BENCH_service.json`` entry."""
    lats = batch["latencies_s"]
    wall = batch["wall_s"]
    return {
        "name": name,
        "jobs": len(lats),
        "wall_s": wall,
        "jobs_per_s": len(lats) / wall if wall > 0 else float("inf"),
        "p50_ms": percentile(lats, 50) * 1e3,
        "p99_ms": percentile(lats, 99) * 1e3,
        "cache_hit_rate": cache_hit_rate,
    }


def validate_service_entries(entries: Any) -> None:
    """Schema check for ``BENCH_service.json`` (raises BenchmarkError)."""
    if not isinstance(entries, list) or not entries:
        raise BenchmarkError("service bench file must be a non-empty list")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BenchmarkError(f"entry {i} is not an object")
        for key, typ in SERVICE_BENCH_SCHEMA_KEYS.items():
            if key not in entry:
                raise BenchmarkError(f"entry {i} missing key {key!r}")
            value = entry[key]
            if typ is float and isinstance(value, int) and not isinstance(value, bool):
                value = float(value)
            if not isinstance(value, typ) or isinstance(value, bool):
                raise BenchmarkError(
                    f"entry {i} key {key!r}: expected {typ.__name__}, "
                    f"got {type(entry[key]).__name__}"
                )
        if not 0.0 <= float(entry["cache_hit_rate"]) <= 1.0:
            raise BenchmarkError(
                f"entry {i}: cache_hit_rate outside [0, 1]"
            )


def write_service_entries(entries: list[dict[str, Any]],
                          path: str | Path) -> None:
    validate_service_entries(entries)
    Path(path).write_text(json.dumps(entries, indent=1, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# server process management


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServerProcess:
    """A ``repro serve`` subprocess with readiness and chaos helpers."""

    def __init__(
        self,
        data_dir: str | Path,
        *,
        workers: int = 2,
        queue_capacity: int = 64,
        port: int | None = None,
        extra_args: list[str] | None = None,
    ) -> None:
        self.port = port if port is not None else free_port()
        self.data_dir = str(data_dir)
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(self.port),
            "--workers", str(workers),
            "--queue-capacity", str(queue_capacity),
            "--data-dir", self.data_dir,
        ] + (extra_args or [])
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            argv, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        self.client = ServiceClient("127.0.0.1", self.port, timeout=10.0)

    def wait_ready(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise ServiceError(
                    f"server exited early (code {self.process.returncode})"
                )
            if self.client.ready():
                return
            time.sleep(0.05)
        self.kill()
        raise ServiceError(f"server not ready after {timeout}s")

    def worker_pids(self) -> list[int]:
        return list(self.client.workers().body["pids"])

    def kill_one_worker(self) -> int:
        """SIGKILL one worker process; returns its pid."""
        pid = self.worker_pids()[0]
        os.kill(pid, signal.SIGKILL)
        return pid

    def sigterm(self, timeout: float = 30.0) -> int:
        """Graceful shutdown; returns the exit code."""
        self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.kill()
            raise ServiceError(f"server ignored SIGTERM for {timeout}s") from None

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)


# ---------------------------------------------------------------------------
# the full benchmark scenario


def run_service_bench(
    data_dir: str | Path,
    *,
    jobs: int = 40,
    workers: int = 3,
    concurrency: int = 16,
    chaos_jobs: int = 8,
    chaos_sleep_s: float = 0.3,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, Any]]:
    """The committed ``BENCH_service.json`` scenario.

    Phases: (1) cold batch of unique jobs, (2) identical warm batch that
    must be served ~entirely from the cache, (3) chaos batch with an
    injected worker SIGKILL and one poison job — every non-poison job
    must complete and the poison job must be quarantined, (4) SIGTERM +
    restart — every phase-1 result hash must still resolve.
    """

    def note(message: str) -> None:
        if progress:
            progress(message)

    entries: list[dict[str, Any]] = []
    data_dir = Path(data_dir)
    server = ServerProcess(
        data_dir, workers=workers, queue_capacity=max(jobs, 2 * concurrency)
    )
    try:
        server.wait_ready()
        host, port = "127.0.0.1", server.port
        specs = make_job_specs(jobs)

        note(f"phase 1: {jobs} unique jobs, concurrency {concurrency}")
        cold = asyncio.run(
            run_batch(host, port, specs, concurrency=concurrency)
        )
        bad = [s for s in cold["states"] if s != "DONE"]
        if bad:
            raise BenchmarkError(f"cold batch: {len(bad)} jobs not DONE: {bad[:5]}")
        entries.append(batch_entry("service/cold", cold, 0.0))

        note("phase 2: identical batch (cache hits expected)")
        warm = asyncio.run(
            run_batch(host, port, specs, concurrency=concurrency)
        )
        hits = sum(1 for b in warm["bodies"] if b.get("cached"))
        warm_hit_rate = hits / len(warm["bodies"])
        if warm_hit_rate < 0.99:
            raise BenchmarkError(
                f"warm batch cache hit rate {warm_hit_rate:.2%} < 99%"
            )
        if warm["hashes"] != cold["hashes"]:
            raise BenchmarkError("warm batch produced different hashes")
        entries.append(batch_entry("service/warm", warm, warm_hit_rate))

        note(f"phase 3: chaos — {chaos_jobs} slow jobs, worker kill, 1 poison")
        chaos_specs = make_job_specs(
            chaos_jobs, seed_base=10_000, sleep_s=chaos_sleep_s
        )
        poison = make_job_specs(1, seed_base=99_999)[0]
        poison["chaos"] = {"kill_worker": True}

        async def chaos_phase() -> dict[str, Any]:
            batch_task = asyncio.ensure_future(
                run_batch(host, port, chaos_specs + [poison],
                          concurrency=concurrency,
                          wait_timeout=60.0)
            )
            # Let jobs occupy the workers, then murder one mid-job.
            await asyncio.sleep(chaos_sleep_s)
            t_kill = time.monotonic()
            pid = server.kill_one_worker()
            note(f"  killed worker pid {pid}")
            batch = await batch_task
            batch["recovery_s"] = time.monotonic() - t_kill
            return batch

        chaos = asyncio.run(chaos_phase())
        states = chaos["states"]
        poison_state = states[-1]
        nonpoison_states = states[:-1]
        if poison_state != "QUARANTINED":
            raise BenchmarkError(
                f"poison job state {poison_state!r}, expected QUARANTINED"
            )
        not_done = [s for s in nonpoison_states if s != "DONE"]
        if not_done:
            raise BenchmarkError(
                f"chaos batch: {len(not_done)} non-poison jobs not DONE"
            )
        quarantine_files = list((data_dir / "quarantine").glob("*.json"))
        if not quarantine_files:
            raise BenchmarkError("no quarantine diagnostic artifact written")
        entry = batch_entry("service/chaos", chaos, 0.0)
        entry["recovery_s"] = chaos["recovery_s"]
        entry["quarantined"] = 1
        entry["worker_kills"] = 1
        entries.append(entry)

        note("phase 4: SIGTERM drain + restart, zero-loss check")
        server.sigterm()
        server = ServerProcess(data_dir, workers=workers)
        server.wait_ready()
        t0 = time.monotonic()
        lost = 0
        for content_hash in cold["hashes"]:
            resp = server.client.result(content_hash)
            if resp.status != 200:
                lost += 1
        if lost:
            raise BenchmarkError(
                f"restart lost {lost}/{len(cold['hashes'])} results"
            )
        wall = time.monotonic() - t0
        entries.append({
            "name": "service/restart-recall",
            "jobs": len(cold["hashes"]),
            "wall_s": wall,
            "jobs_per_s": len(cold["hashes"]) / wall if wall > 0 else 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "cache_hit_rate": 1.0,
            "lost_results": 0,
        })
        return entries
    finally:
        server.kill()
