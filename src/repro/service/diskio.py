"""Write-behind disk I/O: keep fsync latency off the asyncio event loop.

The journal and the result cache both end every write with an
``fsync`` — that is what makes them crash-safe, and it is also a
millisecond-scale blocking syscall.  Called directly from ``submit()``
or the dispatch loop it would stall *every* in-flight request for the
duration of each sync.

:class:`WriteBehind` is the shared escape hatch: a single daemon thread
per writer executes queued thunks strictly in submission order, so the
on-disk file sees exactly the sequence of writes the caller issued —
just slightly later.  ``flush()`` blocks until the queue is empty (a
durability barrier), ``close()`` flushes and stops the thread, and an
I/O error raised by any thunk is re-raised to the caller on its next
``submit``/``flush``/``close`` instead of vanishing into the thread.

The deliberate trade-off: between ``submit`` and the matching fsync
there is a small window in which a hard kill (SIGKILL, power loss) can
lose that one record.  Graceful paths are unaffected — the service's
drain/stop close the writers, so anything written before shutdown is
durable — and losing a ``submit`` journal line merely forgets a job that
never ran; deterministic re-submission rebuilds it bit-identically.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable


class WriteBehind:
    """Single background thread running queued thunks in FIFO order."""

    def __init__(self, name: str = "write-behind") -> None:
        self.name = name
        self._queue: queue.Queue[Callable[[], None] | None] = queue.Queue()
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self._closed = False

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            thunk = self._queue.get()
            try:
                if thunk is None:
                    return
                try:
                    thunk()
                except BaseException as exc:  # surfaced on the next call
                    self._error = exc
            finally:
                self._queue.task_done()

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    # ------------------------------------------------------------------
    def submit(self, thunk: Callable[[], None]) -> None:
        """Queue ``thunk`` for ordered execution on the writer thread."""
        self._raise_pending()
        if self._closed:
            raise RuntimeError(f"writer {self.name!r} is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=self.name, daemon=True
            )
            self._thread.start()
        self._queue.put(thunk)

    def flush(self) -> None:
        """Block until every queued write has executed (durability barrier)."""
        self._queue.join()
        self._raise_pending()

    def close(self) -> None:
        """Flush, stop the thread, and surface any pending write error."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join()
            self._thread = None
        self._queue.join()
        self._raise_pending()
