"""Content-addressed result cache: the dedupe layer of the service.

Simulations are deterministic (DESIGN.md §11 proves bit-exactness), so a
result is fully identified by the SHA-256 of its canonical request JSON
(:meth:`~repro.service.jobs.JobSpec.content_hash`).  That makes caching
*sound by construction* — there is no invalidation problem, only storage.

Two tiers:

* an in-memory dict (always on) for the hot working set;
* an optional on-disk tier (``cache_dir``) holding one
  ``<hash>.json`` per result, written atomically (tmp + fsync + rename)
  so a crash can never leave a half-written entry that would later be
  served as a result.  The disk tier is what lets a restarted server
  answer for work done in a previous life.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .diskio import WriteBehind


class ResultCache:
    """Two-tier content-addressed store: hash -> result dict.

    ``write_behind=True`` moves the disk tier's fsync+rename onto a
    :class:`~repro.service.diskio.WriteBehind` thread (the memory tier is
    always updated synchronously, so a put is immediately readable);
    :meth:`close` is the durability barrier.  The default stays
    synchronous: a bare ``put`` then a fresh ``ResultCache`` on the same
    directory must observe the entry.
    """

    def __init__(
        self, cache_dir: str | Path | None = None, *,
        write_behind: bool = False,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, dict[str, Any]] = {}
        self._write_behind = write_behind
        self._writer: WriteBehind | None = None

    def __len__(self) -> int:
        n = len(self._memory)
        if self.cache_dir is not None:
            on_disk = {p.stem for p in self.cache_dir.glob("*.json")}
            n = len(on_disk | set(self._memory))
        return n

    def get(self, content_hash: str) -> dict[str, Any] | None:
        hit = self._memory.get(content_hash)
        if hit is not None:
            return hit
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{content_hash}.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        self._memory[content_hash] = data
        return data

    def put(self, content_hash: str, result: dict[str, Any]) -> None:
        self._memory[content_hash] = result
        if self.cache_dir is None:
            return
        # Serialize on the caller's thread so a later mutation of the
        # result dict cannot race the deferred disk write.
        payload = json.dumps(result, sort_keys=True)
        if self._write_behind:
            if self._writer is None:
                self._writer = WriteBehind(f"cache:{self.cache_dir.name}")
            self._writer.submit(lambda: self._write_entry(content_hash, payload))
        else:
            self._write_entry(content_hash, payload)

    def _write_entry(self, content_hash: str, payload: str) -> None:
        path = self.cache_dir / f"{content_hash}.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)  # atomic: readers see old-or-new, never torn

    def flush(self) -> None:
        """Durability barrier: all prior puts are on disk on return."""
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
