"""Content-addressed result cache: the dedupe layer of the service.

Simulations are deterministic (DESIGN.md §11 proves bit-exactness), so a
result is fully identified by the SHA-256 of its canonical request JSON
(:meth:`~repro.service.jobs.JobSpec.content_hash`).  That makes caching
*sound by construction* — there is no invalidation problem, only storage.

Two tiers:

* an in-memory dict (always on) for the hot working set;
* an optional on-disk tier (``cache_dir``) holding one
  ``<hash>.json`` per result, written atomically (tmp + fsync + rename)
  so a crash can never leave a half-written entry that would later be
  served as a result.  The disk tier is what lets a restarted server
  answer for work done in a previous life.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any


class ResultCache:
    """Two-tier content-addressed store: hash -> result dict."""

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, dict[str, Any]] = {}

    def __len__(self) -> int:
        n = len(self._memory)
        if self.cache_dir is not None:
            on_disk = {p.stem for p in self.cache_dir.glob("*.json")}
            n = len(on_disk | set(self._memory))
        return n

    def get(self, content_hash: str) -> dict[str, Any] | None:
        hit = self._memory.get(content_hash)
        if hit is not None:
            return hit
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{content_hash}.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        self._memory[content_hash] = data
        return data

    def put(self, content_hash: str, result: dict[str, Any]) -> None:
        self._memory[content_hash] = result
        if self.cache_dir is None:
            return
        path = self.cache_dir / f"{content_hash}.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(result, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)  # atomic: readers see old-or-new, never torn
