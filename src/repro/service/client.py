"""Clients for the simulation service: sync (CLI) and async (load gen).

Both speak the minimal one-request-per-connection HTTP/1.1 dialect of
:mod:`repro.service.http` using only the stdlib.  The sync client backs
``repro submit``; the async one is what the load generator fans out
with (hundreds of concurrent requests on one event loop, no thread per
connection).
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any

from ..errors import ServiceError


class ServiceResponse:
    """Status + parsed JSON body + the headers backpressure lives in."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: dict[str, str],
                 body: Any) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def retry_after_s(self) -> float | None:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


# ---------------------------------------------------------------------------
# sync (CLI)


def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 30.0,
    headers: dict[str, str] | None = None,
) -> ServiceResponse:
    """One synchronous JSON request (stdlib ``http.client``)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json",
                              **(headers or {})})
        response = conn.getresponse()
        raw = response.read()
        headers = {k.lower(): v for k, v in response.getheaders()}
        try:
            data = json.loads(raw.decode() or "null")
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"{method} {path}: non-JSON response ({exc})"
            ) from exc
        return ServiceResponse(response.status, headers, data)
    except OSError as exc:
        raise ServiceError(
            f"cannot reach service at {host}:{port}: {exc}"
        ) from exc
    finally:
        conn.close()


class ServiceClient:
    """Convenience wrapper bound to one server address."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _call(self, method: str, path: str, body: dict | None = None,
              headers: dict[str, str] | None = None) -> ServiceResponse:
        return request_json(self.host, self.port, method, path, body,
                            timeout=self.timeout, headers=headers)

    def submit(self, spec: dict, *, wait: bool = False,
               wait_timeout: float | None = None,
               correlation_id: str | None = None) -> ServiceResponse:
        path = "/v1/jobs"
        if wait:
            path += "?wait=1"
            if wait_timeout is not None:
                path += f"&timeout={wait_timeout:g}"
        headers = (
            {"X-Correlation-Id": correlation_id} if correlation_id else None
        )
        return self._call("POST", path, spec, headers)

    def job(self, job_id: str) -> ServiceResponse:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def profile(self, job_id: str) -> ServiceResponse:
        """The job's critical-path profile artifact (DESIGN.md §13)."""
        return self._call("GET", f"/v1/jobs/{job_id}/profile")

    def result(self, content_hash: str) -> ServiceResponse:
        return self._call("GET", f"/v1/results/{content_hash}")

    def metrics(self) -> ServiceResponse:
        return self._call("GET", "/metrics")

    def workers(self) -> ServiceResponse:
        return self._call("GET", "/v1/workers")

    def ready(self) -> bool:
        try:
            return self._call("GET", "/readyz").status == 200
        except ServiceError:
            return False


# ---------------------------------------------------------------------------
# async (load generator)


async def arequest_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 30.0,
    headers: dict[str, str] | None = None,
) -> ServiceResponse:
    """One asynchronous JSON request over a fresh connection."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()

        async def read_response() -> ServiceResponse:
            status_line = await reader.readline()
            parts = status_line.decode().split(maxsplit=2)
            if len(parts) < 2:
                raise ServiceError(
                    f"{method} {path}: malformed status line {status_line!r}"
                )
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0) or 0)
            raw = await reader.readexactly(length) if length else b""
            data = json.loads(raw.decode() or "null")
            return ServiceResponse(status, headers, data)

        return await asyncio.wait_for(read_response(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
