"""Simulation-as-a-service: a fault-tolerant async job server.

DESIGN.md §12.  The deterministic simulator (bit-exactness proven by the
differential oracle, §11) composed into a long-running service:

* :mod:`repro.service.jobs`    — job spec, content hash, state machine;
* :mod:`repro.service.queue`   — bounded admission queue, token buckets;
* :mod:`repro.service.cache`   — content-addressed result cache;
* :mod:`repro.service.journal` — crash-safe JSONL write-ahead log;
* :mod:`repro.service.pool`    — supervised worker processes;
* :mod:`repro.service.service` — the orchestrator (retries, quarantine,
  drain/resume);
* :mod:`repro.service.http`    — asyncio HTTP/JSON front end;
* :mod:`repro.service.client`  — sync + async stdlib clients;
* :mod:`repro.service.loadgen` — load generator / chaos harness behind
  ``benchmarks/bench_service.py``.

Quickstart::

    repro serve --port 8023 --workers 4 --data-dir /tmp/repro-service &
    curl -s localhost:8023/v1/jobs?wait=1 -d \\
        '{"app": "jacobi", "policy": "rgp+las", "seed": 1}'
"""

from .cache import ResultCache
from .client import ServiceClient, arequest_json, request_json
from .http import HttpServer, serve
from .jobs import JobRecord, JobSpec, JobState, execute_spec
from .journal import Journal
from .loadgen import (
    SERVICE_BENCH_SCHEMA_KEYS,
    ServerProcess,
    make_job_specs,
    run_batch,
    run_service_bench,
    submit_and_wait,
    validate_service_entries,
    write_service_entries,
)
from .pool import Outcome, WorkerPool
from .queue import AdmissionQueue, RateLimiter, TokenBucket
from .service import ServiceConfig, SimulationService

__all__ = [
    "AdmissionQueue",
    "HttpServer",
    "JobRecord",
    "JobSpec",
    "JobState",
    "Journal",
    "Outcome",
    "RateLimiter",
    "ResultCache",
    "SERVICE_BENCH_SCHEMA_KEYS",
    "ServerProcess",
    "ServiceClient",
    "ServiceConfig",
    "SimulationService",
    "TokenBucket",
    "WorkerPool",
    "arequest_json",
    "execute_spec",
    "make_job_specs",
    "request_json",
    "run_batch",
    "run_service_bench",
    "serve",
    "submit_and_wait",
    "validate_service_entries",
    "write_service_entries",
]
