"""Crash-safe JSONL journal: the service's write-ahead log.

Every admission and every terminal transition is appended as one JSON
line and fsynced, so after a crash or SIGTERM the journal replays into
exactly the set of jobs that were accepted but never finished — those are
resubmitted on restart (their results may meanwhile be servable straight
from the content-addressed cache).

Torn-write discipline matches the sweep checkpoint
(:mod:`repro.experiments.sweep`): because each append is flushed and
fsynced as a whole line, at most the *final* line of the file can be
partial after a crash.  Replay tolerates that torn tail and truncates it
so the next append starts on a clean line; a malformed line anywhere
earlier is real corruption and raises.

With ``write_behind=True`` the write+flush+fsync of each line moves to a
:class:`~repro.service.diskio.WriteBehind` thread so callers (the asyncio
service) never block on disk; line order and the at-most-one-torn-line
invariant are preserved, and :meth:`close`/:meth:`flush` are durability
barriers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..errors import ServiceError
from .diskio import WriteBehind


class Journal:
    """Append-only JSONL event log with tolerate-and-truncate replay."""

    def __init__(self, path: str | Path, *, write_behind: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None
        self._write_behind = write_behind
        self._writer: WriteBehind | None = None
        self._writing = False

    # -- writing ---------------------------------------------------------
    def append(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=str) + "\n"
        self._writing = True
        if self._write_behind:
            if self._writer is None:
                self._writer = WriteBehind(f"journal:{self.path.name}")
            self._writer.submit(lambda: self._write_line(line))
        else:
            self._write_line(line)

    def _write_line(self, line: str) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a")
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def flush(self) -> None:
        """Durability barrier: all prior appends are on disk on return."""
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._writing = False

    # -- replay ----------------------------------------------------------
    def replay(self) -> list[dict[str, Any]]:
        """All intact records, oldest first; truncates a torn final line."""
        if self._writing or self._fh is not None:
            raise ServiceError("cannot replay a journal that is open for writing")
        if not self.path.exists():
            return []
        text = self.path.read_text()
        lines = text.splitlines(keepends=True)
        records: list[dict[str, Any]] = []
        keep_bytes = 0
        for i, raw in enumerate(lines):
            line = raw.strip()
            if not line:
                keep_bytes += len(raw.encode())
                continue
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise ValueError("journal records must be objects")
            except ValueError as exc:
                if i == len(lines) - 1:
                    with open(self.path, "r+") as fh:
                        fh.truncate(keep_bytes)
                    break
                raise ServiceError(
                    f"journal {self.path} corrupt at line {i + 1} "
                    f"(only the final line may be torn): {exc}"
                ) from exc
            records.append(data)
            keep_bytes += len(raw.encode())
        return records
